//! Per-column summary statistics.
//!
//! Atlas consults these statistics to decide how to cut an attribute (numeric
//! range, categorical cardinality), to detect high-cardinality "code-like"
//! columns that should be skipped (Section 5.2 of the paper), and to report
//! region descriptions.

use crate::bitmap::Bitmap;
use crate::column::{Column, NULL_CODE};
use crate::value::DataType;
use std::collections::HashSet;

/// The distinct non-NULL values seen by a [`ColumnSummary`], kept in a form
/// that merges exactly across segments (a plain count cannot: segments share
/// values, so distinct counts are not additive).
#[derive(Debug, Clone)]
enum DistinctSet {
    /// Distinct integers.
    Ints(HashSet<i64>),
    /// Distinct floats, keyed by bit pattern (matching the historical
    /// `ColumnStats` semantics: `-0.0` and `0.0` count separately, NaNs by
    /// payload).
    Floats(HashSet<u64>),
    /// Distinct strings. Segments intern their dictionaries independently, so
    /// cross-segment identity has to go through the string itself.
    Strs(HashSet<String>),
    /// Whether `true` / `false` have been seen.
    Bools {
        /// `true` seen.
        t: bool,
        /// `false` seen.
        f: bool,
    },
}

/// The distinct non-NULL values of a [`ColumnSummary`] in a serialisable,
/// deterministic form (sorted vectors instead of hash sets), produced by
/// [`ColumnSummary::to_parts`] and consumed by [`ColumnSummary::from_parts`].
///
/// Floats travel as IEEE-754 bit patterns so `-0.0`/`0.0` and NaN payloads
/// keep the distinct-count semantics of the in-memory set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistinctValues {
    /// Distinct integers, sorted ascending.
    Ints(Vec<i64>),
    /// Distinct float bit patterns, sorted ascending as `u64`.
    Floats(Vec<u64>),
    /// Distinct strings, sorted lexicographically.
    Strs(Vec<String>),
    /// Whether `true` / `false` have been seen.
    Bools {
        /// `true` seen.
        t: bool,
        /// `false` seen.
        f: bool,
    },
}

/// The serialisable decomposition of a [`ColumnSummary`]: every field a
/// remote peer needs to rebuild a summary that merges and collapses exactly
/// like the original. Floating-point state (`mean`, `m2`, `min`, `max`)
/// must travel bit-exactly for the rebuilt summary to fold bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryParts {
    /// Data type of the summarised column.
    pub dtype: DataType,
    /// Number of non-NULL rows seen.
    pub non_null: usize,
    /// Number of NULL rows seen.
    pub nulls: usize,
    /// Welford mean of the numeric values (0 for non-numeric columns).
    pub mean: f64,
    /// Welford sum of squared deviations (0 for non-numeric columns).
    pub m2: f64,
    /// Minimum numeric value, if any.
    pub min: Option<f64>,
    /// Maximum numeric value, if any.
    pub max: Option<f64>,
    /// The distinct non-NULL values, in deterministic order.
    pub distinct: DistinctValues,
}

impl DistinctSet {
    fn to_values(&self) -> DistinctValues {
        match self {
            DistinctSet::Ints(s) => {
                let mut v: Vec<i64> = s.iter().copied().collect();
                v.sort_unstable();
                DistinctValues::Ints(v)
            }
            DistinctSet::Floats(s) => {
                let mut v: Vec<u64> = s.iter().copied().collect();
                v.sort_unstable();
                DistinctValues::Floats(v)
            }
            DistinctSet::Strs(s) => {
                let mut v: Vec<String> = s.iter().cloned().collect();
                v.sort_unstable();
                DistinctValues::Strs(v)
            }
            DistinctSet::Bools { t, f } => DistinctValues::Bools { t: *t, f: *f },
        }
    }

    fn from_values(values: DistinctValues) -> Self {
        match values {
            DistinctValues::Ints(v) => DistinctSet::Ints(v.into_iter().collect()),
            DistinctValues::Floats(v) => DistinctSet::Floats(v.into_iter().collect()),
            DistinctValues::Strs(v) => DistinctSet::Strs(v.into_iter().collect()),
            DistinctValues::Bools { t, f } => DistinctSet::Bools { t, f },
        }
    }
}

impl DistinctSet {
    fn new(dtype: DataType) -> Self {
        match dtype {
            DataType::Int => DistinctSet::Ints(HashSet::new()),
            DataType::Float => DistinctSet::Floats(HashSet::new()),
            DataType::Str => DistinctSet::Strs(HashSet::new()),
            DataType::Bool => DistinctSet::Bools { t: false, f: false },
        }
    }

    fn len(&self) -> usize {
        match self {
            DistinctSet::Ints(s) => s.len(),
            DistinctSet::Floats(s) => s.len(),
            DistinctSet::Strs(s) => s.len(),
            DistinctSet::Bools { t, f } => usize::from(*t) + usize::from(*f),
        }
    }

    fn union_with(&mut self, other: &DistinctSet) {
        match (self, other) {
            (DistinctSet::Ints(a), DistinctSet::Ints(b)) => a.extend(b.iter().copied()),
            (DistinctSet::Floats(a), DistinctSet::Floats(b)) => a.extend(b.iter().copied()),
            (DistinctSet::Strs(a), DistinctSet::Strs(b)) => {
                for s in b {
                    if !a.contains(s.as_str()) {
                        a.insert(s.clone());
                    }
                }
            }
            (DistinctSet::Bools { t, f }, DistinctSet::Bools { t: ot, f: of }) => {
                *t |= *ot;
                *f |= *of;
            }
            _ => unreachable!("distinct sets of mismatched column types are never merged"),
        }
    }
}

/// The **mergeable** form of [`ColumnStats`]: everything a segment contributes
/// to the statistics of the whole column, in a representation where two
/// summaries combine exactly (counts add, min/max fold, mean/variance merge by
/// Chan's parallel formula, and distinct values union as a real set).
///
/// This is what makes profiles incremental: a prepared engine keeps one
/// `ColumnSummary` per column, and appending a segment merges the new
/// segment's summary instead of rescanning the table. Merging is
/// left-associative over segments in row order, so an appended profile is
/// bit-for-bit the profile a from-scratch rebuild would produce.
#[derive(Debug, Clone)]
pub struct ColumnSummary {
    dtype: DataType,
    non_null: usize,
    nulls: usize,
    // Welford state of the numeric values (zeroed for non-numeric columns).
    mean: f64,
    m2: f64,
    min: Option<f64>,
    max: Option<f64>,
    distinct: DistinctSet,
}

impl ColumnSummary {
    /// An empty summary for a column of the given type (the identity of
    /// [`ColumnSummary::merge_from`]).
    pub fn empty(dtype: DataType) -> Self {
        ColumnSummary {
            dtype,
            non_null: 0,
            nulls: 0,
            mean: 0.0,
            m2: 0.0,
            min: None,
            max: None,
            distinct: DistinctSet::new(dtype),
        }
    }

    /// Summarise one segment-local column over the rows of `sel` that fall in
    /// the segment's global row range `offset..offset + column.len()`.
    ///
    /// `sel` is a **table-wide** selection; the summary visits only this
    /// segment's slice of it, so per-segment summaries can be computed
    /// independently (and in parallel) and then folded in segment order.
    pub fn compute(column: &Column, sel: &Bitmap, offset: usize) -> Self {
        let mut out = ColumnSummary::empty(column.data_type());
        let end = offset + column.len();
        match column {
            Column::Int(values) => {
                let DistinctSet::Ints(distinct) = &mut out.distinct else {
                    unreachable!("int columns use int distinct sets");
                };
                let mut welford = Welford::new();
                sel.for_each_one_in(offset, end, |idx| match values.get(idx - offset) {
                    Some(x) => {
                        out.non_null += 1;
                        distinct.insert(x);
                        welford.push(x as f64);
                    }
                    None => out.nulls += 1,
                });
                out.mean = welford.mean;
                out.m2 = welford.m2;
                out.min = welford.min;
                out.max = welford.max;
            }
            Column::Float(values) => {
                let DistinctSet::Floats(distinct) = &mut out.distinct else {
                    unreachable!("float columns use float distinct sets");
                };
                let mut welford = Welford::new();
                sel.for_each_one_in(offset, end, |idx| match values.get(idx - offset) {
                    Some(x) => {
                        out.non_null += 1;
                        distinct.insert(x.to_bits());
                        welford.push(x);
                    }
                    None => out.nulls += 1,
                });
                out.mean = welford.mean;
                out.m2 = welford.m2;
                out.min = welford.min;
                out.max = welford.max;
            }
            Column::Str(d) => {
                // Track distinct codes locally (one indexed flag per row),
                // then resolve the seen codes to strings once.
                let mut seen = vec![false; d.cardinality()];
                sel.for_each_one_in(offset, end, |idx| {
                    let local = idx - offset;
                    if local >= d.len() {
                        return;
                    }
                    let code = d.code(local);
                    if code == NULL_CODE {
                        out.nulls += 1;
                    } else {
                        out.non_null += 1;
                        seen[code as usize] = true;
                    }
                });
                let DistinctSet::Strs(distinct) = &mut out.distinct else {
                    unreachable!("string columns use string distinct sets");
                };
                for (code, seen) in seen.into_iter().enumerate() {
                    if seen {
                        let value = &d.dictionary()[code];
                        if !distinct.contains(value.as_str()) {
                            distinct.insert(value.clone());
                        }
                    }
                }
            }
            Column::Bool(values) => {
                let DistinctSet::Bools { t, f } = &mut out.distinct else {
                    unreachable!("bool columns use bool distinct sets");
                };
                sel.for_each_one_in(offset, end, |idx| match values.get(idx - offset) {
                    Some(true) => {
                        out.non_null += 1;
                        *t = true;
                    }
                    Some(false) => {
                        out.non_null += 1;
                        *f = true;
                    }
                    None => out.nulls += 1,
                });
            }
        }
        out
    }

    /// The column type this summary describes.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Merge `other` — the summary of the rows **after** this summary's rows —
    /// into `self`. Counts add, min/max fold, distinct values union, and the
    /// numeric moments combine with Chan's parallel-Welford formula.
    pub fn merge_from(&mut self, other: &ColumnSummary) {
        debug_assert_eq!(self.dtype, other.dtype, "summaries of one column only");
        if other.non_null > 0 {
            let n_a = self.non_null as f64;
            let n_b = other.non_null as f64;
            if self.non_null == 0 {
                self.mean = other.mean;
                self.m2 = other.m2;
            } else {
                let delta = other.mean - self.mean;
                let n = n_a + n_b;
                self.mean += delta * n_b / n;
                self.m2 += other.m2 + delta * delta * n_a * n_b / n;
            }
            self.min = match (self.min, other.min) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            self.max = match (self.max, other.max) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
        }
        self.non_null += other.non_null;
        self.nulls += other.nulls;
        self.distinct.union_with(&other.distinct);
    }

    /// Decompose the summary into its serialisable [`SummaryParts`].
    ///
    /// Together with [`ColumnSummary::from_parts`] this is an exact round
    /// trip: the rebuilt summary merges ([`ColumnSummary::merge_from`]) and
    /// collapses ([`ColumnSummary::to_stats`]) bit-identically to the
    /// original, so per-segment summaries computed on a remote shard fold on
    /// a coordinator exactly as if they had been computed locally.
    pub fn to_parts(&self) -> SummaryParts {
        SummaryParts {
            dtype: self.dtype,
            non_null: self.non_null,
            nulls: self.nulls,
            mean: self.mean,
            m2: self.m2,
            min: self.min,
            max: self.max,
            distinct: self.distinct.to_values(),
        }
    }

    /// Rebuild a summary from the parts produced by
    /// [`ColumnSummary::to_parts`].
    pub fn from_parts(parts: SummaryParts) -> Self {
        ColumnSummary {
            dtype: parts.dtype,
            non_null: parts.non_null,
            nulls: parts.nulls,
            mean: parts.mean,
            m2: parts.m2,
            min: parts.min,
            max: parts.max,
            distinct: DistinctSet::from_values(parts.distinct),
        }
    }

    /// Collapse the summary into the public [`ColumnStats`] form. The distinct
    /// count is exact (it comes from the merged value set).
    pub fn to_stats(&self) -> ColumnStats {
        let numeric = matches!(self.dtype, DataType::Int | DataType::Float);
        let has_values = numeric && self.non_null > 0;
        ColumnStats {
            dtype: self.dtype,
            non_null_count: self.non_null,
            null_count: self.nulls,
            distinct_count: self.distinct.len(),
            min: self.min,
            max: self.max,
            mean: has_values.then_some(self.mean),
            variance: has_values.then_some(self.m2 / self.non_null as f64),
        }
    }
}

/// Summary statistics of one column restricted to a selection.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Data type of the column.
    pub dtype: DataType,
    /// Number of selected rows with a non-NULL value.
    pub non_null_count: usize,
    /// Number of selected rows with a NULL value.
    pub null_count: usize,
    /// Number of distinct non-NULL values among the selected rows.
    pub distinct_count: usize,
    /// Minimum numeric value (numeric columns only).
    pub min: Option<f64>,
    /// Maximum numeric value (numeric columns only).
    pub max: Option<f64>,
    /// Mean of the numeric values (numeric columns only).
    pub mean: Option<f64>,
    /// Population variance of the numeric values (numeric columns only).
    pub variance: Option<f64>,
}

impl ColumnStats {
    /// Compute statistics for `column` over the rows selected by `sel`.
    ///
    /// This is the single-segment form of the canonical statistics kernel:
    /// segmented tables compute one [`ColumnSummary`] per segment and fold
    /// them in row order, which for one segment is exactly this.
    pub fn compute(column: &Column, sel: &Bitmap) -> ColumnStats {
        ColumnSummary::compute(column, sel, 0).to_stats()
    }

    /// Merge the statistics of two disjoint row sets of the **same column**
    /// (`self` covering the earlier rows).
    ///
    /// Counts, min/max, mean and variance merge exactly; `distinct_count`
    /// merges as the `a + b` **upper bound**, because a plain count cannot
    /// know how many values the two sides share. Callers that need the exact
    /// merged distinct count (the engine's table profile does) merge
    /// [`ColumnSummary`]s instead, which carry the value sets.
    pub fn merge(&self, other: &ColumnStats) -> ColumnStats {
        debug_assert_eq!(self.dtype, other.dtype, "statistics of one column only");
        let n_a = self.non_null_count as f64;
        let n_b = other.non_null_count as f64;
        let (mean, variance) = match (self.mean.zip(self.variance), other.mean.zip(other.variance))
        {
            (Some((ma, va)), Some((mb, vb))) => {
                let n = n_a + n_b;
                let delta = mb - ma;
                let mean = ma + delta * n_b / n;
                let m2 = va * n_a + vb * n_b + delta * delta * n_a * n_b / n;
                (Some(mean), Some(m2 / n))
            }
            (a, b) => {
                let one = a.or(b);
                (one.map(|(m, _)| m), one.map(|(_, v)| v))
            }
        };
        let fold = |a: Option<f64>, b: Option<f64>, pick: fn(f64, f64) -> f64| match (a, b) {
            (Some(x), Some(y)) => Some(pick(x, y)),
            (x, y) => x.or(y),
        };
        ColumnStats {
            dtype: self.dtype,
            non_null_count: self.non_null_count + other.non_null_count,
            null_count: self.null_count + other.null_count,
            distinct_count: self.distinct_count + other.distinct_count,
            min: fold(self.min, other.min, f64::min),
            max: fold(self.max, other.max, f64::max),
            mean,
            variance,
        }
    }

    /// Fraction of selected rows that are NULL, in `[0, 1]`.
    pub fn null_fraction(&self) -> f64 {
        let total = self.non_null_count + self.null_count;
        if total == 0 {
            0.0
        } else {
            self.null_count as f64 / total as f64
        }
    }

    /// Ratio of distinct values to non-NULL rows, in `[0, 1]`.
    ///
    /// A ratio close to 1 on a categorical column means the column behaves
    /// like a key / identifier (names, codes); the paper recommends skipping
    /// such columns when generating candidate maps.
    pub fn distinct_ratio(&self) -> f64 {
        if self.non_null_count == 0 {
            0.0
        } else {
            self.distinct_count as f64 / self.non_null_count as f64
        }
    }

    /// True if the column looks like an identifier: a string or integer
    /// column where almost every value is distinct (names, codes, keys).
    ///
    /// Float columns are never flagged — continuous measurements legitimately
    /// have near-unique values and are prime cutting material.
    pub fn looks_like_identifier(&self) -> bool {
        self.dtype != DataType::Float && self.non_null_count >= 16 && self.distinct_ratio() > 0.95
    }
}

/// Online mean/variance/min/max accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
struct Welford {
    count: usize,
    mean: f64,
    m2: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl Welford {
    fn new() -> Self {
        Welford::default()
    }

    fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::DictColumn;

    #[test]
    fn int_stats() {
        let col = Column::Int(vec![Some(1), Some(2), Some(3), Some(4), None].into());
        let stats = ColumnStats::compute(&col, &Bitmap::new_full(5));
        assert_eq!(stats.non_null_count, 4);
        assert_eq!(stats.null_count, 1);
        assert_eq!(stats.distinct_count, 4);
        assert_eq!(stats.min, Some(1.0));
        assert_eq!(stats.max, Some(4.0));
        assert!((stats.mean.unwrap() - 2.5).abs() < 1e-12);
        assert!((stats.variance.unwrap() - 1.25).abs() < 1e-12);
        assert!((stats.null_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn float_stats_respect_selection() {
        let col = Column::Float(vec![Some(10.0), Some(20.0), Some(30.0), Some(40.0)].into());
        let sel = Bitmap::from_indices(4, [0, 3]);
        let stats = ColumnStats::compute(&col, &sel);
        assert_eq!(stats.non_null_count, 2);
        assert_eq!(stats.min, Some(10.0));
        assert_eq!(stats.max, Some(40.0));
        assert!((stats.mean.unwrap() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn string_stats_and_identifier_detection() {
        let mut d = DictColumn::new();
        for i in 0..100 {
            d.push(Some(&format!("user-{i}")));
        }
        let col = Column::Str(d);
        let stats = ColumnStats::compute(&col, &Bitmap::new_full(100));
        assert_eq!(stats.distinct_count, 100);
        assert!(stats.looks_like_identifier());

        let mut d2 = DictColumn::new();
        for i in 0..100 {
            d2.push(Some(if i % 2 == 0 { "m" } else { "f" }));
        }
        let col2 = Column::Str(d2);
        let stats2 = ColumnStats::compute(&col2, &Bitmap::new_full(100));
        assert_eq!(stats2.distinct_count, 2);
        assert!(!stats2.looks_like_identifier());
    }

    #[test]
    fn bool_stats() {
        let col = Column::Bool(vec![Some(true), Some(false), Some(true), None].into());
        let stats = ColumnStats::compute(&col, &Bitmap::new_full(4));
        assert_eq!(stats.non_null_count, 3);
        assert_eq!(stats.null_count, 1);
        assert_eq!(stats.distinct_count, 2);
        assert_eq!(stats.min, None);
    }

    #[test]
    fn summaries_merge_exactly_across_splits() {
        // Split a column at arbitrary points; the folded summary must agree
        // with the single-pass statistics on everything, including the exact
        // distinct count (values are shared across the split).
        let values: Vec<Option<i64>> = (0..200)
            .map(|i| if i % 9 == 0 { None } else { Some(i % 13) })
            .collect();
        let whole = Column::Int(values.clone().into());
        let reference = ColumnStats::compute(&whole, &Bitmap::new_full(200));
        for split in [1usize, 63, 64, 65, 100, 199] {
            let left = Column::Int(values[..split].to_vec().into());
            let right = Column::Int(values[split..].to_vec().into());
            let sel = Bitmap::new_full(200);
            let mut folded = ColumnSummary::compute(&left, &sel, 0);
            folded.merge_from(&ColumnSummary::compute(&right, &sel, split));
            let merged = folded.to_stats();
            assert_eq!(merged.non_null_count, reference.non_null_count);
            assert_eq!(merged.null_count, reference.null_count);
            assert_eq!(
                merged.distinct_count, reference.distinct_count,
                "split {split}"
            );
            assert_eq!(merged.min, reference.min);
            assert_eq!(merged.max, reference.max);
            assert!((merged.mean.unwrap() - reference.mean.unwrap()).abs() < 1e-9);
            assert!((merged.variance.unwrap() - reference.variance.unwrap()).abs() < 1e-9);
        }
    }

    #[test]
    fn string_summaries_union_distinct_values_across_dictionaries() {
        // Two segments interning overlapping dictionaries independently: the
        // merged distinct count must deduplicate by string, not by code.
        let mut a = DictColumn::new();
        for s in ["x", "y", "x"] {
            a.push(Some(s));
        }
        let mut b = DictColumn::new();
        for s in ["y", "z", "y"] {
            b.push(Some(s));
        }
        let left = Column::Str(a);
        let right = Column::Str(b);
        let sel = Bitmap::new_full(6);
        let mut folded = ColumnSummary::compute(&left, &sel, 0);
        folded.merge_from(&ColumnSummary::compute(&right, &sel, 3));
        let stats = folded.to_stats();
        assert_eq!(stats.distinct_count, 3, "x, y, z");
        assert_eq!(stats.non_null_count, 6);
    }

    #[test]
    fn summary_parts_round_trip_is_exact() {
        let cols = [
            Column::Int(vec![Some(3), Some(-7), None, Some(3), Some(11)].into()),
            Column::Float(vec![Some(0.0), Some(-0.0), Some(2.5), None, Some(2.5)].into()),
            Column::Bool(vec![Some(true), None, Some(true)].into()),
        ];
        for col in &cols {
            let original = ColumnSummary::compute(col, &Bitmap::new_full(5.min(col.len())), 0);
            let rebuilt = ColumnSummary::from_parts(original.to_parts());
            assert_eq!(rebuilt.to_parts(), original.to_parts());
            let a = original.to_stats();
            let b = rebuilt.to_stats();
            assert_eq!(a, b);
            // Future merges behave identically too.
            let more = ColumnSummary::compute(col, &Bitmap::new_full(col.len()), 0);
            let mut fold_a = original.clone();
            let mut fold_b = rebuilt.clone();
            fold_a.merge_from(&more);
            fold_b.merge_from(&more);
            assert_eq!(fold_a.to_parts(), fold_b.to_parts());
        }
        // Strings deduplicate by value across rebuilt dictionaries.
        let mut d = DictColumn::new();
        for s in ["b", "a", "b", "c"] {
            d.push(Some(s));
        }
        let col = Column::Str(d);
        let summary = ColumnSummary::compute(&col, &Bitmap::new_full(4), 0);
        let parts = summary.to_parts();
        assert_eq!(
            parts.distinct,
            DistinctValues::Strs(vec!["a".into(), "b".into(), "c".into()])
        );
        assert_eq!(
            ColumnSummary::from_parts(parts).to_stats(),
            summary.to_stats()
        );
    }

    #[test]
    fn column_stats_merge_is_exact_except_distinct() {
        let a = ColumnStats::compute(
            &Column::Int(vec![Some(1), Some(2), None].into()),
            &Bitmap::new_full(3),
        );
        let b = ColumnStats::compute(
            &Column::Int(vec![Some(2), Some(10)].into()),
            &Bitmap::new_full(2),
        );
        let merged = a.merge(&b);
        let reference = ColumnStats::compute(
            &Column::Int(vec![Some(1), Some(2), None, Some(2), Some(10)].into()),
            &Bitmap::new_full(5),
        );
        assert_eq!(merged.non_null_count, reference.non_null_count);
        assert_eq!(merged.null_count, reference.null_count);
        assert_eq!(merged.min, reference.min);
        assert_eq!(merged.max, reference.max);
        assert!((merged.mean.unwrap() - reference.mean.unwrap()).abs() < 1e-12);
        assert!((merged.variance.unwrap() - reference.variance.unwrap()).abs() < 1e-9);
        // distinct merges as the a + b upper bound (2 is shared).
        assert_eq!(merged.distinct_count, 4);
        assert_eq!(reference.distinct_count, 3);
        // Merging with an all-NULL side keeps the non-NULL side's moments.
        let nulls =
            ColumnStats::compute(&Column::Int(vec![None, None].into()), &Bitmap::new_full(2));
        let kept = a.merge(&nulls);
        assert_eq!(kept.mean, a.mean);
        assert_eq!(kept.null_count, 3);
    }

    #[test]
    fn empty_selection_yields_zeroes() {
        let col = Column::Int(vec![Some(1), Some(2)].into());
        let stats = ColumnStats::compute(&col, &Bitmap::new_empty(2));
        assert_eq!(stats.non_null_count, 0);
        assert_eq!(stats.distinct_count, 0);
        assert_eq!(stats.mean, None);
        assert_eq!(stats.null_fraction(), 0.0);
        assert_eq!(stats.distinct_ratio(), 0.0);
    }
}
