//! Per-column summary statistics.
//!
//! Atlas consults these statistics to decide how to cut an attribute (numeric
//! range, categorical cardinality), to detect high-cardinality "code-like"
//! columns that should be skipped (Section 5.2 of the paper), and to report
//! region descriptions.

use crate::bitmap::Bitmap;
use crate::column::{Column, NULL_CODE};
use crate::value::DataType;
use std::collections::HashSet;

/// Summary statistics of one column restricted to a selection.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Data type of the column.
    pub dtype: DataType,
    /// Number of selected rows with a non-NULL value.
    pub non_null_count: usize,
    /// Number of selected rows with a NULL value.
    pub null_count: usize,
    /// Number of distinct non-NULL values among the selected rows.
    pub distinct_count: usize,
    /// Minimum numeric value (numeric columns only).
    pub min: Option<f64>,
    /// Maximum numeric value (numeric columns only).
    pub max: Option<f64>,
    /// Mean of the numeric values (numeric columns only).
    pub mean: Option<f64>,
    /// Population variance of the numeric values (numeric columns only).
    pub variance: Option<f64>,
}

impl ColumnStats {
    /// Compute statistics for `column` over the rows selected by `sel`.
    pub fn compute(column: &Column, sel: &Bitmap) -> ColumnStats {
        let dtype = column.data_type();
        let mut non_null = 0usize;
        let mut nulls = 0usize;
        match column {
            Column::Int(values) => {
                let mut distinct: HashSet<i64> = HashSet::new();
                let mut welford = Welford::new();
                sel.for_each_one(|idx| match values.get(idx) {
                    Some(Some(x)) => {
                        non_null += 1;
                        distinct.insert(*x);
                        welford.push(*x as f64);
                    }
                    Some(None) => nulls += 1,
                    None => {}
                });
                ColumnStats {
                    dtype,
                    non_null_count: non_null,
                    null_count: nulls,
                    distinct_count: distinct.len(),
                    min: welford.min,
                    max: welford.max,
                    mean: welford.mean(),
                    variance: welford.variance(),
                }
            }
            Column::Float(values) => {
                let mut distinct: HashSet<u64> = HashSet::new();
                let mut welford = Welford::new();
                sel.for_each_one(|idx| match values.get(idx) {
                    Some(Some(x)) => {
                        non_null += 1;
                        distinct.insert(x.to_bits());
                        welford.push(*x);
                    }
                    Some(None) => nulls += 1,
                    None => {}
                });
                ColumnStats {
                    dtype,
                    non_null_count: non_null,
                    null_count: nulls,
                    distinct_count: distinct.len(),
                    min: welford.min,
                    max: welford.max,
                    mean: welford.mean(),
                    variance: welford.variance(),
                }
            }
            Column::Str(d) => {
                let mut distinct: HashSet<u32> = HashSet::new();
                sel.for_each_one(|idx| {
                    if idx >= d.len() {
                        return;
                    }
                    let code = d.code(idx);
                    if code == NULL_CODE {
                        nulls += 1;
                    } else {
                        non_null += 1;
                        distinct.insert(code);
                    }
                });
                ColumnStats {
                    dtype,
                    non_null_count: non_null,
                    null_count: nulls,
                    distinct_count: distinct.len(),
                    min: None,
                    max: None,
                    mean: None,
                    variance: None,
                }
            }
            Column::Bool(values) => {
                let mut seen_true = false;
                let mut seen_false = false;
                sel.for_each_one(|idx| match values.get(idx) {
                    Some(Some(true)) => {
                        non_null += 1;
                        seen_true = true;
                    }
                    Some(Some(false)) => {
                        non_null += 1;
                        seen_false = true;
                    }
                    Some(None) => nulls += 1,
                    None => {}
                });
                ColumnStats {
                    dtype,
                    non_null_count: non_null,
                    null_count: nulls,
                    distinct_count: usize::from(seen_true) + usize::from(seen_false),
                    min: None,
                    max: None,
                    mean: None,
                    variance: None,
                }
            }
        }
    }

    /// Fraction of selected rows that are NULL, in `[0, 1]`.
    pub fn null_fraction(&self) -> f64 {
        let total = self.non_null_count + self.null_count;
        if total == 0 {
            0.0
        } else {
            self.null_count as f64 / total as f64
        }
    }

    /// Ratio of distinct values to non-NULL rows, in `[0, 1]`.
    ///
    /// A ratio close to 1 on a categorical column means the column behaves
    /// like a key / identifier (names, codes); the paper recommends skipping
    /// such columns when generating candidate maps.
    pub fn distinct_ratio(&self) -> f64 {
        if self.non_null_count == 0 {
            0.0
        } else {
            self.distinct_count as f64 / self.non_null_count as f64
        }
    }

    /// True if the column looks like an identifier: a string or integer
    /// column where almost every value is distinct (names, codes, keys).
    ///
    /// Float columns are never flagged — continuous measurements legitimately
    /// have near-unique values and are prime cutting material.
    pub fn looks_like_identifier(&self) -> bool {
        self.dtype != DataType::Float && self.non_null_count >= 16 && self.distinct_ratio() > 0.95
    }
}

/// Online mean/variance/min/max accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
struct Welford {
    count: usize,
    mean: f64,
    m2: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl Welford {
    fn new() -> Self {
        Welford::default()
    }

    fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.mean)
        }
    }

    fn variance(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.m2 / self.count as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::DictColumn;

    #[test]
    fn int_stats() {
        let col = Column::Int(vec![Some(1), Some(2), Some(3), Some(4), None]);
        let stats = ColumnStats::compute(&col, &Bitmap::new_full(5));
        assert_eq!(stats.non_null_count, 4);
        assert_eq!(stats.null_count, 1);
        assert_eq!(stats.distinct_count, 4);
        assert_eq!(stats.min, Some(1.0));
        assert_eq!(stats.max, Some(4.0));
        assert!((stats.mean.unwrap() - 2.5).abs() < 1e-12);
        assert!((stats.variance.unwrap() - 1.25).abs() < 1e-12);
        assert!((stats.null_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn float_stats_respect_selection() {
        let col = Column::Float(vec![Some(10.0), Some(20.0), Some(30.0), Some(40.0)]);
        let sel = Bitmap::from_indices(4, [0, 3]);
        let stats = ColumnStats::compute(&col, &sel);
        assert_eq!(stats.non_null_count, 2);
        assert_eq!(stats.min, Some(10.0));
        assert_eq!(stats.max, Some(40.0));
        assert!((stats.mean.unwrap() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn string_stats_and_identifier_detection() {
        let mut d = DictColumn::new();
        for i in 0..100 {
            d.push(Some(&format!("user-{i}")));
        }
        let col = Column::Str(d);
        let stats = ColumnStats::compute(&col, &Bitmap::new_full(100));
        assert_eq!(stats.distinct_count, 100);
        assert!(stats.looks_like_identifier());

        let mut d2 = DictColumn::new();
        for i in 0..100 {
            d2.push(Some(if i % 2 == 0 { "m" } else { "f" }));
        }
        let col2 = Column::Str(d2);
        let stats2 = ColumnStats::compute(&col2, &Bitmap::new_full(100));
        assert_eq!(stats2.distinct_count, 2);
        assert!(!stats2.looks_like_identifier());
    }

    #[test]
    fn bool_stats() {
        let col = Column::Bool(vec![Some(true), Some(false), Some(true), None]);
        let stats = ColumnStats::compute(&col, &Bitmap::new_full(4));
        assert_eq!(stats.non_null_count, 3);
        assert_eq!(stats.null_count, 1);
        assert_eq!(stats.distinct_count, 2);
        assert_eq!(stats.min, None);
    }

    #[test]
    fn empty_selection_yields_zeroes() {
        let col = Column::Int(vec![Some(1), Some(2)]);
        let stats = ColumnStats::compute(&col, &Bitmap::new_empty(2));
        assert_eq!(stats.non_null_count, 0);
        assert_eq!(stats.distinct_count, 0);
        assert_eq!(stats.mean, None);
        assert_eq!(stats.null_fraction(), 0.0);
        assert_eq!(stats.distinct_ratio(), 0.0);
    }
}
