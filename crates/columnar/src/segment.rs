//! Immutable row-range segments of a [`crate::Table`].
//!
//! A segment is a horizontal slice of a relation: one column per schema field,
//! all of the same length, with per-column [`ColumnStats`] available on
//! demand (computed lazily, cached for the segment's lifetime). Segments are **immutable** and shared by `Arc`, so
//! appending data to a table never touches (or copies) the rows already
//! ingested: a new table is the old segment list plus one new segment, and
//! engine-side statistics extend by merging the new segment's summaries.
//!
//! The segment size is a storage-layout knob, not a semantics knob: every scan
//! kernel walks the segments in row order and assembles results in global row
//! coordinates, so query answers are bit-for-bit identical at every segment
//! size for every **exact** kernel and cut strategy — the default pipeline
//! end to end (the property `tests/segments.rs` pins). The one deliberate
//! exception is the ε-approximate `SketchMedian` cut strategy: its quantile
//! sketch is a fold of per-segment sketches, so its (already approximate)
//! split points may shift with the chunking, within the same ε rank-error
//! envelope.

use crate::bitmap::Bitmap;
use crate::colstats::{ColumnStats, ColumnSummary};
use crate::column::Column;
use crate::error::{ColumnarError, Result};
use crate::schema::Schema;
use std::fmt;
use std::sync::OnceLock;

/// The default number of rows per segment: the `ATLAS_SEGMENT_ROWS`
/// environment variable if set to a positive integer, 65 536 otherwise
/// (a word-aligned size large enough to keep per-segment overheads
/// negligible; CI runs the suite with `ATLAS_SEGMENT_ROWS=1024` to exercise
/// the many-segment paths).
pub fn default_segment_rows() -> usize {
    match std::env::var("ATLAS_SEGMENT_ROWS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => 65_536,
    }
}

/// One immutable row-range of a table: a column per schema field plus the
/// per-column statistics of those rows.
#[derive(Debug, Clone)]
pub struct Segment {
    columns: Vec<Column>,
    num_rows: usize,
    /// Per-column statistics, computed on first access (sealing itself stays
    /// a pure move, so hot ingest paths — streaming CSV, joins,
    /// `materialize` — never pay for statistics nobody reads).
    stats: OnceLock<Vec<ColumnStats>>,
}

impl Segment {
    /// Seal a segment from columns matching `schema`. All columns must have
    /// the same length and the schema's types; violations are reported with
    /// the offending column's name.
    ///
    /// Per-column [`ColumnStats`] are the segment's *introspection* surface
    /// (fast `null_count`, per-segment min/max for users and future
    /// pruning); they are computed lazily on first access and cached for the
    /// segment's lifetime. Engine profiles deliberately do **not** reuse
    /// them: a profile's summaries must be foldable (they carry
    /// distinct-value sets the sealed form drops to stay small), so
    /// preparing an engine scans each segment itself — the price of keeping
    /// segments lean while profiles stay exactly mergeable.
    pub fn new(schema: &Schema, columns: Vec<Column>) -> Result<Self> {
        let num_rows = validate_columns(schema, &columns)?;
        Ok(Segment {
            columns,
            num_rows,
            stats: OnceLock::new(),
        })
    }

    /// Number of rows in this segment.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// True if the segment holds no rows.
    pub fn is_empty(&self) -> bool {
        self.num_rows == 0
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// The segment's columns, in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The column at schema position `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// The statistics of every column, in schema order (computed on first
    /// access, cached afterwards).
    pub fn stats(&self) -> &[ColumnStats] {
        self.stats.get_or_init(|| {
            let full = Bitmap::new_full(self.num_rows);
            self.columns
                .iter()
                .map(|c| ColumnSummary::compute(c, &full, 0).to_stats())
                .collect()
        })
    }

    /// The statistics of the column at schema position `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn column_stats(&self, idx: usize) -> &ColumnStats {
        &self.stats()[idx]
    }
}

/// The one shared column-set validation: schema arity, per-column length
/// agreement and schema types, reporting violations with the offending
/// column's name. Returns the common row count. Used by [`Segment::new`],
/// `Table::new` (before chunking) and `Table::from_segments` (on sealed
/// segments, whose lengths are already consistent).
pub(crate) fn validate_columns(schema: &Schema, columns: &[Column]) -> Result<usize> {
    if schema.len() != columns.len() {
        return Err(ColumnarError::LengthMismatch {
            expected: schema.len(),
            found: columns.len(),
        });
    }
    let num_rows = columns.first().map(|c| c.len()).unwrap_or(0);
    for (field, column) in schema.fields().iter().zip(columns.iter()) {
        if column.len() != num_rows {
            return Err(ColumnarError::ColumnLengthMismatch {
                column: field.name.clone(),
                expected: num_rows,
                found: column.len(),
            });
        }
        if column.data_type() != field.dtype {
            return Err(ColumnarError::ColumnTypeMismatch {
                column: field.name.clone(),
                expected: field.dtype.name().to_string(),
                found: column.data_type().name().to_string(),
            });
        }
    }
    Ok(num_rows)
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "segment [{} rows x {} columns]",
            self.num_rows,
            self.columns.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::DictColumn;
    use crate::schema::Field;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("age", DataType::Int),
            Field::new("name", DataType::Str),
        ])
        .unwrap()
    }

    #[test]
    fn stats_are_computed_lazily_and_cached() {
        let ages = Column::Int(vec![Some(20), None, Some(40)].into());
        let mut d = DictColumn::new();
        for n in ["ann", "bob", "ann"] {
            d.push(Some(n));
        }
        let seg = Segment::new(&schema(), vec![ages, Column::Str(d)]).unwrap();
        assert_eq!(seg.num_rows(), 3);
        assert_eq!(seg.num_columns(), 2);
        assert!(!seg.is_empty());
        assert_eq!(seg.column_stats(0).non_null_count, 2);
        assert_eq!(seg.column_stats(0).null_count, 1);
        assert_eq!(seg.column_stats(0).min, Some(20.0));
        assert_eq!(seg.column_stats(1).distinct_count, 2);
        assert_eq!(seg.stats().len(), 2);
        assert_eq!(seg.to_string(), "segment [3 rows x 2 columns]");
    }

    #[test]
    fn mismatches_name_the_offending_column() {
        // Length mismatch between the two columns.
        let ages = Column::Int(vec![Some(20), Some(30)].into());
        let mut d = DictColumn::new();
        d.push(Some("ann"));
        let err = Segment::new(&schema(), vec![ages, Column::Str(d)]).unwrap_err();
        match err {
            ColumnarError::ColumnLengthMismatch {
                column,
                expected,
                found,
            } => {
                assert_eq!(column, "name");
                assert_eq!((expected, found), (2, 1));
            }
            other => panic!("unexpected error: {other}"),
        }
        // Type mismatch on a named column.
        let wrong = Column::Float(vec![Some(1.0)].into());
        let mut d = DictColumn::new();
        d.push(Some("ann"));
        let err = Segment::new(&schema(), vec![wrong, Column::Str(d)]).unwrap_err();
        match err {
            ColumnarError::ColumnTypeMismatch { column, .. } => assert_eq!(column, "age"),
            other => panic!("unexpected error: {other}"),
        }
        // Wrong column count keeps the schema-arity error.
        assert!(matches!(
            Segment::new(&schema(), vec![]),
            Err(ColumnarError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn default_segment_rows_is_positive() {
        assert!(default_segment_rows() >= 1);
    }
}
