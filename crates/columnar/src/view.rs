//! Table-spanning column views over segmented storage.
//!
//! A [`ColumnView`] is what [`crate::Table::column`] hands out: a lightweight
//! (`Copy`) handle addressing one schema column across every segment of a
//! table. It exposes the same scan kernels the monolithic `Column` offers —
//! range/set selection, one-pass partitioning, frequency counting, min/max,
//! null masks — but each kernel walks the segments **in row order**, operating
//! on the segment's slice of the table-wide selection bitmap
//! ([`Bitmap::for_each_one_in`] / [`Bitmap::filter_ones_in_into`]) and
//! assembling results in global row coordinates. Every kernel on this type
//! is therefore bit-for-bit independent of the segment layout. (Quantile
//! *sketches*, which live in the engine profile rather than here, are the
//! one ε-approximate exception — see `atlas-stats::gk`.)
//!
//! String columns are dictionary-encoded **per segment**: each kernel resolves
//! its value set against each segment's dictionary (one cheap lookup per
//! segment, never a per-row string comparison), and the merged first-appearance
//! order over all segments — [`ColumnView::dictionary`] — matches the order a
//! single table-wide dictionary would have produced.

use crate::bitmap::Bitmap;
use crate::colstats::{ColumnStats, ColumnSummary};
use crate::column::{Column, NULL_CODE};
use crate::error::{ColumnarError, Result};
use crate::kernels;
use crate::table::Table;
use crate::value::{DataType, Value};
use std::collections::{HashMap, HashSet};

/// A view of one column across every segment of a [`Table`].
#[derive(Clone, Copy)]
pub struct ColumnView<'a> {
    table: &'a Table,
    col: usize,
    dtype: DataType,
}

impl<'a> ColumnView<'a> {
    pub(crate) fn new(table: &'a Table, col: usize) -> Self {
        ColumnView {
            table,
            col,
            dtype: table.schema.fields()[col].dtype,
        }
    }

    /// The column name.
    pub fn name(&self) -> &'a str {
        &self.table.schema.fields()[self.col].name
    }

    /// The data type of the column.
    pub fn data_type(&self) -> DataType {
        self.dtype
    }

    /// Number of rows (the table's row count).
    pub fn len(&self) -> usize {
        self.table.num_rows
    }

    /// True if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.table.num_rows == 0
    }

    /// The column's segment-local parts, in row order, as
    /// `(global_offset, column)` pairs.
    pub fn parts(&self) -> impl Iterator<Item = (usize, &'a Column)> + '_ {
        self.table
            .segments
            .iter()
            .zip(self.table.offsets.iter())
            .map(move |(segment, &offset)| (offset, &segment.columns()[self.col]))
    }

    /// The segment-local column containing global `row`, with its offset.
    fn part_of(&self, row: usize) -> (usize, &'a Column) {
        let (offset, segment) = self.table.segment_of(row);
        (offset, &segment.columns()[self.col])
    }

    /// The value at `row` as a dynamically-typed [`Value`].
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    pub fn value(&self, row: usize) -> Value {
        let (offset, column) = self.part_of(row);
        column.value(row - offset)
    }

    /// Checked version of [`ColumnView::value`].
    pub fn try_value(&self, row: usize) -> Result<Value> {
        if row >= self.len() {
            return Err(ColumnarError::RowOutOfBounds {
                row,
                len: self.len(),
            });
        }
        Ok(self.value(row))
    }

    /// True if the value at `row` is NULL.
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    pub fn is_null(&self, row: usize) -> bool {
        let (offset, column) = self.part_of(row);
        column.is_null(row - offset)
    }

    /// Number of NULL entries, served from the segments' cached statistics.
    pub fn null_count(&self) -> usize {
        self.table
            .segments
            .iter()
            .map(|s| s.column_stats(self.col).null_count)
            .sum()
    }

    /// Numeric view of the value at `row` (`None` for NULL or non-numeric).
    pub fn numeric(&self, row: usize) -> Option<f64> {
        let (offset, column) = self.part_of(row);
        column.numeric(row - offset)
    }

    /// Summary statistics over the selected rows: one mergeable
    /// [`ColumnSummary`] per segment, folded in row order.
    pub fn summary(&self, sel: &Bitmap) -> ColumnSummary {
        let mut acc = ColumnSummary::empty(self.dtype);
        for (offset, column) in self.parts() {
            acc.merge_from(&ColumnSummary::compute(column, sel, offset));
        }
        acc
    }

    /// [`ColumnView::summary`] collapsed into the public statistics form.
    ///
    /// String columns take a transient fast path: cross-segment distinct
    /// values are deduplicated through a set of `&str` **borrowed from the
    /// segment dictionaries**, so the per-query statistics of a drill-down
    /// working set allocate nothing per distinct value (the owned value sets
    /// of [`ColumnSummary`] are only materialised when a summary is retained,
    /// as the engine's table profile does).
    pub fn stats(&self, sel: &Bitmap) -> ColumnStats {
        if self.dtype == DataType::Str {
            let mut non_null = 0usize;
            let mut nulls = 0usize;
            let mut distinct: HashSet<&str> = HashSet::new();
            for (offset, column) in self.parts() {
                let d = column.as_dict().expect("schema says string column");
                let mut seen = vec![false; d.cardinality()];
                sel.for_each_one_in(offset, offset + d.len(), |idx| {
                    let code = d.code(idx - offset);
                    if code == NULL_CODE {
                        nulls += 1;
                    } else {
                        non_null += 1;
                        seen[code as usize] = true;
                    }
                });
                for (code, seen) in seen.into_iter().enumerate() {
                    if seen {
                        distinct.insert(d.dictionary()[code].as_str());
                    }
                }
            }
            return ColumnStats {
                dtype: DataType::Str,
                non_null_count: non_null,
                null_count: nulls,
                distinct_count: distinct.len(),
                min: None,
                max: None,
                mean: None,
                variance: None,
            };
        }
        self.summary(sel).to_stats()
    }

    /// Collect the non-NULL numeric values for the rows selected by `sel`, in
    /// global row order. Non-numeric columns return an empty vector. This is
    /// the main scan kernel the `CUT` primitive relies on.
    pub fn numeric_values_where(&self, sel: &Bitmap) -> Vec<f64> {
        if !matches!(self.dtype, DataType::Int | DataType::Float) {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(sel.count().min(self.len()));
        for (offset, column) in self.parts() {
            kernels::numeric_values_part(column, offset, sel, &mut out);
        }
        out
    }

    /// Select the rows whose numeric value lies in `[lo, hi]` (inclusive),
    /// restricted to `sel`. NULLs never match. Non-numeric columns return an
    /// empty selection.
    ///
    /// Word-parallel kernel (see [`crate::kernels`]): each segment walks its
    /// slice of the selection word by word, validity comes from the null-mask
    /// words, and dense 64-row blocks classify with lane-wise compares
    /// assembled directly into the shared output bitmap.
    pub fn select_range(&self, sel: &Bitmap, lo: f64, hi: f64) -> Bitmap {
        let mut out = Bitmap::new_empty(sel.len());
        let bounds = [(lo, hi)];
        let spec = kernels::resolve_ranges(self.dtype, &bounds);
        for (offset, column) in self.parts() {
            kernels::select_ranges_part(
                column,
                offset,
                sel,
                &bounds,
                &spec,
                std::slice::from_mut(&mut out),
            );
        }
        out
    }

    /// Select the rows whose categorical value is in `values`, restricted to
    /// `sel`. For boolean columns the values `"true"` / `"false"` are
    /// honoured. NULLs never match. Numeric columns match on the decimal
    /// rendering of the value, so set predicates degrade gracefully on
    /// integers.
    pub fn select_in<S: AsRef<str>>(&self, sel: &Bitmap, values: &[S]) -> Bitmap {
        self.select_in_iter(sel, values.iter().map(S::as_ref))
    }

    /// [`ColumnView::select_in`] over a borrowed value iterator (no value-set
    /// clone required).
    ///
    /// The value set is resolved once per segment — to that segment's
    /// dictionary codes for string columns (membership is then one indexed
    /// load per row, never a string comparison) — and once overall for the
    /// other types.
    pub fn select_in_iter<'v, I>(&self, sel: &Bitmap, values: I) -> Bitmap
    where
        I: IntoIterator<Item = &'v str>,
    {
        let mut out = Bitmap::new_empty(sel.len());
        match self.dtype {
            DataType::Str => {
                let values: Vec<&str> = values.into_iter().collect();
                for (offset, column) in self.parts() {
                    let d = column.as_dict().expect("schema says string column");
                    let mut codes: Vec<u32> = values.iter().filter_map(|v| d.code_of(v)).collect();
                    if codes.is_empty() {
                        continue;
                    }
                    codes.sort_unstable();
                    let end = offset + d.len();
                    sel.filter_ones_in_into(offset, end, &mut out, |idx| {
                        let code = d.code(idx - offset);
                        code != NULL_CODE && codes.binary_search(&code).is_ok()
                    });
                }
            }
            DataType::Bool => {
                let mut want_true = false;
                let mut want_false = false;
                for s in values {
                    want_true |= s.eq_ignore_ascii_case("true");
                    want_false |= s.eq_ignore_ascii_case("false");
                }
                for (offset, column) in self.parts() {
                    let Column::Bool(v) = column else { continue };
                    let end = offset + v.len();
                    sel.filter_ones_in_into(offset, end, &mut out, |idx| {
                        match v.get(idx - offset) {
                            Some(true) => want_true,
                            Some(false) => want_false,
                            None => false,
                        }
                    });
                }
            }
            DataType::Int => {
                // Parse the value set once; the round-trip check keeps the
                // semantics of decimal-rendering equality (e.g. "007" or "+7"
                // still never match the value 7).
                let wanted: Vec<i64> = values
                    .into_iter()
                    .filter_map(|s| s.parse::<i64>().ok().filter(|x| x.to_string() == s))
                    .collect();
                if wanted.is_empty() {
                    return out;
                }
                for (offset, column) in self.parts() {
                    let Column::Int(v) = column else { continue };
                    let end = offset + v.len();
                    sel.filter_ones_in_into(offset, end, &mut out, |idx| {
                        match v.get(idx - offset) {
                            Some(x) => wanted.contains(&x),
                            None => false,
                        }
                    });
                }
            }
            DataType::Float => {
                let wanted: HashSet<&str> = values.into_iter().collect();
                if wanted.is_empty() {
                    return out;
                }
                for (offset, column) in self.parts() {
                    let Column::Float(v) = column else { continue };
                    let end = offset + v.len();
                    sel.filter_ones_in_into(offset, end, &mut out, |idx| {
                        match v.get(idx - offset) {
                            Some(x) => wanted.contains(x.to_string().as_str()),
                            None => false,
                        }
                    });
                }
            }
        }
        out
    }

    /// Partition the selected rows into one selection per numeric range, in a
    /// **single pass** over the column (instead of one
    /// [`ColumnView::select_range`] scan per region).
    ///
    /// `bounds` are inclusive `[lo, hi]` intervals and must be pairwise
    /// disjoint (each row is assigned to the first interval containing its
    /// value — for disjoint intervals, the only one). NULLs fall into no
    /// region; non-numeric columns return all-empty selections.
    ///
    /// The bounds are resolved once (for integer columns: to the exact `i64`
    /// intervals matching the `f64` semantics) and each segment runs the
    /// word-parallel partition kernel of [`crate::kernels`];
    /// `ATLAS_FORCE_SCALAR=1` selects the one-row-at-a-time reference.
    pub fn select_ranges(&self, sel: &Bitmap, bounds: &[(f64, f64)]) -> Vec<Bitmap> {
        let mut out: Vec<Bitmap> = bounds
            .iter()
            .map(|_| Bitmap::new_empty(sel.len()))
            .collect();
        let spec = kernels::resolve_ranges(self.dtype, bounds);
        for (offset, column) in self.parts() {
            kernels::select_ranges_part(column, offset, sel, bounds, &spec, &mut out);
        }
        out
    }

    /// Partition the selected rows into one selection per value group, in a
    /// **single pass** over the column (instead of one
    /// [`ColumnView::select_in`] scan per group).
    ///
    /// Groups must be pairwise disjoint value sets. String columns resolve
    /// every group against each segment's dictionary once (a code→group
    /// table, or lane-wise range compares when the dictionary is sorted and
    /// the groups are contiguous code ranges); boolean columns honour
    /// `"true"` / `"false"`; numeric columns resolve a combined value→group
    /// map once and classify in the same single pass (no per-group rescans).
    pub fn select_in_groups(&self, sel: &Bitmap, groups: &[Vec<String>]) -> Vec<Bitmap> {
        let mut out: Vec<Bitmap> = groups
            .iter()
            .map(|_| Bitmap::new_empty(sel.len()))
            .collect();
        let spec = kernels::resolve_groups(self.dtype, groups);
        for (offset, column) in self.parts() {
            kernels::select_in_groups_part(column, offset, sel, groups, &spec, &mut out);
        }
        out
    }

    /// The rows holding a non-NULL value, as a bitmap over the table's rows
    /// (the inverted null mask), assembled a word at a time per segment.
    pub fn non_null_mask(&self) -> Bitmap {
        let mut out = Bitmap::new_empty(self.len());
        for (offset, column) in self.parts() {
            let end = offset + column.len();
            match column {
                Column::Int(v) => {
                    out.fill_range_from_fn(offset, end, |idx| v.validity().get(idx - offset))
                }
                Column::Float(v) => {
                    out.fill_range_from_fn(offset, end, |idx| v.validity().get(idx - offset))
                }
                Column::Bool(v) => {
                    out.fill_range_from_fn(offset, end, |idx| v.validity().get(idx - offset))
                }
                Column::Str(d) => {
                    out.fill_range_from_fn(offset, end, |idx| d.code(idx - offset) != NULL_CODE)
                }
            }
        }
        out
    }

    /// The distinct categorical values of the rows selected by `sel`, ordered
    /// by decreasing frequency (ties broken by first appearance over the
    /// whole column — the order a single table-wide dictionary would give).
    ///
    /// Numeric columns return an empty vector.
    pub fn categories_by_frequency(&self, sel: &Bitmap) -> Vec<(String, usize)> {
        rank_categories_by_frequency(self.category_counts(sel))
    }

    /// The raw per-category selected counts, one `(value, count)` pair per
    /// distinct value in **global first-appearance order**, *including zero
    /// counts* — the mergeable precursor of
    /// [`ColumnView::categories_by_frequency`].
    ///
    /// Per-range count vectors fold with [`merge_category_counts`] (in row
    /// order) into exactly the vector this method computes over the union of
    /// the ranges, and [`rank_categories_by_frequency`] turns the folded
    /// vector into the final frequency ranking — which is how a distributed
    /// coordinator reproduces the local ranking bit for bit from per-shard
    /// counts. Numeric columns return an empty vector.
    pub fn category_counts(&self, sel: &Bitmap) -> Vec<(String, usize)> {
        match self.dtype {
            DataType::Str => {
                // (value, selected count) in global first-appearance order:
                // walking segment dictionaries in row order visits values
                // exactly in the order a shared dictionary would have interned
                // them.
                let mut order: Vec<(String, usize)> = Vec::new();
                let mut index: HashMap<String, usize> = HashMap::new();
                for (offset, column) in self.parts() {
                    let d = column.as_dict().expect("schema says string column");
                    // The extra trailing slot absorbs NULL lanes (see
                    // `count_codes_part`); only the real codes are merged.
                    let mut counts = vec![0usize; d.cardinality() + 1];
                    kernels::count_codes_part(d, offset, sel, &mut counts);
                    for (code, value) in d.dictionary().iter().enumerate() {
                        match index.get(value.as_str()) {
                            Some(&pos) => order[pos].1 += counts[code],
                            None => {
                                index.insert(value.clone(), order.len());
                                order.push((value.clone(), counts[code]));
                            }
                        }
                    }
                }
                order
            }
            DataType::Bool => {
                let mut t = 0usize;
                let mut f = 0usize;
                for (offset, column) in self.parts() {
                    let Column::Bool(v) = column else { continue };
                    let end = offset + v.len();
                    sel.for_each_one_in(offset, end, |idx| match v.get(idx - offset) {
                        Some(true) => t += 1,
                        Some(false) => f += 1,
                        None => {}
                    });
                }
                vec![("true".to_string(), t), ("false".to_string(), f)]
            }
            _ => Vec::new(),
        }
    }

    /// Minimum and maximum of the non-NULL numeric values selected by `sel`.
    pub fn numeric_min_max(&self, sel: &Bitmap) -> Option<(f64, f64)> {
        if !matches!(self.dtype, DataType::Int | DataType::Float) {
            return None;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut seen = false;
        for (offset, column) in self.parts() {
            let end = offset + column.len();
            match column {
                Column::Int(v) => sel.for_each_one_in(offset, end, |idx| {
                    if let Some(x) = v.get(idx - offset) {
                        let x = x as f64;
                        min = min.min(x);
                        max = max.max(x);
                        seen = true;
                    }
                }),
                Column::Float(v) => sel.for_each_one_in(offset, end, |idx| {
                    if let Some(x) = v.get(idx - offset) {
                        min = min.min(x);
                        max = max.max(x);
                        seen = true;
                    }
                }),
                _ => {}
            }
        }
        seen.then_some((min, max))
    }

    /// The distinct values of a string column in **global first-appearance
    /// order** — the order a single table-wide dictionary would list them.
    /// Non-string columns return an empty vector.
    pub fn dictionary(&self) -> Vec<String> {
        if self.dtype != DataType::Str {
            return Vec::new();
        }
        let mut order: Vec<String> = Vec::new();
        let mut seen: HashSet<String> = HashSet::new();
        for (_, column) in self.parts() {
            let d = column.as_dict().expect("schema says string column");
            for value in d.dictionary() {
                if !seen.contains(value.as_str()) {
                    seen.insert(value.clone());
                    order.push(value.clone());
                }
            }
        }
        order
    }

    /// Per-row codes of a string column against the merged global dictionary
    /// ([`ColumnView::dictionary`] order), with [`NULL_CODE`] for NULLs — the
    /// label vector clustering-quality metrics consume. Non-string columns
    /// return an empty vector.
    pub fn category_codes(&self) -> Vec<u32> {
        if self.dtype != DataType::Str {
            return Vec::new();
        }
        let mut out = vec![NULL_CODE; self.len()];
        let mut global: HashMap<String, u32> = HashMap::new();
        for (offset, column) in self.parts() {
            let d = column.as_dict().expect("schema says string column");
            // Segment code → global code, resolved once per segment.
            let translate: Vec<u32> = d
                .dictionary()
                .iter()
                .map(|value| {
                    if let Some(&code) = global.get(value.as_str()) {
                        code
                    } else {
                        let code = global.len() as u32;
                        global.insert(value.clone(), code);
                        code
                    }
                })
                .collect();
            for local in 0..d.len() {
                let code = d.code(local);
                if code != NULL_CODE {
                    out[offset + local] = translate[code as usize];
                }
            }
        }
        out
    }
}

/// Fold one more per-range category count vector (`next`, covering the rows
/// **after** everything already folded into `acc`) into an accumulator, both
/// in the first-appearance order of [`ColumnView::category_counts`].
///
/// Known values add their counts; new values append — exactly what
/// [`ColumnView::category_counts`] does when it walks the next segment's
/// dictionary, so folding per-range vectors in row order reproduces the
/// whole-column vector, order included.
pub fn merge_category_counts(acc: &mut Vec<(String, usize)>, next: &[(String, usize)]) {
    let mut index: HashMap<String, usize> = acc
        .iter()
        .enumerate()
        .map(|(pos, (value, _))| (value.clone(), pos))
        .collect();
    for (value, count) in next {
        match index.get(value.as_str()) {
            Some(&pos) => acc[pos].1 += count,
            None => {
                index.insert(value.clone(), acc.len());
                acc.push((value.clone(), *count));
            }
        }
    }
}

/// Collapse a [`ColumnView::category_counts`] vector into the
/// [`ColumnView::categories_by_frequency`] ranking: drop zero counts, then
/// stable-sort by decreasing count (ties keep first-appearance order).
pub fn rank_categories_by_frequency(counts: Vec<(String, usize)>) -> Vec<(String, usize)> {
    let mut pairs: Vec<(String, usize)> = counts.into_iter().filter(|(_, n)| *n > 0).collect();
    pairs.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    pairs
}

impl std::fmt::Debug for ColumnView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColumnView")
            .field("name", &self.name())
            .field("dtype", &self.dtype)
            .field("len", &self.len())
            .field("segments", &self.table.num_segments())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TableBuilder;
    use crate::schema::{Field, Schema};

    /// A mixed-type table built with a tiny segment size so every kernel
    /// crosses segment boundaries (including unaligned ones: 7 rows per
    /// segment straddles the 64-bit word boundaries of the selection bitmaps).
    fn segmented_table(rows: usize, segment_rows: usize) -> Table {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Int),
            Field::new("f", DataType::Float),
            Field::new("c", DataType::Str),
            Field::new("b", DataType::Bool),
        ])
        .unwrap();
        let mut builder = TableBuilder::new("t", schema).with_segment_rows(segment_rows);
        for i in 0..rows {
            let x = if i % 11 == 0 {
                Value::Null
            } else {
                Value::Int((i % 50) as i64)
            };
            let c = ["red", "green", "blue", "red", "green"][i % 5];
            builder
                .push_row(&[
                    x,
                    Value::Float(i as f64 / 3.0),
                    Value::Str(c.to_string()),
                    Value::Bool(i % 3 == 0),
                ])
                .unwrap();
        }
        builder.build().unwrap()
    }

    /// The same data in one segment, as the reference.
    fn reference_table(rows: usize) -> Table {
        segmented_table(rows, usize::MAX)
    }

    #[test]
    fn kernels_are_identical_across_segment_layouts() {
        let rows = 200;
        let reference = reference_table(rows);
        for segment_rows in [7usize, 64, 100, 199] {
            let segmented = segmented_table(rows, segment_rows);
            assert!(segmented.num_segments() > 1, "segment_rows={segment_rows}");
            let sel = Bitmap::from_indices(rows, (0..rows).filter(|i| i % 3 != 1));
            for name in ["x", "f", "c", "b"] {
                let a = reference.column(name).unwrap();
                let b = segmented.column(name).unwrap();
                assert_eq!(
                    a.numeric_values_where(&sel),
                    b.numeric_values_where(&sel),
                    "{name} @ {segment_rows}"
                );
                assert_eq!(
                    a.select_range(&sel, 5.0, 30.0),
                    b.select_range(&sel, 5.0, 30.0)
                );
                assert_eq!(
                    a.select_in(
                        &sel,
                        &["red".to_string(), "true".to_string(), "7".to_string()]
                    ),
                    b.select_in(
                        &sel,
                        &["red".to_string(), "true".to_string(), "7".to_string()]
                    )
                );
                assert_eq!(
                    a.select_ranges(&sel, &[(0.0, 10.0), (10.5, 40.0)]),
                    b.select_ranges(&sel, &[(0.0, 10.0), (10.5, 40.0)])
                );
                assert_eq!(
                    a.select_in_groups(
                        &sel,
                        &[
                            vec!["red".to_string()],
                            vec!["green".to_string(), "blue".to_string()]
                        ]
                    ),
                    b.select_in_groups(
                        &sel,
                        &[
                            vec!["red".to_string()],
                            vec!["green".to_string(), "blue".to_string()]
                        ]
                    )
                );
                assert_eq!(a.non_null_mask(), b.non_null_mask(), "{name}");
                assert_eq!(
                    a.categories_by_frequency(&sel),
                    b.categories_by_frequency(&sel)
                );
                assert_eq!(a.numeric_min_max(&sel), b.numeric_min_max(&sel));
                assert_eq!(a.null_count(), b.null_count());
                let sa = a.stats(&sel);
                let sb = b.stats(&sel);
                assert_eq!(sa.non_null_count, sb.non_null_count);
                assert_eq!(sa.null_count, sb.null_count);
                assert_eq!(sa.distinct_count, sb.distinct_count, "{name}");
                assert_eq!(sa.min, sb.min);
                assert_eq!(sa.max, sb.max);
                for row in [0usize, 63, 64, rows - 1] {
                    assert_eq!(a.value(row), b.value(row));
                    assert_eq!(a.is_null(row), b.is_null(row));
                    assert_eq!(a.numeric(row), b.numeric(row));
                }
            }
            assert_eq!(
                reference.column("c").unwrap().dictionary(),
                segmented.column("c").unwrap().dictionary()
            );
            assert_eq!(
                reference.column("c").unwrap().category_codes(),
                segmented.column("c").unwrap().category_codes()
            );
        }
    }

    #[test]
    fn per_segment_category_counts_fold_into_the_whole_column_ranking() {
        // The distributed contract: category counts computed per segment (on
        // single-segment tables, as a shard would) and folded in row order
        // with `merge_category_counts` equal the whole-column counts, and
        // ranking the folded vector equals `categories_by_frequency`.
        let table = segmented_table(200, 7);
        let sel = Bitmap::from_indices(200, (0..200).filter(|i| i % 3 != 1));
        for name in ["c", "b", "x"] {
            let whole = table.column(name).unwrap();
            let mut folded: Vec<(String, usize)> = Vec::new();
            for (seg_idx, segment) in table.segments().iter().enumerate() {
                let offset = table.segment_offset(seg_idx);
                let single = Table::from_segments(
                    table.name(),
                    table.schema().clone(),
                    vec![std::sync::Arc::clone(segment)],
                )
                .unwrap();
                let local_sel = Bitmap::from_indices(
                    segment.num_rows(),
                    (0..segment.num_rows()).filter(|i| sel.get(offset + i)),
                );
                let part = single.column(name).unwrap().category_counts(&local_sel);
                merge_category_counts(&mut folded, &part);
            }
            assert_eq!(folded, whole.category_counts(&sel), "{name}");
            assert_eq!(
                rank_categories_by_frequency(folded),
                whole.categories_by_frequency(&sel),
                "{name}"
            );
        }
    }

    #[test]
    fn view_accessors_and_bounds() {
        let t = segmented_table(20, 6);
        let x = t.column("x").unwrap();
        assert_eq!(x.name(), "x");
        assert_eq!(x.data_type(), DataType::Int);
        assert_eq!(x.len(), 20);
        assert!(!x.is_empty());
        assert!(x.try_value(19).is_ok());
        assert!(matches!(
            x.try_value(20),
            Err(ColumnarError::RowOutOfBounds { .. })
        ));
        assert!(format!("{x:?}").contains("ColumnView"));
        // Non-string columns have no dictionary or category codes.
        assert!(x.dictionary().is_empty());
        assert!(x.category_codes().is_empty());
        // String dictionary merges per-segment dictionaries in order.
        let c = t.column("c").unwrap();
        assert_eq!(c.dictionary(), vec!["red", "green", "blue"]);
        let codes = c.category_codes();
        assert_eq!(codes.len(), 20);
        assert_eq!(codes[0], 0, "first row is red");
        assert_eq!(codes[1], 1, "second row is green");
    }

    #[test]
    fn select_range_pins_nan_and_inverted_bound_semantics() {
        // Satellite regression: pin the current inclusive-bound behaviour
        // before (and after) the kernels went per-segment.
        for segment_rows in [usize::MAX, 3] {
            let schema = Schema::new(vec![Field::new("v", DataType::Float)]).unwrap();
            let mut b = TableBuilder::new("t", schema).with_segment_rows(segment_rows);
            for v in [1.0, f64::NAN, 2.0, 3.0, f64::NAN, 4.0] {
                b.push_row(&[Value::Float(v)]).unwrap();
            }
            let t = b.build().unwrap();
            let col = t.column("v").unwrap();
            let all = t.full_selection();
            // NaN values never match a range.
            assert_eq!(
                col.select_range(&all, f64::NEG_INFINITY, f64::INFINITY)
                    .to_indices(),
                vec![0, 2, 3, 5],
                "segment_rows={segment_rows}"
            );
            // Bounds are inclusive on both ends.
            assert_eq!(col.select_range(&all, 2.0, 3.0).to_indices(), vec![2, 3]);
            // Inverted bounds select nothing.
            assert!(col.select_range(&all, 3.0, 2.0).is_all_clear());
            // NaN bounds select nothing.
            assert!(col.select_range(&all, f64::NAN, 10.0).is_all_clear());
            assert!(col.select_range(&all, 0.0, f64::NAN).is_all_clear());
            // One-pass partitioning agrees on the same edge cases.
            let parts = col.select_ranges(&all, &[(3.0, 2.0), (2.0, 3.0)]);
            assert!(parts[0].is_all_clear());
            assert_eq!(parts[1].to_indices(), vec![2, 3]);
        }
    }
}
