//! Equi-join materialisation.
//!
//! Section 5.2 of the paper ("Real life databases"): "the logical layout of
//! the data is more complex than one large table: we have to consider multiple
//! tables with foreign key relationships. The naive way to deal with this
//! would be to materialize the join into one large temporary table."
//!
//! Atlas explores a single working set, so that is exactly the integration
//! point this module provides: a hash-based inner equi-join that materialises
//! the denormalised table Atlas then maps. Column name clashes are resolved by
//! prefixing the right-hand columns with the right table's name.

use crate::builder::TableBuilder;
use crate::error::{ColumnarError, Result};
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::{DataType, Value};
use std::collections::HashMap;

/// A join key value, normalised so that `Int(3)` in one table matches
/// `Int(3)` in the other. Only integer and string keys are supported — these
/// are what foreign keys look like; joining on floats is refused.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum JoinKey {
    Int(i64),
    Str(String),
    Bool(bool),
}

fn join_key(value: &Value) -> Option<JoinKey> {
    match value {
        Value::Int(v) => Some(JoinKey::Int(*v)),
        Value::Str(s) => Some(JoinKey::Str(s.clone())),
        Value::Bool(b) => Some(JoinKey::Bool(*b)),
        Value::Null | Value::Float(_) => None,
    }
}

/// Materialise the inner equi-join `left ⋈ right ON left.left_key = right.right_key`.
///
/// * NULL keys never match (standard SQL semantics).
/// * Float keys are rejected with a type-mismatch error.
/// * The result contains every column of `left` followed by every column of
///   `right` except the join key; columns of `right` whose name clashes with a
///   column of `left` are renamed to `<right_table>_<column>`.
pub fn hash_join(
    name: impl Into<String>,
    left: &Table,
    left_key: &str,
    right: &Table,
    right_key: &str,
) -> Result<Table> {
    let left_key_column = left.column(left_key)?;
    let right_key_column = right.column(right_key)?;
    for (key_name, column) in [(left_key, &left_key_column), (right_key, &right_key_column)] {
        if column.data_type() == DataType::Float {
            return Err(ColumnarError::TypeMismatch {
                expected: "int, str or bool join key".to_string(),
                found: format!("float key column '{key_name}'"),
            });
        }
    }

    // Output schema: all left fields, then right fields minus the key,
    // renamed on clash.
    let mut fields: Vec<Field> = left.schema().fields().to_vec();
    let mut right_output: Vec<(usize, String)> = Vec::new();
    for (idx, field) in right.schema().fields().iter().enumerate() {
        if field.name == right_key {
            continue;
        }
        let output_name = if left.schema().contains(&field.name) {
            format!("{}_{}", right.name(), field.name)
        } else {
            field.name.clone()
        };
        fields.push(Field {
            name: output_name.clone(),
            dtype: field.dtype,
            nullable: field.nullable,
        });
        right_output.push((idx, output_name));
    }
    let schema = Schema::new(fields)?;
    let mut builder = TableBuilder::new(name, schema);

    // Build phase: hash the smaller side? For clarity hash the right side
    // (dimension tables are the natural right side of a star join).
    let mut index: HashMap<JoinKey, Vec<usize>> = HashMap::new();
    for row in 0..right.num_rows() {
        if let Some(key) = join_key(&right_key_column.value(row)) {
            index.entry(key).or_default().push(row);
        }
    }

    // Probe phase. Rows are fetched with `Table::row` — one segment lookup
    // per row instead of one per cell.
    for left_row in 0..left.num_rows() {
        let Some(key) = join_key(&left_key_column.value(left_row)) else {
            continue;
        };
        let Some(matches) = index.get(&key) else {
            continue;
        };
        let left_values = left.row(left_row)?;
        for &right_row in matches {
            let mut row = left_values.clone();
            let right_values = right.row(right_row)?;
            for (right_idx, _) in &right_output {
                row.push(right_values[*right_idx].clone());
            }
            builder.push_row(&row)?;
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn orders() -> Table {
        let schema = Schema::new(vec![
            Field::new("order_id", DataType::Int),
            Field::new("customer_id", DataType::Int),
            Field::new("amount", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("orders", schema);
        let rows = [
            (1i64, 10i64, 100.0),
            (2, 10, 250.0),
            (3, 20, 50.0),
            (4, 30, 75.0),
            (5, 99, 10.0), // dangling foreign key
        ];
        for (o, c, a) in rows {
            b.push_row(&[Value::Int(o), Value::Int(c), Value::Float(a)])
                .unwrap();
        }
        b.build().unwrap()
    }

    fn customers() -> Table {
        let schema = Schema::new(vec![
            Field::new("customer_id", DataType::Int),
            Field::new("segment", DataType::Str),
            Field::new("amount", DataType::Int), // clashes with orders.amount
        ])
        .unwrap();
        let mut b = TableBuilder::new("customers", schema);
        for (c, s, a) in [
            (10i64, "retail", 1i64),
            (20, "corporate", 2),
            (30, "retail", 3),
        ] {
            b.push_row(&[Value::Int(c), Value::Str(s.into()), Value::Int(a)])
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn inner_join_matches_foreign_keys() {
        let joined = hash_join(
            "orders_c",
            &orders(),
            "customer_id",
            &customers(),
            "customer_id",
        )
        .unwrap();
        // Order 5 references a missing customer, so 4 rows survive.
        assert_eq!(joined.num_rows(), 4);
        // Columns: order_id, customer_id, amount, segment, customers_amount.
        assert_eq!(joined.num_columns(), 5);
        assert!(joined.schema().contains("segment"));
        assert!(joined.schema().contains("customers_amount"));
        assert_eq!(
            joined.value(0, "segment").unwrap(),
            Value::Str("retail".into())
        );
        // The join key from the right side is not duplicated.
        assert_eq!(
            joined
                .schema()
                .names()
                .iter()
                .filter(|n| **n == "customer_id")
                .count(),
            1
        );
    }

    #[test]
    fn one_to_many_join_duplicates_dimension_rows() {
        // Join the other way around: each customer matches all their orders.
        let joined = hash_join(
            "c_orders",
            &customers(),
            "customer_id",
            &orders(),
            "customer_id",
        )
        .unwrap();
        assert_eq!(joined.num_rows(), 4);
        // customer 10 appears twice (two orders).
        let all = joined.full_selection();
        let c10 = joined
            .column("customer_id")
            .unwrap()
            .select_in(&all, &["10".to_string()]);
        assert_eq!(c10.count(), 2);
    }

    #[test]
    fn null_keys_never_match() {
        let schema = Schema::new(vec![
            Field::nullable("k", DataType::Int),
            Field::new("v", DataType::Int),
        ])
        .unwrap();
        let mut b = TableBuilder::new("left", schema.clone());
        b.push_row(&[Value::Null, Value::Int(1)]).unwrap();
        b.push_row(&[Value::Int(7), Value::Int(2)]).unwrap();
        let left = b.build().unwrap();
        let mut b = TableBuilder::new("right", schema);
        b.push_row(&[Value::Null, Value::Int(3)]).unwrap();
        b.push_row(&[Value::Int(7), Value::Int(4)]).unwrap();
        let right = b.build().unwrap();
        let joined = hash_join("j", &left, "k", &right, "k").unwrap();
        assert_eq!(joined.num_rows(), 1);
        assert_eq!(joined.value(0, "v").unwrap(), Value::Int(2));
    }

    #[test]
    fn string_keys_work() {
        let schema = Schema::new(vec![
            Field::new("code", DataType::Str),
            Field::new("x", DataType::Int),
        ])
        .unwrap();
        let mut b = TableBuilder::new("l", schema.clone());
        b.push_row(&[Value::Str("a".into()), Value::Int(1)])
            .unwrap();
        b.push_row(&[Value::Str("b".into()), Value::Int(2)])
            .unwrap();
        let left = b.build().unwrap();
        let schema_r = Schema::new(vec![
            Field::new("code", DataType::Str),
            Field::new("label", DataType::Str),
        ])
        .unwrap();
        let mut b = TableBuilder::new("r", schema_r);
        b.push_row(&[Value::Str("b".into()), Value::Str("beta".into())])
            .unwrap();
        let right = b.build().unwrap();
        let joined = hash_join("j", &left, "code", &right, "code").unwrap();
        assert_eq!(joined.num_rows(), 1);
        assert_eq!(joined.value(0, "label").unwrap(), Value::Str("beta".into()));
    }

    #[test]
    fn float_keys_and_unknown_columns_are_rejected() {
        let o = orders();
        let c = customers();
        assert!(matches!(
            hash_join("j", &o, "amount", &c, "customer_id"),
            Err(ColumnarError::TypeMismatch { .. })
        ));
        assert!(hash_join("j", &o, "nope", &c, "customer_id").is_err());
        assert!(hash_join("j", &o, "customer_id", &c, "nope").is_err());
    }

    #[test]
    fn empty_inputs_produce_empty_output() {
        let schema = Schema::new(vec![Field::new("k", DataType::Int)]).unwrap();
        let left = TableBuilder::new("l", schema.clone()).build().unwrap();
        let right = TableBuilder::new("r", schema).build().unwrap();
        let joined = hash_join("j", &left, "k", &right, "k").unwrap();
        assert_eq!(joined.num_rows(), 0);
    }
}
