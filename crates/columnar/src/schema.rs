//! Relation schemas.

use crate::error::{ColumnarError, Result};
use crate::value::DataType;
use std::fmt;

/// A single column description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name (case-sensitive).
    pub name: String,
    /// Column data type.
    pub dtype: DataType,
    /// Whether NULLs are expected in this column. This is advisory: the storage
    /// layer always supports NULLs, but generators and the CSV reader use it.
    pub nullable: bool,
}

impl Field {
    /// Create a non-nullable field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
            nullable: false,
        }
    }

    /// Create a nullable field.
    pub fn nullable(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
            nullable: true,
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.dtype)?;
        if self.nullable {
            f.write_str(" null")?;
        }
        Ok(())
    }
}

/// An ordered list of fields describing a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from fields, rejecting duplicates and empty schemas.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        if fields.is_empty() {
            return Err(ColumnarError::EmptySchema);
        }
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(ColumnarError::DuplicateField(f.name.clone()));
            }
        }
        Ok(Schema { fields })
    }

    /// The fields, in column order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no columns (never true for a constructed schema).
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The index of the column with the given name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| ColumnarError::UnknownColumn(name.to_string()))
    }

    /// The field with the given name.
    pub fn field(&self, name: &str) -> Result<&Field> {
        let idx = self.index_of(name)?;
        Ok(&self.fields[idx])
    }

    /// The field at the given index, if any.
    pub fn field_at(&self, idx: usize) -> Option<&Field> {
        self.fields.get(idx)
    }

    /// The names of all columns, in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// True if a column with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.fields.iter().any(|f| f.name == name)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{field}")?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_lookup() {
        let schema = Schema::new(vec![
            Field::new("age", DataType::Int),
            Field::nullable("education", DataType::Str),
        ])
        .unwrap();
        assert_eq!(schema.len(), 2);
        assert_eq!(schema.index_of("education").unwrap(), 1);
        assert!(schema.contains("age"));
        assert!(!schema.contains("salary"));
        assert!(matches!(
            schema.index_of("salary"),
            Err(ColumnarError::UnknownColumn(_))
        ));
        assert_eq!(schema.field("age").unwrap().dtype, DataType::Int);
        assert_eq!(schema.names(), vec!["age", "education"]);
        assert!(schema.field_at(0).is_some());
        assert!(schema.field_at(9).is_none());
    }

    #[test]
    fn schema_rejects_duplicates_and_empty() {
        let dup = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("a", DataType::Float),
        ]);
        assert!(matches!(dup, Err(ColumnarError::DuplicateField(_))));
        assert!(matches!(
            Schema::new(vec![]),
            Err(ColumnarError::EmptySchema)
        ));
    }

    #[test]
    fn display_is_readable() {
        let schema = Schema::new(vec![
            Field::new("age", DataType::Int),
            Field::nullable("name", DataType::Str),
        ])
        .unwrap();
        assert_eq!(schema.to_string(), "(age int, name str null)");
    }
}
