//! Error type shared by the columnar engine.

use std::fmt;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, ColumnarError>;

/// Errors raised by the columnar storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnarError {
    /// A column with the given name does not exist in the schema.
    UnknownColumn(String),
    /// A table with the given name does not exist in the catalog.
    UnknownTable(String),
    /// A table with the given name already exists in the catalog.
    DuplicateTable(String),
    /// Two columns (or a column and a schema) disagree on length.
    LengthMismatch {
        /// The expected number of rows.
        expected: usize,
        /// The number of rows actually found.
        found: usize,
    },
    /// A value of the wrong data type was supplied.
    TypeMismatch {
        /// The type that was expected.
        expected: String,
        /// The type that was found.
        found: String,
    },
    /// A named column disagrees with its table (or segment) on length.
    ColumnLengthMismatch {
        /// The offending column.
        column: String,
        /// The expected number of rows.
        expected: usize,
        /// The number of rows actually found.
        found: usize,
    },
    /// A named column disagrees with its schema field on data type.
    ColumnTypeMismatch {
        /// The offending column.
        column: String,
        /// The type the schema declares.
        expected: String,
        /// The type the column actually has.
        found: String,
    },
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// The offending row index.
        row: usize,
        /// The number of rows in the column or table.
        len: usize,
    },
    /// CSV parsing failed.
    Csv {
        /// 1-based line number at which the error occurred.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An I/O error occurred (CSV reading / writing).
    Io(String),
    /// A schema was declared with duplicate field names.
    DuplicateField(String),
    /// A schema has no fields or a table has no columns where one is required.
    EmptySchema,
}

impl fmt::Display for ColumnarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnarError::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            ColumnarError::UnknownTable(name) => write!(f, "unknown table: {name}"),
            ColumnarError::DuplicateTable(name) => write!(f, "table already exists: {name}"),
            ColumnarError::LengthMismatch { expected, found } => {
                write!(
                    f,
                    "length mismatch: expected {expected} rows, found {found}"
                )
            }
            ColumnarError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            ColumnarError::ColumnLengthMismatch {
                column,
                expected,
                found,
            } => {
                write!(
                    f,
                    "column '{column}': length mismatch, expected {expected} rows, found {found}"
                )
            }
            ColumnarError::ColumnTypeMismatch {
                column,
                expected,
                found,
            } => {
                write!(
                    f,
                    "column '{column}': type mismatch, schema declares {expected}, column is {found}"
                )
            }
            ColumnarError::RowOutOfBounds { row, len } => {
                write!(f, "row index {row} out of bounds for length {len}")
            }
            ColumnarError::Csv { line, message } => {
                write!(f, "csv error at line {line}: {message}")
            }
            ColumnarError::Io(msg) => write!(f, "io error: {msg}"),
            ColumnarError::DuplicateField(name) => write!(f, "duplicate field name: {name}"),
            ColumnarError::EmptySchema => write!(f, "schema must contain at least one field"),
        }
    }
}

impl std::error::Error for ColumnarError {}

impl From<std::io::Error> for ColumnarError {
    fn from(err: std::io::Error) -> Self {
        ColumnarError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_details() {
        let err = ColumnarError::UnknownColumn("age".into());
        assert!(err.to_string().contains("age"));
        let err = ColumnarError::LengthMismatch {
            expected: 3,
            found: 5,
        };
        assert!(err.to_string().contains('3'));
        assert!(err.to_string().contains('5'));
        let err = ColumnarError::Csv {
            line: 42,
            message: "bad field".into(),
        };
        assert!(err.to_string().contains("42"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err: ColumnarError = io.into();
        assert!(matches!(err, ColumnarError::Io(_)));
    }
}
