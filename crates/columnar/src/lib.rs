//! # atlas-columnar
//!
//! A small, self-contained, in-memory columnar storage engine. It plays the role
//! that MonetDB plays in the original Atlas prototype ("Fast Cartography for Data
//! Explorers", Sellam & Kersten, VLDB 2013): it stores relations column-wise,
//! answers per-attribute scans restricted by a selection, counts covers, and
//! exposes per-column statistics.
//!
//! Storage is **segmented**: a [`Table`] is an ordered list of immutable
//! [`Segment`]s (contiguous row ranges, each with its own columns and
//! seal-time [`ColumnStats`]), shared individually by `Arc`. Appending data
//! creates a new table that reuses every existing segment, so continuously
//! ingesting workloads extend state instead of invalidating it. All scan
//! kernels ([`ColumnView`]) operate per-segment in global row coordinates and
//! are bit-for-bit independent of the segment layout; the layout is
//! controlled by `ATLAS_SEGMENT_ROWS` ([`segment::default_segment_rows`]).
//!
//! ## Key types
//!
//! * [`Value`] / [`DataType`] — the scalar type system (64-bit integers, 64-bit
//!   floats, dictionary-encoded strings, booleans).
//! * [`Column`] — a typed segment-local column with a null mask; string columns
//!   are dictionary-encoded ([`column::DictColumn`]).
//! * [`Segment`] — an immutable row range: one column per field plus
//!   per-column statistics.
//! * [`ColumnView`] — one schema column across every segment of a table; all
//!   selection / partition / statistics kernels live here.
//! * [`Bitmap`] — a packed selection vector over the table's global rows,
//!   used to represent query results and region extents.
//! * [`Schema`] / [`Field`] — relation schemas.
//! * [`Table`] — an immutable relation (schema + segments), built through a
//!   segment-sealing [`TableBuilder`] or streamed from CSV.
//! * [`Catalog`] — a named collection of tables.
//! * [`ColumnStats`] — per-column summary statistics (min/max, nulls, exact
//!   distinct counts, mean/variance for numeric columns), with
//!   [`colstats::ColumnSummary`] as the exactly-mergeable form.
//!
//! The partition/selection hot path runs word-parallel kernels (64 rows per
//! step — see [`kernels`]); `ATLAS_FORCE_SCALAR=1` routes it through the
//! bit-identical one-row-at-a-time reference implementation instead.

#![warn(missing_docs)]

pub mod bitmap;
pub mod builder;
pub mod catalog;
pub mod colstats;
pub mod column;
pub mod csv;
pub mod error;
pub mod join;
pub mod kernels;
pub mod schema;
pub mod segment;
pub mod table;
pub mod value;
pub mod view;

pub use bitmap::Bitmap;
pub use builder::TableBuilder;
pub use catalog::Catalog;
pub use colstats::{ColumnStats, ColumnSummary, DistinctValues, SummaryParts};
pub use column::{Column, PrimitiveColumn};
pub use error::{ColumnarError, Result};
pub use join::hash_join;
pub use kernels::{active_kernel_path, force_scalar, with_kernel_path, KernelPath};
pub use schema::{Field, Schema};
pub use segment::{default_segment_rows, Segment};
pub use table::Table;
pub use value::{DataType, Value};
pub use view::{merge_category_counts, rank_categories_by_frequency, ColumnView};
