//! # atlas-columnar
//!
//! A small, self-contained, in-memory columnar storage engine. It plays the role
//! that MonetDB plays in the original Atlas prototype ("Fast Cartography for Data
//! Explorers", Sellam & Kersten, VLDB 2013): it stores relations column-wise,
//! answers per-attribute scans restricted by a selection, counts covers, and
//! exposes per-column statistics.
//!
//! The engine is deliberately single-node and single-threaded: Atlas targets a
//! single interactive exploration session, and everything it asks of the DBMS is
//! a sequence of column scans over the (already filtered) working set.
//!
//! ## Key types
//!
//! * [`Value`] / [`DataType`] — the scalar type system (64-bit integers, 64-bit
//!   floats, dictionary-encoded strings, booleans).
//! * [`Column`] — a typed column with a null mask; string columns are
//!   dictionary-encoded ([`column::DictColumn`]).
//! * [`Bitmap`] — a packed selection vector used to represent query results and
//!   region extents.
//! * [`Schema`] / [`Field`] — relation schemas.
//! * [`Table`] — an immutable relation (schema + columns), built through a
//!   [`TableBuilder`] or loaded from CSV.
//! * [`Catalog`] — a named collection of tables.
//! * [`ColumnStats`] — per-column summary statistics (min/max, nulls, distinct
//!   count estimate, mean/variance for numeric columns).

#![warn(missing_docs)]

pub mod bitmap;
pub mod builder;
pub mod catalog;
pub mod colstats;
pub mod column;
pub mod csv;
pub mod error;
pub mod join;
pub mod schema;
pub mod table;
pub mod value;

pub use bitmap::Bitmap;
pub use builder::TableBuilder;
pub use catalog::Catalog;
pub use colstats::ColumnStats;
pub use column::Column;
pub use error::{ColumnarError, Result};
pub use join::hash_join;
pub use schema::{Field, Schema};
pub use table::Table;
pub use value::{DataType, Value};
