//! A named collection of tables.

use crate::error::{ColumnarError, Result};
use crate::table::Table;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The catalog maps table names to shared tables.
///
/// In the original Atlas the catalog lives inside MonetDB; here it is a small
/// map so examples and the explorer can register several datasets and switch
/// between them.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: BTreeMap<String, Arc<Table>>,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table under its own name. Fails if the name is taken.
    pub fn register(&mut self, table: Table) -> Result<Arc<Table>> {
        let name = table.name().to_string();
        if self.tables.contains_key(&name) {
            return Err(ColumnarError::DuplicateTable(name));
        }
        let shared = Arc::new(table);
        self.tables.insert(name, Arc::clone(&shared));
        Ok(shared)
    }

    /// Register or replace a table under its own name.
    pub fn register_or_replace(&mut self, table: Table) -> Arc<Table> {
        let name = table.name().to_string();
        let shared = Arc::new(table);
        self.tables.insert(name, Arc::clone(&shared));
        shared
    }

    /// Fetch a table by name.
    pub fn get(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| ColumnarError::UnknownTable(name.to_string()))
    }

    /// Remove a table by name, returning it if present.
    pub fn drop_table(&mut self, name: &str) -> Option<Arc<Table>> {
        self.tables.remove(name)
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TableBuilder;
    use crate::schema::{Field, Schema};
    use crate::value::{DataType, Value};

    fn tiny_table(name: &str) -> Table {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]).unwrap();
        let mut b = TableBuilder::new(name, schema);
        b.push_row(&[Value::Int(1)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn register_get_drop() {
        let mut cat = Catalog::new();
        assert!(cat.is_empty());
        cat.register(tiny_table("a")).unwrap();
        cat.register(tiny_table("b")).unwrap();
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.table_names(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(cat.get("a").unwrap().num_rows(), 1);
        assert!(matches!(
            cat.get("zzz"),
            Err(ColumnarError::UnknownTable(_))
        ));
        assert!(cat.drop_table("a").is_some());
        assert!(cat.drop_table("a").is_none());
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn duplicate_registration() {
        let mut cat = Catalog::new();
        cat.register(tiny_table("a")).unwrap();
        assert!(matches!(
            cat.register(tiny_table("a")),
            Err(ColumnarError::DuplicateTable(_))
        ));
        // register_or_replace always succeeds
        cat.register_or_replace(tiny_table("a"));
        assert_eq!(cat.len(), 1);
    }
}
