//! Immutable in-memory relations.

use crate::bitmap::Bitmap;
use crate::colstats::ColumnStats;
use crate::column::Column;
use crate::error::{ColumnarError, Result};
use crate::schema::Schema;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// An immutable relation: a schema plus one [`Column`] per field.
///
/// Tables are cheap to share (`Arc<Table>`); Atlas keeps the working set of an
/// exploration session as a single table plus selection bitmaps, never copying
/// rows.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    num_rows: usize,
}

impl Table {
    /// Assemble a table from a schema and matching columns.
    ///
    /// All columns must have the same length and their types must match the
    /// schema.
    pub fn new(name: impl Into<String>, schema: Schema, columns: Vec<Column>) -> Result<Self> {
        if schema.len() != columns.len() {
            return Err(ColumnarError::LengthMismatch {
                expected: schema.len(),
                found: columns.len(),
            });
        }
        let num_rows = columns.first().map(|c| c.len()).unwrap_or(0);
        for (field, column) in schema.fields().iter().zip(columns.iter()) {
            if column.len() != num_rows {
                return Err(ColumnarError::LengthMismatch {
                    expected: num_rows,
                    found: column.len(),
                });
            }
            if column.data_type() != field.dtype {
                return Err(ColumnarError::TypeMismatch {
                    expected: field.dtype.name().to_string(),
                    found: column.data_type().name().to_string(),
                });
            }
        }
        Ok(Table {
            name: name.into(),
            schema,
            columns,
            num_rows,
        })
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// True if the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.num_rows == 0
    }

    /// The column with the given name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        let idx = self.schema.index_of(name)?;
        Ok(&self.columns[idx])
    }

    /// The column at the given index, if any.
    pub fn column_at(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// All columns, in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The value at (`row`, `column_name`).
    pub fn value(&self, row: usize, column_name: &str) -> Result<Value> {
        if row >= self.num_rows {
            return Err(ColumnarError::RowOutOfBounds {
                row,
                len: self.num_rows,
            });
        }
        Ok(self.column(column_name)?.value(row))
    }

    /// A full selection over this table (all rows).
    pub fn full_selection(&self) -> Bitmap {
        Bitmap::new_full(self.num_rows)
    }

    /// An empty selection over this table (no rows).
    pub fn empty_selection(&self) -> Bitmap {
        Bitmap::new_empty(self.num_rows)
    }

    /// Compute summary statistics for the named column over the selected rows.
    pub fn column_stats(&self, name: &str, sel: &Bitmap) -> Result<ColumnStats> {
        let column = self.column(name)?;
        Ok(ColumnStats::compute(column, sel))
    }

    /// Materialise a row as a vector of values (mostly for display / tests).
    pub fn row(&self, row: usize) -> Result<Vec<Value>> {
        if row >= self.num_rows {
            return Err(ColumnarError::RowOutOfBounds {
                row,
                len: self.num_rows,
            });
        }
        Ok(self.columns.iter().map(|c| c.value(row)).collect())
    }

    /// Build a new, smaller table containing only the selected rows.
    ///
    /// Atlas itself never needs this (it works with selections), but the
    /// explorer uses it to export a region, and the anytime engine uses it to
    /// materialise samples.
    pub fn materialize(&self, name: impl Into<String>, sel: &Bitmap) -> Result<Table> {
        let mut new_columns: Vec<Column> = self
            .columns
            .iter()
            .map(|c| Column::new_empty(c.data_type()))
            .collect();
        for idx in sel.iter_ones() {
            if idx >= self.num_rows {
                break;
            }
            for (src, dst) in self.columns.iter().zip(new_columns.iter_mut()) {
                dst.push(&src.value(idx))?;
            }
        }
        Table::new(name, self.schema.clone(), new_columns)
    }

    /// Wrap the table in an `Arc` for sharing.
    pub fn into_shared(self) -> Arc<Table> {
        Arc::new(self)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{} [{} rows]", self.name, self.schema, self.num_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::DictColumn;
    use crate::schema::Field;
    use crate::value::DataType;

    fn sample_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("age", DataType::Int),
            Field::new("name", DataType::Str),
        ])
        .unwrap();
        let ages = Column::Int(vec![Some(20), Some(35), None, Some(50)]);
        let mut d = DictColumn::new();
        for n in ["ann", "bob", "cid", "dee"] {
            d.push(Some(n));
        }
        Table::new("people", schema, vec![ages, Column::Str(d)]).unwrap()
    }

    #[test]
    fn construction_and_lookup() {
        let t = sample_table();
        assert_eq!(t.name(), "people");
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.num_columns(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.value(0, "age").unwrap(), Value::Int(20));
        assert_eq!(t.value(2, "age").unwrap(), Value::Null);
        assert_eq!(t.value(1, "name").unwrap(), Value::Str("bob".into()));
        assert!(t.value(9, "age").is_err());
        assert!(t.column("salary").is_err());
        assert_eq!(t.row(0).unwrap().len(), 2);
        assert!(t.row(10).is_err());
        assert!(t.column_at(0).is_some());
        assert!(t.column_at(5).is_none());
        assert_eq!(t.to_string(), "people(age int, name str) [4 rows]");
    }

    #[test]
    fn construction_rejects_mismatches() {
        let schema = Schema::new(vec![Field::new("age", DataType::Int)]).unwrap();
        // wrong number of columns
        assert!(Table::new("t", schema.clone(), vec![]).is_err());
        // wrong type
        let wrong = Column::Float(vec![Some(1.0)]);
        assert!(Table::new("t", schema.clone(), vec![wrong]).is_err());
        // mismatched lengths
        let schema2 = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
        ])
        .unwrap();
        let c1 = Column::Int(vec![Some(1), Some(2)]);
        let c2 = Column::Int(vec![Some(1)]);
        assert!(matches!(
            Table::new("t", schema2, vec![c1, c2]),
            Err(ColumnarError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn selections_and_materialize() {
        let t = sample_table();
        assert_eq!(t.full_selection().count(), 4);
        assert_eq!(t.empty_selection().count(), 0);
        let sel = Bitmap::from_indices(4, [1, 3]);
        let sub = t.materialize("subset", &sel).unwrap();
        assert_eq!(sub.num_rows(), 2);
        assert_eq!(sub.value(0, "age").unwrap(), Value::Int(35));
        assert_eq!(sub.value(1, "name").unwrap(), Value::Str("dee".into()));
    }

    #[test]
    fn column_stats_smoke() {
        let t = sample_table();
        let stats = t.column_stats("age", &t.full_selection()).unwrap();
        assert_eq!(stats.non_null_count, 3);
        assert_eq!(stats.null_count, 1);
    }
}
