//! Immutable in-memory relations, stored as ordered lists of segments.

use crate::bitmap::Bitmap;
use crate::builder::TableBuilder;
use crate::colstats::ColumnStats;
use crate::column::{Column, DictColumn};
use crate::error::{ColumnarError, Result};
use crate::schema::Schema;
use crate::segment::{default_segment_rows, Segment};
use crate::value::Value;
use crate::view::ColumnView;
use std::fmt;
use std::sync::Arc;

/// An immutable relation: a schema plus an ordered list of [`Segment`]s, each
/// holding a contiguous row range with one column per field.
///
/// Tables are cheap to share (`Arc<Table>`) **and cheap to extend**: because
/// segments are immutable and individually `Arc`-shared,
/// [`Table::append_segment`] produces a new table that reuses every existing
/// segment and adds one — ingested data is never copied or re-encoded. All
/// row addressing is global: a [`Bitmap`] selection ranges over the whole
/// table, and the per-segment scan kernels of [`ColumnView`] assemble their
/// results in global coordinates, so query answers are independent of the
/// segment layout.
#[derive(Debug, Clone)]
pub struct Table {
    pub(crate) name: String,
    pub(crate) schema: Schema,
    pub(crate) segments: Vec<Arc<Segment>>,
    /// Global row index of the first row of each segment.
    pub(crate) offsets: Vec<usize>,
    pub(crate) num_rows: usize,
}

impl Table {
    /// Assemble a table from a schema and matching whole-relation columns.
    ///
    /// All columns must have the same length and their types must match the
    /// schema; violations name the offending column. The rows are chunked
    /// into segments of [`default_segment_rows`] (columns short enough to fit
    /// one segment are moved, not copied).
    pub fn new(name: impl Into<String>, schema: Schema, columns: Vec<Column>) -> Result<Self> {
        let num_rows = crate::segment::validate_columns(&schema, &columns)?;
        let segment_rows = default_segment_rows();
        let mut segments = Vec::new();
        if num_rows <= segment_rows {
            if num_rows > 0 {
                segments.push(Arc::new(Segment::new(&schema, columns)?));
            }
        } else {
            let mut start = 0;
            while start < num_rows {
                let end = (start + segment_rows).min(num_rows);
                let chunk: Vec<Column> = columns
                    .iter()
                    .map(|c| slice_column(c, start, end))
                    .collect();
                segments.push(Arc::new(Segment::new(&schema, chunk)?));
                start = end;
            }
        }
        Table::from_segments(name, schema, segments)
    }

    /// Assemble a table from already-sealed segments (validated against the
    /// schema; zero-row segments are dropped).
    pub fn from_segments(
        name: impl Into<String>,
        schema: Schema,
        segments: Vec<Arc<Segment>>,
    ) -> Result<Self> {
        let mut kept = Vec::with_capacity(segments.len());
        let mut offsets = Vec::with_capacity(segments.len());
        let mut num_rows = 0usize;
        for segment in segments {
            validate_segment(&schema, &segment)?;
            if segment.is_empty() {
                continue;
            }
            offsets.push(num_rows);
            num_rows += segment.num_rows();
            kept.push(segment);
        }
        Ok(Table {
            name: name.into(),
            schema,
            segments: kept,
            offsets,
            num_rows,
        })
    }

    /// A new table extending this one with one more segment (which must match
    /// the schema). Existing segments are shared, not copied: this is the
    /// storage half of incremental ingest.
    pub fn append_segment(&self, segment: impl Into<Arc<Segment>>) -> Result<Table> {
        let segment = segment.into();
        validate_segment(&self.schema, &segment)?;
        let mut out = self.clone();
        if !segment.is_empty() {
            out.offsets.push(out.num_rows);
            out.num_rows += segment.num_rows();
            out.segments.push(segment);
        }
        Ok(out)
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.schema.len()
    }

    /// True if the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.num_rows == 0
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// The segments, in row order.
    pub fn segments(&self) -> &[Arc<Segment>] {
        &self.segments
    }

    /// Global row index of the first row of segment `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn segment_offset(&self, idx: usize) -> usize {
        self.offsets[idx]
    }

    /// A view of the column with the given name, spanning every segment.
    pub fn column(&self, name: &str) -> Result<ColumnView<'_>> {
        let idx = self.schema.index_of(name)?;
        Ok(ColumnView::new(self, idx))
    }

    /// A view of the column at the given schema position, if any.
    pub fn column_at(&self, idx: usize) -> Option<ColumnView<'_>> {
        (idx < self.schema.len()).then(|| ColumnView::new(self, idx))
    }

    /// Views of all columns, in schema order.
    pub fn columns(&self) -> Vec<ColumnView<'_>> {
        (0..self.schema.len())
            .map(|idx| ColumnView::new(self, idx))
            .collect()
    }

    /// The value at (`row`, `column_name`).
    pub fn value(&self, row: usize, column_name: &str) -> Result<Value> {
        if row >= self.num_rows {
            return Err(ColumnarError::RowOutOfBounds {
                row,
                len: self.num_rows,
            });
        }
        Ok(self.column(column_name)?.value(row))
    }

    /// The segment containing global row `row`, with its offset.
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    pub(crate) fn segment_of(&self, row: usize) -> (usize, &Segment) {
        assert!(
            row < self.num_rows,
            "row index {row} out of bounds for length {}",
            self.num_rows
        );
        let idx = self.offsets.partition_point(|&o| o <= row) - 1;
        (self.offsets[idx], &self.segments[idx])
    }

    /// A full selection over this table (all rows).
    pub fn full_selection(&self) -> Bitmap {
        Bitmap::new_full(self.num_rows)
    }

    /// An empty selection over this table (no rows).
    pub fn empty_selection(&self) -> Bitmap {
        Bitmap::new_empty(self.num_rows)
    }

    /// Compute summary statistics for the named column over the selected rows
    /// (one [`crate::colstats::ColumnSummary`] per segment, folded in row
    /// order).
    pub fn column_stats(&self, name: &str, sel: &Bitmap) -> Result<ColumnStats> {
        Ok(self.column(name)?.stats(sel))
    }

    /// Whole-column statistics folded from the segments' **cached** per-
    /// segment statistics via [`ColumnStats::merge`] — no row scan when the
    /// segment stats are already materialised, and at most one scan per
    /// segment ever.
    ///
    /// Counts, min/max, mean and variance are exact; `distinct_count` is the
    /// `merge` upper bound (segments may share values). Use
    /// [`Table::column_stats`] with a full selection when the distinct count
    /// must be exact.
    pub fn quick_column_stats(&self, name: &str) -> Result<ColumnStats> {
        let idx = self.schema.index_of(name)?;
        let dtype = self.schema.fields()[idx].dtype;
        let mut acc: Option<ColumnStats> = None;
        for segment in &self.segments {
            let stats = segment.column_stats(idx);
            acc = Some(match acc {
                Some(folded) => folded.merge(stats),
                None => stats.clone(),
            });
        }
        Ok(acc.unwrap_or_else(|| crate::colstats::ColumnSummary::empty(dtype).to_stats()))
    }

    /// Materialise a row as a vector of values (mostly for display / tests).
    pub fn row(&self, row: usize) -> Result<Vec<Value>> {
        if row >= self.num_rows {
            return Err(ColumnarError::RowOutOfBounds {
                row,
                len: self.num_rows,
            });
        }
        let (offset, segment) = self.segment_of(row);
        Ok(segment
            .columns()
            .iter()
            .map(|c| c.value(row - offset))
            .collect())
    }

    /// Build a new, smaller table containing only the selected rows.
    ///
    /// Atlas itself never needs this (it works with selections), but the
    /// explorer uses it to export a region, and the anytime engine uses it to
    /// materialise samples.
    pub fn materialize(&self, name: impl Into<String>, sel: &Bitmap) -> Result<Table> {
        let mut builder = TableBuilder::new(name, self.schema.clone());
        let mut row_buf: Vec<Value> = Vec::with_capacity(self.schema.len());
        for idx in sel.iter_ones() {
            if idx >= self.num_rows {
                break;
            }
            let (offset, segment) = self.segment_of(idx);
            row_buf.clear();
            row_buf.extend(segment.columns().iter().map(|c| c.value(idx - offset)));
            builder.push_row(&row_buf)?;
        }
        builder.build()
    }

    /// Wrap the table in an `Arc` for sharing.
    pub fn into_shared(self) -> Arc<Table> {
        Arc::new(self)
    }
}

/// Check a sealed segment against a table schema (column count and types;
/// lengths inside a sealed segment are consistent by construction).
fn validate_segment(schema: &Schema, segment: &Segment) -> Result<()> {
    crate::segment::validate_columns(schema, segment.columns()).map(|_| ())
}

/// Copy the rows `start..end` of a whole-relation column into a segment-local
/// column (string columns are re-interned into a segment-local dictionary).
fn slice_column(column: &Column, start: usize, end: usize) -> Column {
    match column {
        Column::Int(v) => Column::Int(v.slice(start, end)),
        Column::Float(v) => Column::Float(v.slice(start, end)),
        Column::Bool(v) => Column::Bool(v.slice(start, end)),
        Column::Str(d) => {
            let mut out = DictColumn::new();
            for row in start..end {
                out.push(d.get(row));
            }
            Column::Str(out)
        }
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{} [{} rows]", self.name, self.schema, self.num_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::value::DataType;

    fn sample_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("age", DataType::Int),
            Field::new("name", DataType::Str),
        ])
        .unwrap();
        let ages = Column::Int(vec![Some(20), Some(35), None, Some(50)].into());
        let mut d = DictColumn::new();
        for n in ["ann", "bob", "cid", "dee"] {
            d.push(Some(n));
        }
        Table::new("people", schema, vec![ages, Column::Str(d)]).unwrap()
    }

    #[test]
    fn construction_and_lookup() {
        let t = sample_table();
        assert_eq!(t.name(), "people");
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.num_columns(), 2);
        assert!(!t.is_empty());
        assert!(t.num_segments() >= 1);
        assert_eq!(t.value(0, "age").unwrap(), Value::Int(20));
        assert_eq!(t.value(2, "age").unwrap(), Value::Null);
        assert_eq!(t.value(1, "name").unwrap(), Value::Str("bob".into()));
        assert!(t.value(9, "age").is_err());
        assert!(t.column("salary").is_err());
        assert_eq!(t.row(0).unwrap().len(), 2);
        assert!(t.row(10).is_err());
        assert!(t.column_at(0).is_some());
        assert!(t.column_at(5).is_none());
        assert_eq!(t.to_string(), "people(age int, name str) [4 rows]");
    }

    #[test]
    fn construction_rejects_mismatches_naming_the_column() {
        let schema = Schema::new(vec![Field::new("age", DataType::Int)]).unwrap();
        // wrong number of columns
        assert!(Table::new("t", schema.clone(), vec![]).is_err());
        // wrong type, named
        let wrong = Column::Float(vec![Some(1.0)].into());
        match Table::new("t", schema.clone(), vec![wrong]) {
            Err(ColumnarError::ColumnTypeMismatch { column, .. }) => assert_eq!(column, "age"),
            other => panic!("unexpected: {other:?}"),
        }
        // mismatched lengths, named
        let schema2 = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
        ])
        .unwrap();
        let c1 = Column::Int(vec![Some(1), Some(2)].into());
        let c2 = Column::Int(vec![Some(1)].into());
        match Table::new("t", schema2, vec![c1, c2]) {
            Err(ColumnarError::ColumnLengthMismatch {
                column,
                expected,
                found,
            }) => {
                assert_eq!(column, "b");
                assert_eq!((expected, found), (2, 1));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn selections_and_materialize() {
        let t = sample_table();
        assert_eq!(t.full_selection().count(), 4);
        assert_eq!(t.empty_selection().count(), 0);
        let sel = Bitmap::from_indices(4, [1, 3]);
        let sub = t.materialize("subset", &sel).unwrap();
        assert_eq!(sub.num_rows(), 2);
        assert_eq!(sub.value(0, "age").unwrap(), Value::Int(35));
        assert_eq!(sub.value(1, "name").unwrap(), Value::Str("dee".into()));
    }

    #[test]
    fn column_stats_smoke() {
        let t = sample_table();
        let stats = t.column_stats("age", &t.full_selection()).unwrap();
        assert_eq!(stats.non_null_count, 3);
        assert_eq!(stats.null_count, 1);
    }

    #[test]
    fn quick_column_stats_fold_segment_stats() {
        // A 3-segment table with a value shared across segments.
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]).unwrap();
        let seg = |values: Vec<Option<i64>>| {
            Arc::new(Segment::new(&schema, vec![Column::Int(values.into())]).unwrap())
        };
        let t = Table::from_segments(
            "t",
            schema.clone(),
            vec![
                seg(vec![Some(1), Some(2), None]),
                seg(vec![Some(2), Some(10)]),
            ],
        )
        .unwrap();
        let quick = t.quick_column_stats("x").unwrap();
        let exact = t.column_stats("x", &t.full_selection()).unwrap();
        assert_eq!(quick.non_null_count, exact.non_null_count);
        assert_eq!(quick.null_count, exact.null_count);
        assert_eq!(quick.min, exact.min);
        assert_eq!(quick.max, exact.max);
        assert!((quick.mean.unwrap() - exact.mean.unwrap()).abs() < 1e-12);
        // distinct is an upper bound: 2 is shared between the segments.
        assert_eq!(exact.distinct_count, 3);
        assert_eq!(quick.distinct_count, 4);
        // Unknown columns error; empty tables fold to zeroes.
        assert!(t.quick_column_stats("zzz").is_err());
        let empty = TableBuilder::new("e", schema).build().unwrap();
        assert_eq!(empty.quick_column_stats("x").unwrap().non_null_count, 0);
    }

    #[test]
    fn append_segment_shares_existing_segments() {
        let t = sample_table();
        let schema = t.schema().clone();
        let ages = Column::Int(vec![Some(70)].into());
        let mut d = DictColumn::new();
        d.push(Some("eve"));
        let segment = Segment::new(&schema, vec![ages, Column::Str(d)]).unwrap();
        let extended = t.append_segment(segment).unwrap();
        assert_eq!(extended.num_rows(), 5);
        assert_eq!(extended.num_segments(), t.num_segments() + 1);
        // Old segments are the very same allocations.
        for (a, b) in t.segments().iter().zip(extended.segments()) {
            assert!(Arc::ptr_eq(a, b));
        }
        assert_eq!(extended.value(4, "name").unwrap(), Value::Str("eve".into()));
        assert_eq!(extended.segment_offset(extended.num_segments() - 1), 4);
        // The original table is untouched.
        assert_eq!(t.num_rows(), 4);
        // A segment of the wrong shape is rejected.
        let bad = Segment::new(
            &Schema::new(vec![Field::new("x", DataType::Int)]).unwrap(),
            vec![Column::Int(vec![Some(1)].into())],
        )
        .unwrap();
        assert!(t.append_segment(bad).is_err());
    }

    #[test]
    fn from_segments_drops_empty_segments_and_offsets_accumulate() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]).unwrap();
        let seg = |values: Vec<Option<i64>>| {
            Arc::new(Segment::new(&schema, vec![Column::Int(values.into())]).unwrap())
        };
        let t = Table::from_segments(
            "t",
            schema.clone(),
            vec![seg(vec![Some(1), Some(2)]), seg(vec![]), seg(vec![Some(3)])],
        )
        .unwrap();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_segments(), 2);
        assert_eq!(t.segment_offset(0), 0);
        assert_eq!(t.segment_offset(1), 2);
        assert_eq!(t.value(2, "x").unwrap(), Value::Int(3));
    }
}
