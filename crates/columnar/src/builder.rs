//! Row-oriented, segment-emitting table construction.

use crate::column::Column;
use crate::error::{ColumnarError, Result};
use crate::schema::Schema;
use crate::segment::{default_segment_rows, Segment};
use crate::table::Table;
use crate::value::Value;
use std::sync::Arc;

/// Incrementally builds a [`Table`] row by row, sealing an immutable
/// [`Segment`] every `segment_rows` rows.
///
/// The data generators and the CSV reader both funnel through this builder so
/// type checking happens in exactly one place — and so every ingest path
/// produces segmented storage: the builder's *mutable* state never exceeds
/// one segment of rows (sealed segments are immutable and final), which is
/// what bounds the streaming CSV reader's working state by the segment size
/// instead of the file size.
#[derive(Debug, Clone)]
pub struct TableBuilder {
    name: String,
    schema: Schema,
    segment_rows: usize,
    current: Vec<Column>,
    current_rows: usize,
    segments: Vec<Arc<Segment>>,
    num_rows: usize,
}

impl TableBuilder {
    /// Start building a table with the given name and schema, sealing
    /// segments at [`default_segment_rows`].
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let current = schema
            .fields()
            .iter()
            .map(|f| Column::new_empty(f.dtype))
            .collect();
        TableBuilder {
            name: name.into(),
            schema,
            segment_rows: default_segment_rows(),
            current,
            current_rows: 0,
            segments: Vec::new(),
            num_rows: 0,
        }
    }

    /// Use a specific segment size (rows per sealed segment) instead of
    /// [`default_segment_rows`]. Values below 1 are clamped to 1.
    pub fn with_segment_rows(mut self, segment_rows: usize) -> Self {
        self.segment_rows = segment_rows.max(1);
        self
    }

    /// Rows per sealed segment.
    pub fn segment_rows(&self) -> usize {
        self.segment_rows
    }

    /// The schema being built against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows appended so far.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of segments sealed so far (excluding the open one).
    pub fn num_sealed_segments(&self) -> usize {
        self.segments.len()
    }

    /// Append one row. The slice must have exactly one value per column, in
    /// schema order. Reaching the segment size seals the open segment.
    pub fn push_row(&mut self, values: &[Value]) -> Result<()> {
        if values.len() != self.current.len() {
            return Err(ColumnarError::LengthMismatch {
                expected: self.current.len(),
                found: values.len(),
            });
        }
        // Validate all values first so a failed push cannot leave ragged columns.
        for (column, value) in self.current.iter().zip(values.iter()) {
            if !value.is_null() {
                let vt = value.data_type().expect("non-null value has a type");
                let ct = column.data_type();
                let compatible = vt == ct
                    || (ct == crate::value::DataType::Float && vt == crate::value::DataType::Int);
                if !compatible {
                    return Err(ColumnarError::TypeMismatch {
                        expected: ct.name().to_string(),
                        found: vt.name().to_string(),
                    });
                }
            }
        }
        for (column, value) in self.current.iter_mut().zip(values.iter()) {
            column.push(value)?;
        }
        self.current_rows += 1;
        self.num_rows += 1;
        if self.current_rows >= self.segment_rows {
            self.seal_segment()?;
        }
        Ok(())
    }

    /// Seal the open segment (a no-op when it holds no rows): its columns
    /// become an immutable [`Segment`] with per-column statistics, and the
    /// builder starts a fresh one. Called automatically every
    /// [`TableBuilder::segment_rows`] rows; calling it directly places a
    /// segment boundary at the current row.
    pub fn seal_segment(&mut self) -> Result<()> {
        if self.current_rows == 0 {
            return Ok(());
        }
        let columns = std::mem::replace(
            &mut self.current,
            self.schema
                .fields()
                .iter()
                .map(|f| Column::new_empty(f.dtype))
                .collect(),
        );
        self.current_rows = 0;
        self.segments
            .push(Arc::new(Segment::new(&self.schema, columns)?));
        Ok(())
    }

    /// Finish building and produce the immutable table.
    pub fn build(mut self) -> Result<Table> {
        self.seal_segment()?;
        Table::from_segments(self.name, self.schema, self.segments)
    }

    /// Finish building and hand back the sealed segments themselves (with the
    /// schema), for callers that feed an incremental consumer — e.g.
    /// streaming segments into an engine's `append` — instead of assembling
    /// one table.
    pub fn build_segments(mut self) -> Result<(Schema, Vec<Arc<Segment>>)> {
        self.seal_segment()?;
        Ok((self.schema, self.segments))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("age", DataType::Int),
            Field::new("score", DataType::Float),
            Field::nullable("group", DataType::Str),
        ])
        .unwrap()
    }

    #[test]
    fn build_simple_table() {
        let mut b = TableBuilder::new("t", schema());
        b.push_row(&[Value::Int(20), Value::Float(0.5), Value::Str("a".into())])
            .unwrap();
        b.push_row(&[Value::Int(30), Value::Int(1), Value::Null])
            .unwrap();
        assert_eq!(b.num_rows(), 2);
        let t = b.build().unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.value(1, "score").unwrap(), Value::Float(1.0));
        assert_eq!(t.value(1, "group").unwrap(), Value::Null);
    }

    #[test]
    fn push_row_wrong_arity() {
        let mut b = TableBuilder::new("t", schema());
        let err = b.push_row(&[Value::Int(1)]).unwrap_err();
        assert!(matches!(err, ColumnarError::LengthMismatch { .. }));
        assert_eq!(b.num_rows(), 0);
    }

    #[test]
    fn push_row_type_mismatch_keeps_columns_aligned() {
        let mut b = TableBuilder::new("t", schema());
        let err = b
            .push_row(&[Value::Str("oops".into()), Value::Float(0.0), Value::Null])
            .unwrap_err();
        assert!(matches!(err, ColumnarError::TypeMismatch { .. }));
        // The failed row must not have been partially applied.
        assert_eq!(b.num_rows(), 0);
        let t = b.build().unwrap();
        assert_eq!(t.num_rows(), 0);
    }

    #[test]
    fn empty_build_is_valid() {
        let t = TableBuilder::new("empty", schema()).build().unwrap();
        assert!(t.is_empty());
        assert_eq!(t.num_columns(), 3);
        assert_eq!(t.num_segments(), 0);
    }

    #[test]
    fn segments_seal_at_the_configured_size() {
        let mut b = TableBuilder::new("t", schema()).with_segment_rows(3);
        assert_eq!(b.segment_rows(), 3);
        for i in 0..8 {
            b.push_row(&[Value::Int(i), Value::Float(0.0), Value::Null])
                .unwrap();
        }
        assert_eq!(b.num_sealed_segments(), 2, "two full segments of 3");
        let t = b.build().unwrap();
        assert_eq!(t.num_segments(), 3, "plus the 2-row tail");
        assert_eq!(t.segments()[0].num_rows(), 3);
        assert_eq!(t.segments()[2].num_rows(), 2);
        assert_eq!(t.segment_offset(2), 6);
        assert_eq!(t.value(7, "age").unwrap(), Value::Int(7));
    }

    #[test]
    fn manual_seal_places_a_boundary() {
        let mut b = TableBuilder::new("t", schema()).with_segment_rows(100);
        b.push_row(&[Value::Int(1), Value::Float(0.0), Value::Null])
            .unwrap();
        b.seal_segment().unwrap();
        b.seal_segment().unwrap(); // idempotent on an empty segment
        b.push_row(&[Value::Int(2), Value::Float(0.0), Value::Null])
            .unwrap();
        let t = b.build().unwrap();
        assert_eq!(t.num_segments(), 2);
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn build_segments_returns_sealed_segments() {
        let mut b = TableBuilder::new("t", schema()).with_segment_rows(2);
        for i in 0..5 {
            b.push_row(&[Value::Int(i), Value::Float(0.0), Value::Null])
                .unwrap();
        }
        let (schema, segments) = b.build_segments().unwrap();
        assert_eq!(segments.len(), 3);
        assert_eq!(segments.iter().map(|s| s.num_rows()).sum::<usize>(), 5);
        let t = Table::from_segments("t", schema, segments).unwrap();
        assert_eq!(t.num_rows(), 5);
    }
}
