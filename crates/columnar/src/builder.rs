//! Row-oriented table construction.

use crate::column::Column;
use crate::error::{ColumnarError, Result};
use crate::schema::Schema;
use crate::table::Table;
use crate::value::Value;

/// Incrementally builds a [`Table`] row by row.
///
/// The data generators and the CSV reader both funnel through this builder so
/// type checking happens in exactly one place.
#[derive(Debug, Clone)]
pub struct TableBuilder {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    num_rows: usize,
}

impl TableBuilder {
    /// Start building a table with the given name and schema.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::new_empty(f.dtype))
            .collect();
        TableBuilder {
            name: name.into(),
            schema,
            columns,
            num_rows: 0,
        }
    }

    /// The schema being built against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows appended so far.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Append one row. The slice must have exactly one value per column, in
    /// schema order.
    pub fn push_row(&mut self, values: &[Value]) -> Result<()> {
        if values.len() != self.columns.len() {
            return Err(ColumnarError::LengthMismatch {
                expected: self.columns.len(),
                found: values.len(),
            });
        }
        // Validate all values first so a failed push cannot leave ragged columns.
        for (column, value) in self.columns.iter().zip(values.iter()) {
            if !value.is_null() {
                let vt = value.data_type().expect("non-null value has a type");
                let ct = column.data_type();
                let compatible = vt == ct
                    || (ct == crate::value::DataType::Float && vt == crate::value::DataType::Int);
                if !compatible {
                    return Err(ColumnarError::TypeMismatch {
                        expected: ct.name().to_string(),
                        found: vt.name().to_string(),
                    });
                }
            }
        }
        for (column, value) in self.columns.iter_mut().zip(values.iter()) {
            column.push(value)?;
        }
        self.num_rows += 1;
        Ok(())
    }

    /// Finish building and produce the immutable table.
    pub fn build(self) -> Result<Table> {
        Table::new(self.name, self.schema, self.columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("age", DataType::Int),
            Field::new("score", DataType::Float),
            Field::nullable("group", DataType::Str),
        ])
        .unwrap()
    }

    #[test]
    fn build_simple_table() {
        let mut b = TableBuilder::new("t", schema());
        b.push_row(&[Value::Int(20), Value::Float(0.5), Value::Str("a".into())])
            .unwrap();
        b.push_row(&[Value::Int(30), Value::Int(1), Value::Null])
            .unwrap();
        assert_eq!(b.num_rows(), 2);
        let t = b.build().unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.value(1, "score").unwrap(), Value::Float(1.0));
        assert_eq!(t.value(1, "group").unwrap(), Value::Null);
    }

    #[test]
    fn push_row_wrong_arity() {
        let mut b = TableBuilder::new("t", schema());
        let err = b.push_row(&[Value::Int(1)]).unwrap_err();
        assert!(matches!(err, ColumnarError::LengthMismatch { .. }));
        assert_eq!(b.num_rows(), 0);
    }

    #[test]
    fn push_row_type_mismatch_keeps_columns_aligned() {
        let mut b = TableBuilder::new("t", schema());
        let err = b
            .push_row(&[Value::Str("oops".into()), Value::Float(0.0), Value::Null])
            .unwrap_err();
        assert!(matches!(err, ColumnarError::TypeMismatch { .. }));
        // The failed row must not have been partially applied.
        assert_eq!(b.num_rows(), 0);
        let t = b.build().unwrap();
        assert_eq!(t.num_rows(), 0);
    }

    #[test]
    fn empty_build_is_valid() {
        let t = TableBuilder::new("empty", schema()).build().unwrap();
        assert!(t.is_empty());
        assert_eq!(t.num_columns(), 3);
    }
}
