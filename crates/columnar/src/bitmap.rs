//! Packed selection bitmaps.
//!
//! A [`Bitmap`] represents a subset of the rows of a table: the result of a
//! conjunctive query, the extent of a map region, or an intermediate selection.
//! Atlas manipulates these constantly (every `CUT` produces one bitmap per
//! region, covers are bitmap cardinalities, region intersection for the product
//! operator is a bitmap AND), so the representation is a packed `u64` word
//! vector with the usual bit-twiddling kernels.

use std::fmt;

const WORD_BITS: usize = 64;

/// A fixed-length bitmap over the rows `0..len` of a table.
#[derive(Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Create an empty (all-zero) bitmap over `len` rows.
    pub fn new_empty(len: usize) -> Self {
        Bitmap {
            words: vec![0u64; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Create a full (all-one) bitmap over `len` rows.
    pub fn new_full(len: usize) -> Self {
        let mut bm = Bitmap {
            words: vec![u64::MAX; len.div_ceil(WORD_BITS)],
            len,
        };
        bm.mask_tail();
        bm
    }

    /// Build a bitmap over `len` rows from an iterator of set row indices.
    ///
    /// Indices `>= len` are ignored.
    pub fn from_indices<I: IntoIterator<Item = usize>>(len: usize, indices: I) -> Self {
        let mut bm = Bitmap::new_empty(len);
        for idx in indices {
            if idx < len {
                bm.set(idx);
            }
        }
        bm
    }

    /// Build a bitmap from a boolean slice (`true` = selected).
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut bm = Bitmap::new_empty(bools.len());
        for (i, &b) in bools.iter().enumerate() {
            if b {
                bm.set(i);
            }
        }
        bm
    }

    /// The number of rows this bitmap ranges over (not the number of set bits).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap ranges over zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= len`.
    pub fn set(&mut self, idx: usize) {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        self.words[idx / WORD_BITS] |= 1u64 << (idx % WORD_BITS);
    }

    /// Clear bit `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= len`.
    pub fn clear(&mut self, idx: usize) {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        self.words[idx / WORD_BITS] &= !(1u64 << (idx % WORD_BITS));
    }

    /// Get bit `idx`. Out-of-range indices return `false`.
    pub fn get(&self, idx: usize) -> bool {
        if idx >= self.len {
            return false;
        }
        (self.words[idx / WORD_BITS] >> (idx % WORD_BITS)) & 1 == 1
    }

    /// The number of set bits (the *cover count* in Atlas terms).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The cover of this selection: fraction of rows selected, in `[0, 1]`.
    ///
    /// This is the `C(Q)` of the paper when the bitmap is the extent of query
    /// `Q` over the whole table. Returns 0 for an empty table.
    pub fn cover(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count() as f64 / self.len as f64
        }
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    /// Panics if the two bitmaps range over different numbers of rows.
    pub fn intersect_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w &= *o;
        }
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    /// Panics if the two bitmaps range over different numbers of rows.
    pub fn union_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w |= *o;
        }
    }

    /// In-place difference (`self AND NOT other`).
    ///
    /// # Panics
    /// Panics if the two bitmaps range over different numbers of rows.
    pub fn difference_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w &= !*o;
        }
    }

    /// Returns the intersection of two bitmaps as a new bitmap.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// Returns the union of two bitmaps as a new bitmap.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Returns `self AND NOT other` as a new bitmap.
    pub fn and_not(&self, other: &Bitmap) -> Bitmap {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// Returns the complement of this bitmap (over the same row range).
    pub fn not(&self) -> Bitmap {
        let mut out = Bitmap {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        out.mask_tail();
        out
    }

    /// True if no bits are set.
    pub fn is_all_clear(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True if the two bitmaps have no set bit in common.
    pub fn is_disjoint(&self, other: &Bitmap) -> bool {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & b == 0)
    }

    /// The number of set bits in the intersection, without materialising it.
    pub fn intersection_count(&self, other: &Bitmap) -> usize {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Iterate over the indices of set bits, in increasing order.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter {
            bitmap: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Call `f` with the index of every set bit, in increasing order.
    ///
    /// This is the streaming form of [`Bitmap::iter_ones`]: it skips all-zero
    /// words a whole `u64` at a time and compiles to a tight loop, so scan
    /// kernels can visit a selection without materialising an index vector.
    #[inline]
    pub fn for_each_one(&self, mut f: impl FnMut(usize)) {
        for (word_idx, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                f(word_idx * WORD_BITS + bit);
                bits &= bits - 1;
            }
        }
    }

    /// Build the sub-selection of this bitmap whose set bits satisfy `keep`.
    ///
    /// The fused filter kernel behind `Column::select_range` /
    /// `Column::select_in`: output words are assembled directly (no per-bit
    /// bounds checks or index arithmetic on the result), and all-zero input
    /// words are skipped a whole `u64` at a time.
    #[inline]
    pub fn filter_ones(&self, mut keep: impl FnMut(usize) -> bool) -> Bitmap {
        let mut out = Bitmap::new_empty(self.len);
        for (word_idx, (&word, out_word)) in self.words.iter().zip(out.words.iter_mut()).enumerate()
        {
            let mut bits = word;
            let mut acc = 0u64;
            while bits != 0 {
                let bit = bits.trailing_zeros();
                if keep(word_idx * WORD_BITS + bit as usize) {
                    acc |= 1u64 << bit;
                }
                bits &= bits - 1;
            }
            *out_word = acc;
        }
        out
    }

    /// Build a bitmap over `len` rows from a per-row predicate, assembling
    /// whole words at a time (the fused form of [`Bitmap::from_indices`] for
    /// dense constructions like null masks).
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Bitmap {
        let mut bm = Bitmap::new_empty(len);
        for (word_idx, word) in bm.words.iter_mut().enumerate() {
            let base = word_idx * WORD_BITS;
            let top = WORD_BITS.min(len - base);
            let mut acc = 0u64;
            for bit in 0..top {
                if f(base + bit) {
                    acc |= 1u64 << bit;
                }
            }
            *word = acc;
        }
        bm
    }

    /// Collect the indices of set bits into a vector.
    pub fn to_indices(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.count());
        self.for_each_one(|idx| out.push(idx));
        out
    }

    /// Zero out any bits beyond `len` in the last word so `count` stays exact.
    fn mask_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bitmap(len={}, ones={})", self.len, self.count())
    }
}

/// Iterator over set-bit indices of a [`Bitmap`].
pub struct OnesIter<'a> {
    bitmap: &'a Bitmap,
    word_idx: usize,
    current: u64,
}

impl Iterator for OnesIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.bitmap.words.len() {
                return None;
            }
            self.current = self.bitmap.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = Bitmap::new_empty(130);
        assert_eq!(e.count(), 0);
        assert_eq!(e.len(), 130);
        assert!(e.is_all_clear());
        let f = Bitmap::new_full(130);
        assert_eq!(f.count(), 130);
        assert!(f.get(0));
        assert!(f.get(129));
        assert!(!f.get(130));
        assert!((f.cover() - 1.0).abs() < 1e-12);
        assert_eq!(Bitmap::new_empty(0).cover(), 0.0);
    }

    #[test]
    fn set_clear_get() {
        let mut bm = Bitmap::new_empty(100);
        bm.set(0);
        bm.set(63);
        bm.set(64);
        bm.set(99);
        assert_eq!(bm.count(), 4);
        assert!(bm.get(63));
        assert!(bm.get(64));
        bm.clear(63);
        assert!(!bm.get(63));
        assert_eq!(bm.count(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut bm = Bitmap::new_empty(10);
        bm.set(10);
    }

    #[test]
    fn from_indices_and_bools() {
        let bm = Bitmap::from_indices(10, [1, 3, 5, 99]);
        assert_eq!(bm.to_indices(), vec![1, 3, 5]);
        let bm2 = Bitmap::from_bools(&[false, true, false, true]);
        assert_eq!(bm2.to_indices(), vec![1, 3]);
        assert_eq!(bm2.len(), 4);
    }

    #[test]
    fn boolean_algebra() {
        let a = Bitmap::from_indices(200, [1, 2, 3, 100, 150]);
        let b = Bitmap::from_indices(200, [2, 3, 4, 150, 199]);
        assert_eq!(a.and(&b).to_indices(), vec![2, 3, 150]);
        assert_eq!(a.or(&b).to_indices(), vec![1, 2, 3, 4, 100, 150, 199]);
        assert_eq!(a.and_not(&b).to_indices(), vec![1, 100]);
        assert_eq!(a.intersection_count(&b), 3);
        assert!(!a.is_disjoint(&b));
        assert!(a.is_disjoint(&Bitmap::new_empty(200)));
    }

    #[test]
    fn complement_respects_tail() {
        let a = Bitmap::from_indices(70, [0, 69]);
        let not_a = a.not();
        assert_eq!(not_a.count(), 68);
        assert!(!not_a.get(0));
        assert!(!not_a.get(69));
        assert!(not_a.get(1));
        // Complementing twice round-trips.
        assert_eq!(not_a.not(), a);
    }

    #[test]
    fn iter_ones_matches_indices() {
        let idx = vec![0, 7, 63, 64, 65, 127, 128, 199];
        let bm = Bitmap::from_indices(200, idx.clone());
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), idx);
    }

    #[test]
    fn iter_ones_on_empty_full_and_zero_length_bitmaps() {
        assert_eq!(Bitmap::new_empty(0).iter_ones().count(), 0);
        assert_eq!(Bitmap::new_empty(200).iter_ones().count(), 0);
        let full = Bitmap::new_full(200);
        assert_eq!(
            full.iter_ones().collect::<Vec<_>>(),
            (0..200).collect::<Vec<_>>()
        );
    }

    #[test]
    fn iter_ones_handles_word_boundaries_and_trailing_partial_word() {
        // Bits on both sides of every word boundary of a 3-word bitmap.
        let idx = vec![0, 62, 63, 64, 65, 126, 127, 128, 129];
        let bm = Bitmap::from_indices(130, idx.clone());
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), idx);
        // A bitmap whose length is an exact multiple of the word size.
        let exact = Bitmap::new_full(128);
        assert_eq!(exact.iter_ones().count(), 128);
        assert_eq!(exact.iter_ones().last(), Some(127));
        // The last set bit of a trailing partial word is reachable.
        let tail = Bitmap::from_indices(70, [69]);
        assert_eq!(tail.iter_ones().collect::<Vec<_>>(), vec![69]);
        // Bits masked off beyond `len` never appear (full + not round-trips).
        let full = Bitmap::new_full(70);
        assert_eq!(full.not().iter_ones().count(), 0);
    }

    #[test]
    fn for_each_one_matches_iter_ones() {
        for len in [0usize, 1, 63, 64, 65, 128, 200] {
            let bm = Bitmap::from_indices(len, (0..len).filter(|i| i % 7 == 3));
            let mut streamed = Vec::new();
            bm.for_each_one(|idx| streamed.push(idx));
            assert_eq!(streamed, bm.iter_ones().collect::<Vec<_>>(), "len={len}");
        }
    }

    #[test]
    fn filter_ones_builds_the_kept_subselection() {
        let bm = Bitmap::from_indices(200, [0, 5, 63, 64, 100, 150, 199]);
        let kept = bm.filter_ones(|idx| idx % 2 == 0);
        assert_eq!(kept.to_indices(), vec![0, 64, 100, 150]);
        assert_eq!(kept.len(), 200);
        // Filtering nothing or everything round-trips.
        assert_eq!(bm.filter_ones(|_| true), bm);
        assert!(bm.filter_ones(|_| false).is_all_clear());
    }

    #[test]
    fn from_fn_matches_from_bools() {
        for len in [0usize, 1, 64, 65, 130] {
            let bools: Vec<bool> = (0..len).map(|i| i % 3 == 1).collect();
            assert_eq!(
                Bitmap::from_fn(len, |i| bools[i]),
                Bitmap::from_bools(&bools),
                "len={len}"
            );
        }
    }

    #[test]
    fn cover_fraction() {
        let bm = Bitmap::from_indices(8, [0, 1]);
        assert!((bm.cover() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn debug_format_is_compact() {
        let bm = Bitmap::from_indices(10, [1, 2]);
        assert_eq!(format!("{bm:?}"), "Bitmap(len=10, ones=2)");
    }
}
