//! Packed selection bitmaps.
//!
//! A [`Bitmap`] represents a subset of the rows of a table: the result of a
//! conjunctive query, the extent of a map region, or an intermediate selection.
//! Atlas manipulates these constantly (every `CUT` produces one bitmap per
//! region, covers are bitmap cardinalities, region intersection for the product
//! operator is a bitmap AND), so the representation is a packed `u64` word
//! vector with the usual bit-twiddling kernels.

use std::fmt;

const WORD_BITS: usize = 64;

/// A fixed-length bitmap over the rows `0..len` of a table.
#[derive(Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Create an empty (all-zero) bitmap over `len` rows.
    pub fn new_empty(len: usize) -> Self {
        Bitmap {
            words: vec![0u64; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Create a full (all-one) bitmap over `len` rows.
    pub fn new_full(len: usize) -> Self {
        let mut bm = Bitmap {
            words: vec![u64::MAX; len.div_ceil(WORD_BITS)],
            len,
        };
        bm.mask_tail();
        bm
    }

    /// Build a bitmap over `len` rows from an iterator of set row indices.
    ///
    /// Indices `>= len` are ignored.
    pub fn from_indices<I: IntoIterator<Item = usize>>(len: usize, indices: I) -> Self {
        let mut bm = Bitmap::new_empty(len);
        for idx in indices {
            if idx < len {
                bm.set(idx);
            }
        }
        bm
    }

    /// Build a bitmap from a boolean slice (`true` = selected).
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut bm = Bitmap::new_empty(bools.len());
        for (i, &b) in bools.iter().enumerate() {
            if b {
                bm.set(i);
            }
        }
        bm
    }

    /// Rebuild a bitmap over `len` rows from its packed word vector (the
    /// exact inverse of [`Bitmap::words`], e.g. after a wire transfer).
    ///
    /// The vector is truncated or zero-extended to `len.div_ceil(64)` words
    /// and bits past `len` are cleared, so any input yields a well-formed
    /// bitmap.
    pub fn from_words(len: usize, mut words: Vec<u64>) -> Self {
        words.resize(len.div_ceil(WORD_BITS), 0);
        let mut bm = Bitmap { words, len };
        bm.mask_tail();
        bm
    }

    /// The packed `u64` words backing this bitmap, least-significant bit
    /// first (`len.div_ceil(64)` words; bits past `len` are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The number of rows this bitmap ranges over (not the number of set bits).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap ranges over zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= len`.
    pub fn set(&mut self, idx: usize) {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        self.words[idx / WORD_BITS] |= 1u64 << (idx % WORD_BITS);
    }

    /// Clear bit `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= len`.
    pub fn clear(&mut self, idx: usize) {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        self.words[idx / WORD_BITS] &= !(1u64 << (idx % WORD_BITS));
    }

    /// Get bit `idx`. Out-of-range indices return `false`.
    pub fn get(&self, idx: usize) -> bool {
        if idx >= self.len {
            return false;
        }
        (self.words[idx / WORD_BITS] >> (idx % WORD_BITS)) & 1 == 1
    }

    /// The number of set bits (the *cover count* in Atlas terms).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The cover of this selection: fraction of rows selected, in `[0, 1]`.
    ///
    /// This is the `C(Q)` of the paper when the bitmap is the extent of query
    /// `Q` over the whole table. Returns 0 for an empty table.
    pub fn cover(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count() as f64 / self.len as f64
        }
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    /// Panics if the two bitmaps range over different numbers of rows.
    pub fn intersect_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w &= *o;
        }
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    /// Panics if the two bitmaps range over different numbers of rows.
    pub fn union_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w |= *o;
        }
    }

    /// In-place difference (`self AND NOT other`).
    ///
    /// # Panics
    /// Panics if the two bitmaps range over different numbers of rows.
    pub fn difference_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w &= !*o;
        }
    }

    /// Returns the intersection of two bitmaps as a new bitmap.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// Returns the union of two bitmaps as a new bitmap.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Returns `self AND NOT other` as a new bitmap.
    pub fn and_not(&self, other: &Bitmap) -> Bitmap {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// Returns the complement of this bitmap (over the same row range).
    pub fn not(&self) -> Bitmap {
        let mut out = Bitmap {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        out.mask_tail();
        out
    }

    /// True if no bits are set.
    pub fn is_all_clear(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True if the two bitmaps have no set bit in common.
    pub fn is_disjoint(&self, other: &Bitmap) -> bool {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & b == 0)
    }

    /// The number of set bits in the intersection, without materialising it.
    pub fn intersection_count(&self, other: &Bitmap) -> usize {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Iterate over the indices of set bits, in increasing order.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter {
            bitmap: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Call `f` with the index of every set bit, in increasing order.
    ///
    /// This is the streaming form of [`Bitmap::iter_ones`]: it skips all-zero
    /// words a whole `u64` at a time and compiles to a tight loop, so scan
    /// kernels can visit a selection without materialising an index vector.
    #[inline]
    pub fn for_each_one(&self, mut f: impl FnMut(usize)) {
        for (word_idx, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                f(word_idx * WORD_BITS + bit);
                bits &= bits - 1;
            }
        }
    }

    /// Build the sub-selection of this bitmap whose set bits satisfy `keep`.
    ///
    /// The fused filter kernel behind `Column::select_range` /
    /// `Column::select_in`: output words are assembled directly (no per-bit
    /// bounds checks or index arithmetic on the result), and all-zero input
    /// words are skipped a whole `u64` at a time.
    #[inline]
    pub fn filter_ones(&self, mut keep: impl FnMut(usize) -> bool) -> Bitmap {
        let mut out = Bitmap::new_empty(self.len);
        for (word_idx, (&word, out_word)) in self.words.iter().zip(out.words.iter_mut()).enumerate()
        {
            let mut bits = word;
            let mut acc = 0u64;
            while bits != 0 {
                let bit = bits.trailing_zeros();
                if keep(word_idx * WORD_BITS + bit as usize) {
                    acc |= 1u64 << bit;
                }
                bits &= bits - 1;
            }
            *out_word = acc;
        }
        out
    }

    /// [`Bitmap::for_each_one`] restricted to the half-open row range
    /// `start..end`: call `f` with the index of every set bit inside the
    /// range, in increasing order.
    ///
    /// This is the kernel segmented tables scan with — each segment walks only
    /// its own slice of a table-wide selection, skipping all-zero words a
    /// whole `u64` at a time and masking the two boundary words, so the union
    /// of the per-segment walks visits exactly the bits the global walk would.
    #[inline]
    pub fn for_each_one_in(&self, start: usize, end: usize, mut f: impl FnMut(usize)) {
        let end = end.min(self.len);
        if start >= end {
            return;
        }
        let first_word = start / WORD_BITS;
        let last_word = (end - 1) / WORD_BITS;
        for word_idx in first_word..=last_word {
            let mut bits = self.words[word_idx];
            if word_idx == first_word {
                bits &= !0u64 << (start % WORD_BITS);
            }
            if word_idx == last_word {
                let rem = end - word_idx * WORD_BITS;
                if rem < WORD_BITS {
                    bits &= (1u64 << rem) - 1;
                }
            }
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                f(word_idx * WORD_BITS + bit);
                bits &= bits - 1;
            }
        }
    }

    /// [`Bitmap::filter_ones`] restricted to `start..end`, OR-accumulating the
    /// kept bits into `out` (which must range over the same number of rows).
    ///
    /// Segmented scan kernels call this once per segment with the segment's
    /// global row range: each call assembles whole output words and only the
    /// (at most two) boundary words of adjacent segments touch the same word,
    /// which the OR handles without coordination.
    ///
    /// # Panics
    /// Panics if `out` ranges over a different number of rows.
    #[inline]
    pub fn filter_ones_in_into(
        &self,
        start: usize,
        end: usize,
        out: &mut Bitmap,
        mut keep: impl FnMut(usize) -> bool,
    ) {
        assert_eq!(self.len, out.len, "bitmap length mismatch");
        let end = end.min(self.len);
        if start >= end {
            return;
        }
        let first_word = start / WORD_BITS;
        let last_word = (end - 1) / WORD_BITS;
        for word_idx in first_word..=last_word {
            let mut bits = self.words[word_idx];
            if word_idx == first_word {
                bits &= !0u64 << (start % WORD_BITS);
            }
            if word_idx == last_word {
                let rem = end - word_idx * WORD_BITS;
                if rem < WORD_BITS {
                    bits &= (1u64 << rem) - 1;
                }
            }
            let mut acc = 0u64;
            while bits != 0 {
                let bit = bits.trailing_zeros();
                if keep(word_idx * WORD_BITS + bit as usize) {
                    acc |= 1u64 << bit;
                }
                bits &= bits - 1;
            }
            out.words[word_idx] |= acc;
        }
    }

    /// Set every bit of `start..end` for which `f(idx)` holds, assembling
    /// whole words at a time (the range form of [`Bitmap::from_fn`], used to
    /// build table-wide masks one segment at a time).
    pub fn fill_range_from_fn(
        &mut self,
        start: usize,
        end: usize,
        mut f: impl FnMut(usize) -> bool,
    ) {
        let end = end.min(self.len);
        if start >= end {
            return;
        }
        let first_word = start / WORD_BITS;
        let last_word = (end - 1) / WORD_BITS;
        for word_idx in first_word..=last_word {
            let lo = start.max(word_idx * WORD_BITS);
            let hi = end.min((word_idx + 1) * WORD_BITS);
            let mut acc = 0u64;
            for idx in lo..hi {
                if f(idx) {
                    acc |= 1u64 << (idx % WORD_BITS);
                }
            }
            self.words[word_idx] |= acc;
        }
    }

    /// Build a bitmap over `len` rows from a per-row predicate, assembling
    /// whole words at a time (the fused form of [`Bitmap::from_indices`] for
    /// dense constructions like null masks).
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Bitmap {
        let mut bm = Bitmap::new_empty(len);
        for (word_idx, word) in bm.words.iter_mut().enumerate() {
            let base = word_idx * WORD_BITS;
            let top = WORD_BITS.min(len - base);
            let mut acc = 0u64;
            for bit in 0..top {
                if f(base + bit) {
                    acc |= 1u64 << bit;
                }
            }
            *word = acc;
        }
        bm
    }

    /// A bitmap over `self.len() + other.len()` rows: this bitmap's bits
    /// followed by `other`'s. Used to extend table-wide masks when a segment
    /// is appended; word-aligned boundaries (the common case — the default
    /// segment size is a multiple of 64) are a plain word copy.
    pub fn concat(&self, other: &Bitmap) -> Bitmap {
        let mut out = Bitmap::new_empty(self.len + other.len);
        out.words[..self.words.len()].copy_from_slice(&self.words);
        if self.len.is_multiple_of(WORD_BITS) {
            out.words[self.words.len()..].copy_from_slice(&other.words);
        } else {
            other.for_each_one(|idx| out.set(self.len + idx));
        }
        out
    }

    /// OR `other`'s bits into this bitmap starting at row `offset` (which
    /// must leave `other` entirely inside `self`). The in-place counterpart
    /// of [`Bitmap::concat`] for assembling a table-wide mask from
    /// per-segment masks in **one linear pass**: word-aligned offsets (the
    /// common case) OR whole words, unaligned offsets fall back to per-bit
    /// sets.
    ///
    /// # Panics
    /// Panics if `offset + other.len()` exceeds this bitmap's length.
    pub fn or_shifted(&mut self, other: &Bitmap, offset: usize) {
        assert!(
            offset + other.len <= self.len,
            "shifted bitmap [{offset}, {}) out of range {}",
            offset + other.len,
            self.len
        );
        if offset.is_multiple_of(WORD_BITS) {
            let first_word = offset / WORD_BITS;
            for (word, &o) in self.words[first_word..].iter_mut().zip(other.words.iter()) {
                *word |= o;
            }
        } else {
            other.for_each_one(|idx| self.set(offset + idx));
        }
    }

    /// Append one bit, growing the bitmap by a row.
    ///
    /// Amortised O(1): a new word is allocated only every 64 pushes. This is
    /// the builder primitive validity masks use while a column is ingested.
    pub fn push(&mut self, bit: bool) {
        let rem = self.len % WORD_BITS;
        if rem == 0 {
            self.words.push(0);
        }
        if bit {
            self.words[self.len / WORD_BITS] |= 1u64 << rem;
        }
        self.len += 1;
    }

    /// The 64-bit window of this bitmap starting at bit `start`: bit `b` of
    /// the result is `self.get(start + b)`. Bits past the end read as zero,
    /// so any `start` is legal.
    ///
    /// This is the gather primitive of the word-parallel kernels: a segment
    /// whose global offset is not word-aligned reads its validity mask in
    /// 64-row windows aligned to the *selection* words, one shift-and-or per
    /// window instead of 64 `get` calls.
    #[inline]
    pub fn word_at(&self, start: usize) -> u64 {
        let q = start / WORD_BITS;
        let r = start % WORD_BITS;
        let lo = self.words.get(q).copied().unwrap_or(0);
        if r == 0 {
            lo
        } else {
            let hi = self.words.get(q + 1).copied().unwrap_or(0);
            (lo >> r) | (hi << (WORD_BITS - r))
        }
    }

    /// OR a whole 64-bit word of new bits into word `word_idx` (covering rows
    /// `word_idx * 64 ..`). Bits past `len` are masked off, so the tail
    /// invariant holds for any input. Words entirely past the end are
    /// ignored.
    ///
    /// This is the word-level writer of the partition kernels: one store per
    /// 64 rows instead of 64 `set` calls.
    #[inline]
    pub fn or_word(&mut self, word_idx: usize, bits: u64) {
        if let Some(word) = self.words.get_mut(word_idx) {
            *word |= bits;
            let rem = self.len % WORD_BITS;
            if rem != 0 && word_idx == self.len / WORD_BITS {
                *word &= (1u64 << rem) - 1;
            }
        }
    }

    /// Collect the indices of set bits into a vector.
    pub fn to_indices(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.count());
        self.for_each_one(|idx| out.push(idx));
        out
    }

    /// Zero out any bits beyond `len` in the last word so `count` stays exact.
    fn mask_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bitmap(len={}, ones={})", self.len, self.count())
    }
}

/// Iterator over set-bit indices of a [`Bitmap`].
pub struct OnesIter<'a> {
    bitmap: &'a Bitmap,
    word_idx: usize,
    current: u64,
}

impl Iterator for OnesIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.bitmap.words.len() {
                return None;
            }
            self.current = self.bitmap.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_round_trip_and_tail_masking() {
        let bm = Bitmap::from_indices(70, [0, 3, 63, 64, 69]);
        let rebuilt = Bitmap::from_words(70, bm.words().to_vec());
        assert_eq!(rebuilt, bm);
        // Stray bits past `len` are cleared, short vectors zero-extend.
        let dirty = Bitmap::from_words(70, vec![u64::MAX, u64::MAX]);
        assert_eq!(dirty.count(), 70);
        let short = Bitmap::from_words(70, vec![1]);
        assert_eq!(short.count(), 1);
        assert_eq!(short.words().len(), 2);
    }

    #[test]
    fn empty_and_full() {
        let e = Bitmap::new_empty(130);
        assert_eq!(e.count(), 0);
        assert_eq!(e.len(), 130);
        assert!(e.is_all_clear());
        let f = Bitmap::new_full(130);
        assert_eq!(f.count(), 130);
        assert!(f.get(0));
        assert!(f.get(129));
        assert!(!f.get(130));
        assert!((f.cover() - 1.0).abs() < 1e-12);
        assert_eq!(Bitmap::new_empty(0).cover(), 0.0);
    }

    #[test]
    fn set_clear_get() {
        let mut bm = Bitmap::new_empty(100);
        bm.set(0);
        bm.set(63);
        bm.set(64);
        bm.set(99);
        assert_eq!(bm.count(), 4);
        assert!(bm.get(63));
        assert!(bm.get(64));
        bm.clear(63);
        assert!(!bm.get(63));
        assert_eq!(bm.count(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut bm = Bitmap::new_empty(10);
        bm.set(10);
    }

    #[test]
    fn from_indices_and_bools() {
        let bm = Bitmap::from_indices(10, [1, 3, 5, 99]);
        assert_eq!(bm.to_indices(), vec![1, 3, 5]);
        let bm2 = Bitmap::from_bools(&[false, true, false, true]);
        assert_eq!(bm2.to_indices(), vec![1, 3]);
        assert_eq!(bm2.len(), 4);
    }

    #[test]
    fn boolean_algebra() {
        let a = Bitmap::from_indices(200, [1, 2, 3, 100, 150]);
        let b = Bitmap::from_indices(200, [2, 3, 4, 150, 199]);
        assert_eq!(a.and(&b).to_indices(), vec![2, 3, 150]);
        assert_eq!(a.or(&b).to_indices(), vec![1, 2, 3, 4, 100, 150, 199]);
        assert_eq!(a.and_not(&b).to_indices(), vec![1, 100]);
        assert_eq!(a.intersection_count(&b), 3);
        assert!(!a.is_disjoint(&b));
        assert!(a.is_disjoint(&Bitmap::new_empty(200)));
    }

    #[test]
    fn complement_respects_tail() {
        let a = Bitmap::from_indices(70, [0, 69]);
        let not_a = a.not();
        assert_eq!(not_a.count(), 68);
        assert!(!not_a.get(0));
        assert!(!not_a.get(69));
        assert!(not_a.get(1));
        // Complementing twice round-trips.
        assert_eq!(not_a.not(), a);
    }

    #[test]
    fn iter_ones_matches_indices() {
        let idx = vec![0, 7, 63, 64, 65, 127, 128, 199];
        let bm = Bitmap::from_indices(200, idx.clone());
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), idx);
    }

    #[test]
    fn iter_ones_on_empty_full_and_zero_length_bitmaps() {
        assert_eq!(Bitmap::new_empty(0).iter_ones().count(), 0);
        assert_eq!(Bitmap::new_empty(200).iter_ones().count(), 0);
        let full = Bitmap::new_full(200);
        assert_eq!(
            full.iter_ones().collect::<Vec<_>>(),
            (0..200).collect::<Vec<_>>()
        );
    }

    #[test]
    fn iter_ones_handles_word_boundaries_and_trailing_partial_word() {
        // Bits on both sides of every word boundary of a 3-word bitmap.
        let idx = vec![0, 62, 63, 64, 65, 126, 127, 128, 129];
        let bm = Bitmap::from_indices(130, idx.clone());
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), idx);
        // A bitmap whose length is an exact multiple of the word size.
        let exact = Bitmap::new_full(128);
        assert_eq!(exact.iter_ones().count(), 128);
        assert_eq!(exact.iter_ones().last(), Some(127));
        // The last set bit of a trailing partial word is reachable.
        let tail = Bitmap::from_indices(70, [69]);
        assert_eq!(tail.iter_ones().collect::<Vec<_>>(), vec![69]);
        // Bits masked off beyond `len` never appear (full + not round-trips).
        let full = Bitmap::new_full(70);
        assert_eq!(full.not().iter_ones().count(), 0);
    }

    #[test]
    fn for_each_one_matches_iter_ones() {
        for len in [0usize, 1, 63, 64, 65, 128, 200] {
            let bm = Bitmap::from_indices(len, (0..len).filter(|i| i % 7 == 3));
            let mut streamed = Vec::new();
            bm.for_each_one(|idx| streamed.push(idx));
            assert_eq!(streamed, bm.iter_ones().collect::<Vec<_>>(), "len={len}");
        }
    }

    #[test]
    fn filter_ones_builds_the_kept_subselection() {
        let bm = Bitmap::from_indices(200, [0, 5, 63, 64, 100, 150, 199]);
        let kept = bm.filter_ones(|idx| idx % 2 == 0);
        assert_eq!(kept.to_indices(), vec![0, 64, 100, 150]);
        assert_eq!(kept.len(), 200);
        // Filtering nothing or everything round-trips.
        assert_eq!(bm.filter_ones(|_| true), bm);
        assert!(bm.filter_ones(|_| false).is_all_clear());
    }

    #[test]
    fn from_fn_matches_from_bools() {
        for len in [0usize, 1, 64, 65, 130] {
            let bools: Vec<bool> = (0..len).map(|i| i % 3 == 1).collect();
            assert_eq!(
                Bitmap::from_fn(len, |i| bools[i]),
                Bitmap::from_bools(&bools),
                "len={len}"
            );
        }
    }

    #[test]
    fn range_kernels_match_their_global_forms() {
        // Split points on and off word boundaries, including empty ranges.
        let bm = Bitmap::from_indices(300, (0..300).filter(|i| i % 3 == 0 || i % 7 == 0));
        for &(a, b) in &[
            (0usize, 300usize),
            (0, 64),
            (1, 63),
            (63, 65),
            (100, 100),
            (128, 200),
        ] {
            let mut ranged = Vec::new();
            bm.for_each_one_in(a, b, |idx| ranged.push(idx));
            let expected: Vec<usize> = bm.iter_ones().filter(|&i| i >= a && i < b).collect();
            assert_eq!(ranged, expected, "range {a}..{b}");
        }
        // Covering splits reassemble the global walk exactly.
        for splits in [
            vec![0usize, 300],
            vec![0, 1, 65, 130, 300],
            vec![0, 64, 128, 192, 300],
        ] {
            let mut assembled = Vec::new();
            let mut filtered = Bitmap::new_empty(300);
            for pair in splits.windows(2) {
                bm.for_each_one_in(pair[0], pair[1], |idx| assembled.push(idx));
                bm.filter_ones_in_into(pair[0], pair[1], &mut filtered, |idx| idx % 2 == 0);
            }
            assert_eq!(assembled, bm.iter_ones().collect::<Vec<_>>());
            assert_eq!(
                filtered,
                bm.filter_ones(|idx| idx % 2 == 0),
                "splits {splits:?}"
            );
        }
        // fill_range_from_fn over covering splits equals from_fn.
        let mut filled = Bitmap::new_empty(300);
        for pair in [0usize, 50, 64, 129, 300].windows(2) {
            filled.fill_range_from_fn(pair[0], pair[1], |idx| idx % 5 == 1);
        }
        assert_eq!(filled, Bitmap::from_fn(300, |idx| idx % 5 == 1));
        // Out-of-range ends are clamped.
        let mut clamped = Vec::new();
        bm.for_each_one_in(290, 10_000, |idx| clamped.push(idx));
        assert!(clamped.iter().all(|&i| (290..300).contains(&i)));
    }

    #[test]
    fn concat_joins_aligned_and_unaligned_bitmaps() {
        // Word-aligned left side takes the copy fast path.
        let a = Bitmap::from_indices(128, [0, 63, 64, 127]);
        let b = Bitmap::from_indices(70, [0, 69]);
        let joined = a.concat(&b);
        assert_eq!(joined.len(), 198);
        assert_eq!(joined.to_indices(), vec![0, 63, 64, 127, 128, 197]);
        // Unaligned left side shifts bit by bit.
        let a = Bitmap::from_indices(70, [1, 69]);
        let joined = a.concat(&b);
        assert_eq!(joined.len(), 140);
        assert_eq!(joined.to_indices(), vec![1, 69, 70, 139]);
        // Empty sides are identities.
        assert_eq!(Bitmap::new_empty(0).concat(&b), b);
        assert_eq!(b.concat(&Bitmap::new_empty(0)), b);
    }

    #[test]
    fn or_shifted_assembles_masks_at_aligned_and_unaligned_offsets() {
        let part_a = Bitmap::from_indices(64, [0, 63]);
        let part_b = Bitmap::from_indices(70, [1, 69]);
        // Aligned offsets (whole-word OR) reproduce concat.
        let mut assembled = Bitmap::new_empty(134);
        assembled.or_shifted(&part_a, 0);
        assembled.or_shifted(&part_b, 64);
        assert_eq!(assembled, part_a.concat(&part_b));
        // Unaligned offset falls back to per-bit sets.
        let mut assembled = Bitmap::new_empty(134);
        assembled.or_shifted(&part_b, 0);
        assembled.or_shifted(&part_a, 70);
        assert_eq!(assembled, part_b.concat(&part_a));
        assert_eq!(assembled.to_indices(), vec![1, 69, 70, 133]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn or_shifted_rejects_out_of_range_offsets() {
        let mut target = Bitmap::new_empty(10);
        target.or_shifted(&Bitmap::new_full(8), 5);
    }

    #[test]
    fn push_matches_from_bools() {
        for len in [0usize, 1, 63, 64, 65, 130] {
            let bools: Vec<bool> = (0..len).map(|i| i % 3 != 1).collect();
            let mut pushed = Bitmap::new_empty(0);
            for &b in &bools {
                pushed.push(b);
            }
            assert_eq!(pushed, Bitmap::from_bools(&bools), "len={len}");
            assert_eq!(pushed.words().len(), len.div_ceil(WORD_BITS));
        }
    }

    #[test]
    fn word_at_reads_any_offset() {
        let bm = Bitmap::from_indices(150, (0..150).filter(|i| i % 5 == 0 || i % 7 == 2));
        for start in [0usize, 1, 37, 63, 64, 65, 127, 128, 140, 149, 150, 200] {
            let got = bm.word_at(start);
            for b in 0..WORD_BITS {
                let want = bm.get(start + b);
                assert_eq!((got >> b) & 1 == 1, want, "start={start} bit={b}");
            }
        }
    }

    #[test]
    fn or_word_masks_the_tail_and_ignores_out_of_range_words() {
        let mut bm = Bitmap::new_empty(70);
        bm.or_word(0, 1 | (1 << 63));
        bm.or_word(1, u64::MAX); // only bits 64..70 survive
        bm.or_word(9, u64::MAX); // entirely past the end: ignored
        assert_eq!(bm.count(), 2 + 6);
        assert!(bm.get(0) && bm.get(63) && bm.get(64) && bm.get(69));
        assert!(!bm.get(70));
        // Equivalent to per-bit sets.
        let mut scalar = Bitmap::new_empty(70);
        for idx in [0usize, 63, 64, 65, 66, 67, 68, 69] {
            scalar.set(idx);
        }
        assert_eq!(bm, scalar);
    }

    #[test]
    fn cover_fraction() {
        let bm = Bitmap::from_indices(8, [0, 1]);
        assert!((bm.cover() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn debug_format_is_compact() {
        let bm = Bitmap::from_indices(10, [1, 2]);
        assert_eq!(format!("{bm:?}"), "Bitmap(len=10, ones=2)");
    }
}
