//! Scalar values and data types.

use std::cmp::Ordering;
use std::fmt;

/// The data types supported by the engine.
///
/// Atlas only needs the types that appear in predicate sets of the conjunctive
/// query language: ordinal numerics (integers, floats and dates — dates are
/// represented as days-since-epoch integers upstream), categoricals (strings)
/// and booleans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
    /// Dictionary-encoded UTF-8 string (categorical).
    Str,
    /// Boolean.
    Bool,
}

impl DataType {
    /// Whether the type has a natural numeric order usable for range predicates.
    pub fn is_ordinal(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// Whether the type is treated as categorical (set predicates).
    pub fn is_categorical(self) -> bool {
        matches!(self, DataType::Str | DataType::Bool)
    }

    /// A short lowercase name, used in error messages and schema printing.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Bool => "bool",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A dynamically-typed scalar value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// The data type of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// True if the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret the value as an `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Interpret the value as an `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Interpret the value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Interpret the value as a boolean if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Total ordering between values of the same type.
    ///
    /// NULL sorts before everything; values of different types compare by type
    /// name to give a deterministic (if arbitrary) order. Floats use IEEE total
    /// ordering so NaN is handled deterministically.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (a, b) => {
                let an = a.data_type().map(DataType::name).unwrap_or("null");
                let bn = b.data_type().map(DataType::name).unwrap_or("null");
                an.cmp(bn)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "'{v}'"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_classification() {
        assert!(DataType::Int.is_ordinal());
        assert!(DataType::Float.is_ordinal());
        assert!(!DataType::Str.is_ordinal());
        assert!(DataType::Str.is_categorical());
        assert!(DataType::Bool.is_categorical());
        assert!(!DataType::Float.is_categorical());
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Str("a".into()).as_f64(), None);
        assert_eq!(Value::Str("a".into()).as_str(), Some("a"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
    }

    #[test]
    fn value_from_conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(1.5f64), Value::Float(1.5));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(Option::<i64>::None), Value::Null);
        assert_eq!(Value::from(Some(7i64)), Value::Int(7));
    }

    #[test]
    fn total_ordering_within_and_across_types() {
        assert_eq!(Value::Int(1).total_cmp(&Value::Int(2)), Ordering::Less);
        assert_eq!(Value::Float(2.0).total_cmp(&Value::Int(2)), Ordering::Equal);
        assert_eq!(Value::Null.total_cmp(&Value::Int(0)), Ordering::Less);
        assert_eq!(
            Value::Str("b".into()).total_cmp(&Value::Str("a".into())),
            Ordering::Greater
        );
        // Mixed incomparable types fall back to type-name ordering, but stay
        // deterministic and antisymmetric.
        let a = Value::Bool(true);
        let b = Value::Str("x".into());
        assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Str("hi".into()).to_string(), "'hi'");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }
}
