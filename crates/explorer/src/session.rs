//! Exploration sessions: the interaction loop of Figure 1.
//!
//! The user submits a query; Atlas answers with a handful of maps; the user
//! either drills down into one region (its query becomes the new user query)
//! or asks for a new map. A [`Session`] records that history so the user can
//! also go back.

use atlas_columnar::{Segment, Table};
use atlas_core::{Atlas, AtlasConfig, MapResult, Result};
use atlas_query::ConjunctiveQuery;
use std::sync::Arc;

/// One step of an exploration: the query that was submitted and the maps that
/// came back.
#[derive(Debug, Clone)]
pub struct ExplorationStep {
    /// The query submitted at this step.
    pub query: ConjunctiveQuery,
    /// The result Atlas returned.
    pub result: MapResult,
}

impl ExplorationStep {
    /// Number of tuples in this step's working set.
    pub fn working_set_size(&self) -> usize {
        self.result.working_set_size
    }
}

/// An interactive exploration session over a single table.
#[derive(Debug, Clone)]
pub struct Session {
    engine: Atlas,
    steps: Vec<ExplorationStep>,
}

impl Session {
    /// Start a session over a table with the given engine configuration.
    pub fn new(table: Arc<Table>, config: AtlasConfig) -> Result<Self> {
        Ok(Session::with_engine(Atlas::new(table, config)?))
    }

    /// Start a session over an already prepared engine (built with
    /// [`Atlas::builder`], possibly with custom pipeline stages). The
    /// engine's build-time statistics profile is shared by every step of the
    /// session — and, since cloning an engine is cheap, by other sessions or
    /// threads exploring the same table.
    pub fn with_engine(engine: Atlas) -> Self {
        Session {
            engine,
            steps: Vec::new(),
        }
    }

    /// Start a session with the default configuration.
    pub fn with_defaults(table: Arc<Table>) -> Result<Self> {
        Session::new(table, AtlasConfig::default())
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Atlas {
        &self.engine
    }

    /// The exploration history, oldest step first.
    pub fn history(&self) -> &[ExplorationStep] {
        &self.steps
    }

    /// The current (latest) step, if any.
    pub fn current(&self) -> Option<&ExplorationStep> {
        self.steps.last()
    }

    /// Exploration depth (number of steps taken).
    pub fn depth(&self) -> usize {
        self.steps.len()
    }

    /// Submit a query: Atlas answers it with maps and the step is recorded.
    pub fn submit(&mut self, query: ConjunctiveQuery) -> Result<&ExplorationStep> {
        let result = self.engine.explore(&query)?;
        self.steps.push(ExplorationStep { query, result });
        Ok(self.steps.last().expect("step was just pushed"))
    }

    /// Submit a query written in the restricted SQL syntax.
    pub fn submit_sql(&mut self, sql: &str) -> Result<&ExplorationStep> {
        let mut query = atlas_query::parse_query(sql).map_err(atlas_core::AtlasError::Query)?;
        if query.table.is_empty() {
            query.table = self.engine.table().name().to_string();
        }
        self.submit(query)
    }

    /// Record a step whose result was computed externally — by a shared
    /// result cache (`atlas_core::CachedAtlas`), a remote worker, or any
    /// other front-end that routes explorations around the session's own
    /// engine. The step joins the history exactly as if
    /// [`Session::submit`] had produced it, so `drill_down`/`back` keep
    /// working; the caller is responsible for the result actually answering
    /// `query` over this session's table snapshot.
    pub fn record(&mut self, query: ConjunctiveQuery, result: MapResult) -> &ExplorationStep {
        self.steps.push(ExplorationStep { query, result });
        self.steps.last().expect("step was just pushed")
    }

    /// The query a drill-down on (`map_idx`, `region_idx`) would submit,
    /// without submitting it. Errors mirror [`Session::drill_down`] and leave
    /// the history untouched.
    pub fn drill_query(&self, map_idx: usize, region_idx: usize) -> Result<ConjunctiveQuery> {
        let step = self.current().ok_or_else(|| {
            atlas_core::AtlasError::InvalidConfig(
                "cannot drill down before submitting a query".to_string(),
            )
        })?;
        let map = step.result.maps.get(map_idx).ok_or_else(|| {
            atlas_core::AtlasError::InvalidConfig(format!("no map #{map_idx} in current step"))
        })?;
        let region = map.map.regions.get(region_idx).ok_or_else(|| {
            atlas_core::AtlasError::InvalidConfig(format!(
                "no region #{region_idx} in map #{map_idx}"
            ))
        })?;
        Ok(region.query.clone())
    }

    /// Drill down: take region `region_idx` of map `map_idx` of the current
    /// step and submit its query as the next exploration step (the refine
    /// action of Figure 1).
    pub fn drill_down(&mut self, map_idx: usize, region_idx: usize) -> Result<&ExplorationStep> {
        let query = self.drill_query(map_idx, region_idx)?;
        self.submit(query)
    }

    /// Ingest newly arrived data mid-session: append `segment` to the
    /// engine's table (the engine re-prepares incrementally, merging only the
    /// new segment's statistics — see [`Atlas::append`]) and, when a step is
    /// on screen, re-run its query over the extended table so the current
    /// view reflects the new rows. The refreshed result **replaces** the
    /// current step (history depth is unchanged); earlier steps keep the
    /// results their snapshots produced.
    pub fn append_segment(
        &mut self,
        segment: impl Into<Arc<Segment>>,
    ) -> Result<Option<&ExplorationStep>> {
        let engine = self.engine.append(segment)?;
        self.adopt_engine(engine)
    }

    /// Switch the session onto an already prepared engine over a newer
    /// snapshot of the same logical table — e.g. the shared engine a serving
    /// front-end re-prepared once for all sessions (cheaper than every
    /// session re-profiling the same segments through
    /// [`Session::append_segment`]). As with an append, the current step's
    /// query is re-run over the new snapshot and its result **replaces** the
    /// step on screen; earlier steps keep their historical results. An error
    /// (e.g. the current query not evaluating on the new engine's table)
    /// leaves engine and history untouched.
    pub fn adopt_engine(&mut self, engine: Atlas) -> Result<Option<&ExplorationStep>> {
        // Compute the refreshed result *before* touching the session, so an
        // error leaves engine and history untouched.
        let refreshed = match self.steps.last() {
            Some(current) => Some(engine.explore(&current.query)?),
            None => None,
        };
        self.engine = engine;
        let Some(result) = refreshed else {
            return Ok(None);
        };
        let current = self.steps.last_mut().expect("refreshed implies a step");
        current.result = result;
        Ok(Some(self.steps.last().expect("a step was just refreshed")))
    }

    /// Bound the history to its `max_depth` most recent steps, discarding
    /// the oldest ones (long-lived front-end sessions would otherwise grow
    /// without limit — every step retains a full [`MapResult`]). The current
    /// step is never discarded; `back` afterwards walks only the retained
    /// steps. Returns how many steps were discarded.
    pub fn trim_history(&mut self, max_depth: usize) -> usize {
        let max_depth = max_depth.max(1);
        if self.steps.len() <= max_depth {
            return 0;
        }
        let excess = self.steps.len() - max_depth;
        self.steps.drain(..excess);
        excess
    }

    /// Go back one step, returning the step that was abandoned.
    pub fn back(&mut self) -> Option<ExplorationStep> {
        self.steps.pop()
    }

    /// Reset the session, clearing the history.
    pub fn reset(&mut self) {
        self.steps.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_datagen::CensusGenerator;

    fn census_session() -> Session {
        let table = Arc::new(CensusGenerator::with_rows(2000, 3).generate());
        Session::with_defaults(table).unwrap()
    }

    #[test]
    fn submit_and_history() {
        let mut session = census_session();
        assert_eq!(session.depth(), 0);
        assert!(session.current().is_none());
        let step = session.submit(ConjunctiveQuery::all("census")).unwrap();
        assert_eq!(step.working_set_size(), 2000);
        assert!(step.result.num_maps() >= 1);
        assert_eq!(session.depth(), 1);
        assert!(session.current().is_some());
        assert_eq!(session.history().len(), 1);
    }

    #[test]
    fn submit_sql_fills_in_the_table_name() {
        let mut session = census_session();
        let step = session
            .submit_sql("age BETWEEN 17 AND 40 AND sex IN ('Male')")
            .unwrap();
        assert!(step.query.table == "census");
        assert!(step.working_set_size() < 2000);
        assert!(step.working_set_size() > 0);
    }

    #[test]
    fn drill_down_narrows_the_working_set() {
        let mut session = census_session();
        session.submit(ConjunctiveQuery::all("census")).unwrap();
        let before = session.current().unwrap().working_set_size();
        let step = session.drill_down(0, 0).unwrap();
        assert!(step.working_set_size() < before);
        assert!(step.working_set_size() > 0);
        assert_eq!(session.depth(), 2);
        // The drill-down query is the region query, so it has at least one predicate.
        assert!(session.current().unwrap().query.num_predicates() >= 1);
    }

    #[test]
    fn back_pops_history() {
        let mut session = census_session();
        session.submit(ConjunctiveQuery::all("census")).unwrap();
        session.drill_down(0, 0).unwrap();
        assert_eq!(session.depth(), 2);
        let popped = session.back().unwrap();
        assert!(popped.query.num_predicates() >= 1);
        assert_eq!(session.depth(), 1);
        session.reset();
        assert_eq!(session.depth(), 0);
        assert!(session.back().is_none());
    }

    #[test]
    fn drill_down_without_a_step_or_with_bad_indices_fails() {
        let mut session = census_session();
        assert!(session.drill_down(0, 0).is_err());
        session.submit(ConjunctiveQuery::all("census")).unwrap();
        assert!(session.drill_down(99, 0).is_err());
        assert!(session.drill_down(0, 99).is_err());
        // The failed drill-downs must not have altered the history.
        assert_eq!(session.depth(), 1);
    }

    #[test]
    fn out_of_range_drill_errors_name_the_missing_index_and_keep_history_intact() {
        let mut session = census_session();
        session.submit(ConjunctiveQuery::all("census")).unwrap();
        let before: Vec<String> = session
            .history()
            .iter()
            .map(|s| atlas_query::to_sql(&s.query))
            .collect();

        let err = session.drill_down(42, 0).unwrap_err();
        assert!(err.to_string().contains("map #42"), "{err}");
        let num_maps = session.current().unwrap().result.num_maps();
        let err = session.drill_down(0, 1_000).unwrap_err();
        assert!(err.to_string().contains("region #1000"), "{err}");
        // An index one past the end fails exactly like a huge one.
        assert!(session.drill_down(num_maps, 0).is_err());

        let after: Vec<String> = session
            .history()
            .iter()
            .map(|s| atlas_query::to_sql(&s.query))
            .collect();
        assert_eq!(before, after, "failed drills must not rewrite history");
        // The session is still usable: a valid drill works afterwards.
        assert!(session.drill_down(0, 0).is_ok());
        assert_eq!(session.depth(), 2);
    }

    #[test]
    fn back_past_the_root_is_a_clean_no_op() {
        let mut session = census_session();
        session.submit(ConjunctiveQuery::all("census")).unwrap();
        session.drill_down(0, 0).unwrap();
        assert!(session.back().is_some());
        assert!(session.back().is_some());
        assert_eq!(session.depth(), 0);
        // Going back past the root neither panics nor fabricates steps, no
        // matter how often it is repeated.
        for _ in 0..3 {
            assert!(session.back().is_none());
            assert_eq!(session.depth(), 0);
            assert!(session.current().is_none());
        }
        // Drilling now fails (there is no current step) but the session still
        // accepts fresh queries.
        assert!(session.drill_down(0, 0).is_err());
        assert!(session.submit(ConjunctiveQuery::all("census")).is_ok());
    }

    #[test]
    fn reset_clears_history_but_keeps_the_engine_usable() {
        let mut session = census_session();
        session.submit(ConjunctiveQuery::all("census")).unwrap();
        session.drill_down(0, 0).unwrap();
        session.reset();
        assert_eq!(session.depth(), 0);
        assert!(session.current().is_none());
        assert!(session.back().is_none());
        assert!(session.drill_down(0, 0).is_err());
        let step = session.submit(ConjunctiveQuery::all("census")).unwrap();
        assert_eq!(step.working_set_size(), 2000);
        assert_eq!(session.depth(), 1);
    }

    #[test]
    fn trim_history_bounds_the_session_but_keeps_the_current_step() {
        let mut session = census_session();
        session.submit(ConjunctiveQuery::all("census")).unwrap();
        for _ in 0..3 {
            session.drill_down(0, 0).ok();
            session
                .submit(ConjunctiveQuery::all("census"))
                .expect("whole-table query always works");
        }
        let depth = session.depth();
        assert!(depth >= 4);
        let current_sql = atlas_query::to_sql(&session.current().unwrap().query);

        assert_eq!(session.trim_history(depth + 1), 0, "under the cap: no-op");
        let discarded = session.trim_history(2);
        assert_eq!(discarded, depth - 2);
        assert_eq!(session.depth(), 2);
        assert_eq!(
            atlas_query::to_sql(&session.current().unwrap().query),
            current_sql,
            "the step on screen survives trimming"
        );
        // A zero cap still keeps the current step.
        assert_eq!(session.trim_history(0), 1);
        assert_eq!(session.depth(), 1);
        assert!(session.current().is_some());
    }

    #[test]
    fn record_joins_the_history_like_submit() {
        let mut session = census_session();
        let query = ConjunctiveQuery::all("census");
        // Compute the result outside the session (as a shared server-side
        // cache would) and record it.
        let result = session.engine().explore(&query).unwrap();
        let expected_maps = result.num_maps();
        session.record(query.clone(), result);
        assert_eq!(session.depth(), 1);
        assert_eq!(session.current().unwrap().query, query);

        // drill_query mirrors drill_down's lookups without touching history.
        let drill = session.drill_query(0, 0).unwrap();
        assert!(drill.num_predicates() >= 1);
        assert_eq!(session.depth(), 1);
        assert!(session.drill_query(expected_maps, 0).is_err());

        // And the recorded step drills exactly like a submitted one.
        let step = session.drill_down(0, 0).unwrap();
        assert!(step.working_set_size() < 2000);
        assert_eq!(session.depth(), 2);
    }

    #[test]
    fn bad_sql_is_reported() {
        let mut session = census_session();
        assert!(session.submit_sql("SELECT age FROM census").is_err());
        assert_eq!(session.depth(), 0);
    }

    #[test]
    fn append_segment_refreshes_the_current_step_in_place() {
        let mut session = census_session();
        session.submit(ConjunctiveQuery::all("census")).unwrap();
        assert_eq!(session.current().unwrap().working_set_size(), 2000);

        // New data arrives: a fresh census batch with a different seed,
        // re-packaged as one segment of the session's table schema.
        let batch = CensusGenerator::with_rows(500, 9).generate();
        let mut b = atlas_columnar::TableBuilder::new("census", batch.schema().clone())
            .with_segment_rows(usize::MAX);
        for row in 0..batch.num_rows() {
            b.push_row(&batch.row(row).unwrap()).unwrap();
        }
        let (_, segments) = b.build_segments().unwrap();
        assert_eq!(segments.len(), 1);

        let refreshed = session
            .append_segment(segments.into_iter().next().unwrap())
            .unwrap()
            .expect("a step was on screen");
        assert_eq!(refreshed.working_set_size(), 2500, "the view sees new rows");
        assert_eq!(session.depth(), 1, "refresh replaces, never stacks");
        assert_eq!(session.engine().table().num_rows(), 2500);
    }

    #[test]
    fn append_segment_before_any_step_only_extends_the_engine() {
        let mut session = census_session();
        let batch = CensusGenerator::with_rows(100, 5).generate();
        let mut b = atlas_columnar::TableBuilder::new("census", batch.schema().clone())
            .with_segment_rows(usize::MAX);
        for row in 0..batch.num_rows() {
            b.push_row(&batch.row(row).unwrap()).unwrap();
        }
        let (_, segments) = b.build_segments().unwrap();
        let refreshed = session
            .append_segment(segments.into_iter().next().unwrap())
            .unwrap();
        assert!(refreshed.is_none());
        assert_eq!(session.engine().table().num_rows(), 2100);
        assert_eq!(session.depth(), 0);
    }

    #[test]
    fn adopt_engine_refreshes_the_current_step_without_re_profiling() {
        let mut session = census_session();
        session.submit(ConjunctiveQuery::all("census")).unwrap();
        assert_eq!(session.current().unwrap().working_set_size(), 2000);

        // A front-end re-prepared the shared engine once (append path); the
        // session adopts it instead of re-profiling the segment itself.
        let batch = CensusGenerator::with_rows(400, 13).generate();
        let mut b = atlas_columnar::TableBuilder::new("census", batch.schema().clone())
            .with_segment_rows(usize::MAX);
        for row in 0..batch.num_rows() {
            b.push_row(&batch.row(row).unwrap()).unwrap();
        }
        let (_, segments) = b.build_segments().unwrap();
        let shared = session
            .engine()
            .append(segments.into_iter().next().unwrap())
            .unwrap();

        let refreshed = session
            .adopt_engine(shared)
            .unwrap()
            .expect("a step was on screen");
        assert_eq!(refreshed.working_set_size(), 2400);
        assert_eq!(session.depth(), 1, "refresh replaces, never stacks");
        assert_eq!(session.engine().table().num_rows(), 2400);

        // Adopting with no step on screen only swaps the engine.
        let mut fresh = census_session();
        let engine = fresh.engine().clone();
        assert!(fresh.adopt_engine(engine).unwrap().is_none());
        assert_eq!(fresh.depth(), 0);
    }

    #[test]
    fn with_engine_accepts_a_prepared_engine() {
        let table = Arc::new(CensusGenerator::with_rows(2000, 3).generate());
        // Product merge never re-cuts inside regions, so a whole-table step
        // is answered purely from the engine's build-time statistics profile.
        let engine = Atlas::builder(Arc::clone(&table))
            .config(AtlasConfig::fast())
            .build()
            .unwrap();
        let mut session = Session::with_engine(engine);
        let step = session.submit(ConjunctiveQuery::all("census")).unwrap();
        assert!(step.result.num_maps() >= 1);
        assert_eq!(session.engine().profile_stats().misses, 0);
    }
}
