//! Region explanations (Section 5.2, "Real life users").
//!
//! "One research direction would be to explain why a region is interesting,
//! by charting the attributes of the subset versus those of the whole
//! database." This module implements that comparison: for a region of a map,
//! every attribute of the table is scored by how much its distribution inside
//! the region diverges from its distribution over the whole working set.
//!
//! * numeric attributes — standardised mean shift and the share of the
//!   region's values falling below the working set's median (a robust
//!   location-shift indicator);
//! * categorical attributes — total variation distance between the category
//!   distributions, plus the most over-represented category.
//!
//! The result is a ranked list of [`AttributeInsight`]s: the attributes at the
//! top are the ones that make the region "special", whether or not they appear
//! in the region's defining query.

use atlas_columnar::{Bitmap, ColumnView, DataType, Table};
use atlas_core::Region;
use atlas_stats::quantile::quantile;
use std::collections::BTreeMap;
use std::fmt;

/// How one attribute differs between a region and the reference population.
#[derive(Debug, Clone, PartialEq)]
pub enum InsightKind {
    /// A numeric attribute shifted in location.
    NumericShift {
        /// Mean inside the region.
        region_mean: f64,
        /// Mean over the reference population.
        reference_mean: f64,
        /// `(region_mean − reference_mean) / reference_std_dev` (0 when the
        /// reference is constant).
        standardized_shift: f64,
        /// Fraction of the region's values at or below the reference median.
        fraction_below_reference_median: f64,
    },
    /// A categorical attribute changed its mix of values.
    CategoricalShift {
        /// Total variation distance between the two category distributions,
        /// in `[0, 1]`.
        total_variation: f64,
        /// The category whose share grew the most inside the region.
        most_over_represented: String,
        /// Its share inside the region.
        region_share: f64,
        /// Its share in the reference population.
        reference_share: f64,
    },
}

/// The explanation entry for one attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeInsight {
    /// The attribute name.
    pub attribute: String,
    /// A divergence score in `[0, 1]`-ish scale used for ranking (higher =
    /// more surprising). Numeric shifts are squashed through `|z| / (1 + |z|)`
    /// so the two kinds are comparable.
    pub score: f64,
    /// The detailed comparison.
    pub kind: InsightKind,
}

impl fmt::Display for AttributeInsight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            InsightKind::NumericShift {
                region_mean,
                reference_mean,
                standardized_shift,
                ..
            } => write!(
                f,
                "{}: mean {:.2} vs {:.2} overall ({:+.2}σ)",
                self.attribute, region_mean, reference_mean, standardized_shift
            ),
            InsightKind::CategoricalShift {
                most_over_represented,
                region_share,
                reference_share,
                ..
            } => write!(
                f,
                "{}: '{}' makes up {:.0}% of the region vs {:.0}% overall",
                self.attribute,
                most_over_represented,
                region_share * 100.0,
                reference_share * 100.0
            ),
        }
    }
}

/// Explain a region against a reference selection (normally the working set
/// the map was computed on).
///
/// Returns one insight per attribute that could be compared, ranked by
/// decreasing divergence. Attributes with no data in either selection are
/// skipped.
pub fn explain_region(table: &Table, region: &Region, reference: &Bitmap) -> Vec<AttributeInsight> {
    explain_selection(table, &region.selection, reference)
}

/// Explain an arbitrary selection against a reference selection.
pub fn explain_selection(
    table: &Table,
    selection: &Bitmap,
    reference: &Bitmap,
) -> Vec<AttributeInsight> {
    let mut insights = Vec::new();
    for field in table.schema().fields() {
        let column = match table.column(&field.name) {
            Ok(c) => c,
            Err(_) => continue,
        };
        let insight = match field.dtype {
            DataType::Int | DataType::Float => {
                numeric_insight(&field.name, column, selection, reference)
            }
            DataType::Str | DataType::Bool => {
                categorical_insight(&field.name, column, selection, reference)
            }
        };
        if let Some(insight) = insight {
            insights.push(insight);
        }
    }
    insights.sort_by(|a, b| b.score.total_cmp(&a.score));
    insights
}

fn numeric_insight(
    name: &str,
    column: ColumnView<'_>,
    selection: &Bitmap,
    reference: &Bitmap,
) -> Option<AttributeInsight> {
    let region_values = column.numeric_values_where(selection);
    let reference_values = column.numeric_values_where(reference);
    if region_values.is_empty() || reference_values.is_empty() {
        return None;
    }
    let region_mean = mean(&region_values);
    let reference_mean = mean(&reference_values);
    let reference_std = std_dev(&reference_values);
    let standardized_shift = if reference_std > f64::EPSILON {
        (region_mean - reference_mean) / reference_std
    } else {
        0.0
    };
    let reference_median = quantile(&reference_values, 0.5).unwrap_or(reference_mean);
    let below = region_values
        .iter()
        .filter(|&&v| v <= reference_median)
        .count() as f64
        / region_values.len() as f64;
    let score = standardized_shift.abs() / (1.0 + standardized_shift.abs());
    Some(AttributeInsight {
        attribute: name.to_string(),
        score,
        kind: InsightKind::NumericShift {
            region_mean,
            reference_mean,
            standardized_shift,
            fraction_below_reference_median: below,
        },
    })
}

fn categorical_insight(
    name: &str,
    column: ColumnView<'_>,
    selection: &Bitmap,
    reference: &Bitmap,
) -> Option<AttributeInsight> {
    let region_counts = column.categories_by_frequency(selection);
    let reference_counts = column.categories_by_frequency(reference);
    if region_counts.is_empty() || reference_counts.is_empty() {
        return None;
    }
    let region_total: usize = region_counts.iter().map(|(_, n)| n).sum();
    let reference_total: usize = reference_counts.iter().map(|(_, n)| n).sum();
    let region_share: BTreeMap<&str, f64> = region_counts
        .iter()
        .map(|(v, n)| (v.as_str(), *n as f64 / region_total as f64))
        .collect();
    let reference_share: BTreeMap<&str, f64> = reference_counts
        .iter()
        .map(|(v, n)| (v.as_str(), *n as f64 / reference_total as f64))
        .collect();
    let mut total_variation = 0.0f64;
    let mut best: Option<(&str, f64, f64)> = None;
    for (value, &ref_share) in &reference_share {
        let reg_share = region_share.get(value).copied().unwrap_or(0.0);
        total_variation += (reg_share - ref_share).abs();
        let lift = reg_share - ref_share;
        if best.is_none_or(|(_, best_lift, _)| lift > best_lift) {
            best = Some((value, lift, ref_share));
        }
    }
    // Categories that appear only in the region also contribute.
    for (value, &reg_share) in &region_share {
        if !reference_share.contains_key(value) {
            total_variation += reg_share;
            if best.is_none_or(|(_, best_lift, _)| reg_share > best_lift) {
                best = Some((value, reg_share, 0.0));
            }
        }
    }
    let total_variation = (total_variation / 2.0).clamp(0.0, 1.0);
    let (winner, _, winner_ref_share) = best?;
    let winner_region_share = region_share.get(winner).copied().unwrap_or(0.0);
    Some(AttributeInsight {
        attribute: name.to_string(),
        score: total_variation,
        kind: InsightKind::CategoricalShift {
            total_variation,
            most_over_represented: winner.to_string(),
            region_share: winner_region_share,
            reference_share: winner_ref_share,
        },
    })
}

fn mean(values: &[f64]) -> f64 {
    values.iter().sum::<f64>() / values.len() as f64
}

fn std_dev(values: &[f64]) -> f64 {
    let m = mean(values);
    (values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_core::{Atlas, AtlasConfig};
    use atlas_datagen::CensusGenerator;
    use atlas_query::ConjunctiveQuery;
    use std::sync::Arc;

    fn census() -> Arc<atlas_columnar::Table> {
        Arc::new(CensusGenerator::with_rows(6_000, 31).generate())
    }

    #[test]
    fn explains_a_high_salary_region() {
        // Select the high-salary rows by hand and explain them: education
        // should surface as the most shifted categorical attribute even though
        // the selection was defined on salary alone.
        let table = census();
        let all = table.full_selection();
        let rich = table
            .column("salary")
            .unwrap()
            .select_in(&all, &[">50k".to_string()]);
        let insights = explain_selection(&table, &rich, &all);
        assert!(!insights.is_empty());
        let education = insights
            .iter()
            .find(|i| i.attribute == "education")
            .expect("education insight exists");
        match &education.kind {
            InsightKind::CategoricalShift {
                most_over_represented,
                region_share,
                reference_share,
                total_variation,
            } => {
                assert!(
                    most_over_represented == "MSc" || most_over_represented == "PhD",
                    "got {most_over_represented}"
                );
                assert!(region_share > reference_share);
                assert!(*total_variation > 0.1);
            }
            other => panic!("expected a categorical shift, got {other:?}"),
        }
        // Education must rank above the independent eye colour.
        let edu_pos = insights
            .iter()
            .position(|i| i.attribute == "education")
            .unwrap();
        let eye_pos = insights
            .iter()
            .position(|i| i.attribute == "eye_color")
            .unwrap();
        assert!(edu_pos < eye_pos);
        // The eye colour shift itself is small.
        assert!(insights[eye_pos].score < 0.1);
    }

    #[test]
    fn explains_numeric_shift_for_retirees() {
        let table = census();
        let all = table.full_selection();
        let retirees = table.column("age").unwrap().select_range(&all, 65.0, 200.0);
        let insights = explain_selection(&table, &retirees, &all);
        let hours = insights
            .iter()
            .find(|i| i.attribute == "hours_per_week")
            .expect("hours insight exists");
        match &hours.kind {
            InsightKind::NumericShift {
                region_mean,
                reference_mean,
                standardized_shift,
                fraction_below_reference_median,
            } => {
                assert!(region_mean < reference_mean);
                assert!(*standardized_shift < -0.5);
                assert!(*fraction_below_reference_median > 0.8);
            }
            other => panic!("expected a numeric shift, got {other:?}"),
        }
        assert!(hours.score > 0.3);
        // Display is human-readable.
        assert!(hours.to_string().contains("hours_per_week"));
    }

    #[test]
    fn explaining_regions_from_the_engine_works_end_to_end() {
        let table = census();
        let atlas = Atlas::new(Arc::clone(&table), AtlasConfig::default()).unwrap();
        let result = atlas.explore(&ConjunctiveQuery::all("census")).unwrap();
        let best = result.best().unwrap();
        for region in &best.map.regions {
            let insights = explain_region(&table, region, &result.working_set);
            assert!(!insights.is_empty());
            // Scores are sorted descending and all finite.
            for pair in insights.windows(2) {
                assert!(pair[0].score >= pair[1].score);
            }
            for insight in &insights {
                assert!(insight.score.is_finite());
                assert!((0.0..=1.0).contains(&insight.score));
            }
        }
    }

    #[test]
    fn empty_selection_produces_no_insights() {
        let table = census();
        let empty = table.empty_selection();
        let all = table.full_selection();
        assert!(explain_selection(&table, &empty, &all).is_empty());
    }

    #[test]
    fn identical_selection_scores_near_zero() {
        let table = census();
        let all = table.full_selection();
        let insights = explain_selection(&table, &all, &all);
        for insight in insights {
            assert!(insight.score < 1e-9, "{insight:?}");
        }
    }
}
