//! # atlas-explorer
//!
//! The front-end layer of the Atlas reproduction: exploration sessions,
//! textual rendering of data maps, and map-quality metrics.
//!
//! The original prototype exposes Atlas through a Web GUI (Figure 6 of the
//! paper); every interaction that GUI supports is available here
//! programmatically:
//!
//! * [`session::Session`] — an exploration session over one table: submit a
//!   query, receive ranked maps, *drill down* into a region (its query becomes
//!   the next user query), go *back*, or ask for the next-best map.
//! * [`render`] — plain-text and Markdown rendering of maps and results, in
//!   the style of the paper's figures.
//! * [`metrics`] — readability and quality metrics used by the evaluation:
//!   region counts, predicates per query, balance, and cluster recovery
//!   against planted ground truth.
//! * [`explain`] — region explanations (Section 5.2): which attributes make a
//!   region differ from the rest of the working set.

#![warn(missing_docs)]

pub mod explain;
pub mod metrics;
pub mod render;
pub mod session;

pub use explain::{explain_region, explain_selection, AttributeInsight, InsightKind};
pub use metrics::{MapQuality, ReadabilityReport};
pub use render::{render_map, render_result, render_result_markdown};
pub use session::{ExplorationStep, Session};
