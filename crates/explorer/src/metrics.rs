//! Readability and quality metrics over maps and results.
//!
//! Section 2 of the paper states the convenience requirements explicitly: few
//! maps, at most ~8 regions per map, at most ~3 predicates per query. The
//! evaluation (experiment E8) scores Atlas and every baseline on these
//! metrics, plus cluster-recovery quality when ground truth is available.

use atlas_core::{DataMap, RankedMap};
use atlas_stats::{adjusted_rand_index, normalized_mutual_information, purity};

/// Readability metrics of a set of maps.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadabilityReport {
    /// Number of maps.
    pub num_maps: usize,
    /// Largest number of regions in any map.
    pub max_regions: usize,
    /// Mean number of regions per map.
    pub mean_regions: f64,
    /// Largest number of predicates in any region query.
    pub max_predicates: usize,
    /// Mean entropy (balance) of the maps, in bits.
    pub mean_entropy: f64,
    /// True if every map satisfies the paper's constraints (≤ `region_limit`
    /// regions and ≤ `predicate_limit` predicates).
    pub within_constraints: bool,
}

impl ReadabilityReport {
    /// Compute the report for a set of maps against the given limits.
    pub fn compute(maps: &[DataMap], region_limit: usize, predicate_limit: usize) -> Self {
        let num_maps = maps.len();
        let max_regions = maps.iter().map(DataMap::num_regions).max().unwrap_or(0);
        let mean_regions = if num_maps == 0 {
            0.0
        } else {
            maps.iter().map(DataMap::num_regions).sum::<usize>() as f64 / num_maps as f64
        };
        let max_predicates = maps.iter().map(DataMap::max_predicates).max().unwrap_or(0);
        let mean_entropy = if num_maps == 0 {
            0.0
        } else {
            maps.iter().map(DataMap::entropy).sum::<f64>() / num_maps as f64
        };
        ReadabilityReport {
            num_maps,
            max_regions,
            mean_regions,
            max_predicates,
            mean_entropy,
            within_constraints: max_regions <= region_limit && max_predicates <= predicate_limit,
        }
    }

    /// Compute the report for ranked maps (convenience overload).
    pub fn compute_ranked(maps: &[RankedMap], region_limit: usize, predicate_limit: usize) -> Self {
        let plain: Vec<DataMap> = maps.iter().map(|m| m.map.clone()).collect();
        Self::compute(&plain, region_limit, predicate_limit)
    }
}

/// Cluster-recovery quality of one map against planted ground-truth labels.
#[derive(Debug, Clone, PartialEq)]
pub struct MapQuality {
    /// Adjusted Rand Index between the map's regions and the ground truth.
    pub ari: f64,
    /// Normalised mutual information between the map's regions and the truth.
    pub nmi: f64,
    /// Purity of the map's regions with respect to the truth.
    pub purity: f64,
    /// Fraction of the reference rows that fall in some region of the map.
    pub coverage: f64,
}

impl MapQuality {
    /// Score a map against ground-truth labels (one label per table row; rows
    /// with no ground truth can use any value as long as they are outside the
    /// map's regions).
    pub fn against_truth(map: &DataMap, truth: &[u32]) -> Self {
        let labels = map.region_labels(truth.len());
        // Restrict both vectors to rows the map actually covers.
        let mut covered_map = Vec::new();
        let mut covered_truth = Vec::new();
        for (l, t) in labels.iter().zip(truth.iter()) {
            if *l != atlas_core::map::NO_REGION {
                covered_map.push(*l);
                covered_truth.push(*t);
            }
        }
        let coverage = if truth.is_empty() {
            0.0
        } else {
            covered_map.len() as f64 / truth.len() as f64
        };
        if covered_map.is_empty() {
            return MapQuality {
                ari: 0.0,
                nmi: 0.0,
                purity: 0.0,
                coverage,
            };
        }
        MapQuality {
            ari: adjusted_rand_index(&covered_map, &covered_truth),
            nmi: normalized_mutual_information(&covered_map, &covered_truth),
            purity: purity(&covered_map, &covered_truth),
            coverage,
        }
    }

    /// The best (highest-ARI) quality over a list of ranked maps, together
    /// with the index of the best map. Returns `None` for an empty list.
    pub fn best_of(maps: &[RankedMap], truth: &[u32]) -> Option<(usize, MapQuality)> {
        maps.iter()
            .enumerate()
            .map(|(i, m)| (i, MapQuality::against_truth(&m.map, truth)))
            .max_by(|a, b| a.1.ari.total_cmp(&b.1.ari))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_core::{Atlas, AtlasConfig, MergeStrategy};
    use atlas_datagen::MixtureGenerator;
    use atlas_query::ConjunctiveQuery;
    use std::sync::Arc;

    #[test]
    fn readability_report_on_atlas_output_is_within_constraints() {
        let ds = MixtureGenerator::with_shape(2000, 3, 2, 2, 21).generate();
        let atlas = Atlas::new(Arc::new(ds.table), AtlasConfig::default()).unwrap();
        let result = atlas.explore(&ConjunctiveQuery::all("mixture")).unwrap();
        let report = ReadabilityReport::compute_ranked(&result.maps, 8, 3);
        assert!(report.within_constraints, "{report:?}");
        assert!(report.num_maps >= 1);
        assert!(report.max_regions >= 2);
        assert!(report.mean_regions >= 2.0);
        assert!(report.mean_entropy > 0.0);
    }

    #[test]
    fn readability_report_flags_violations() {
        // An artificially huge map violates the region constraint.
        let ds = MixtureGenerator::with_shape(500, 2, 1, 0, 3).generate();
        let table = Arc::new(ds.table);
        let config = AtlasConfig {
            max_regions_per_map: 64,
            merge: MergeStrategy::Product,
            cut: atlas_core::CutConfig {
                num_splits: 6,
                ..atlas_core::CutConfig::default()
            },
            ..AtlasConfig::default()
        };
        let atlas = Atlas::new(table, config).unwrap();
        let result = atlas.explore(&ConjunctiveQuery::all("mixture")).unwrap();
        let report = ReadabilityReport::compute_ranked(&result.maps, 2, 3);
        assert!(!report.within_constraints);
        // Empty input edge case.
        let empty = ReadabilityReport::compute(&[], 8, 3);
        assert_eq!(empty.num_maps, 0);
        assert!(empty.within_constraints);
    }

    #[test]
    fn map_quality_recovers_planted_clusters() {
        let ds = MixtureGenerator::with_shape(3000, 4, 2, 1, 17).generate();
        let truth = ds.labels.clone();
        let atlas = Atlas::new(Arc::new(ds.table), AtlasConfig::quality()).unwrap();
        let result = atlas.explore(&ConjunctiveQuery::all("mixture")).unwrap();
        let (_, quality) = MapQuality::best_of(&result.maps, &truth).unwrap();
        assert!(
            quality.ari > 0.6,
            "expected good cluster recovery, got {quality:?}"
        );
        assert!(quality.coverage > 0.99);
        assert!(quality.purity > 0.7);
        assert!(quality.nmi > 0.5);
    }

    #[test]
    fn map_quality_of_uninformative_map_is_low() {
        let ds = MixtureGenerator::with_shape(1500, 3, 2, 2, 29).generate();
        let truth = ds.labels.clone();
        // A map built only on a noise dimension cannot recover the clusters.
        let table = Arc::new(ds.table);
        let config = AtlasConfig {
            attributes: Some(vec!["noise_0".to_string()]),
            ..AtlasConfig::default()
        };
        let atlas = Atlas::new(table, config).unwrap();
        let result = atlas.explore(&ConjunctiveQuery::all("mixture")).unwrap();
        let (_, quality) = MapQuality::best_of(&result.maps, &truth).unwrap();
        assert!(
            quality.ari < 0.2,
            "noise map should not recover clusters: {quality:?}"
        );
    }

    #[test]
    fn best_of_empty_is_none() {
        assert!(MapQuality::best_of(&[], &[0, 1, 0]).is_none());
    }
}
