//! Plain-text and Markdown rendering of data maps.
//!
//! The renderings follow the style of the paper's figures: one block per
//! region, listing the region's predicates in `Attribute: set` form, plus the
//! cover so the user can see at a glance how the working set is distributed.

use atlas_core::{DataMap, MapResult, RankedMap};
use atlas_query::to_compact;
use std::fmt::Write as _;

/// Render one map as indented plain text.
pub fn render_map(map: &DataMap, working_set_size: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Map on [{}] — {} regions, entropy {:.3} bits",
        map.source_attributes.join(", "),
        map.num_regions(),
        map.entropy()
    );
    for (i, region) in map.regions.iter().enumerate() {
        let cover = region.cover(working_set_size);
        let _ = writeln!(
            out,
            "  region {i}: {} tuples ({:.1}% of the working set)",
            region.count(),
            cover * 100.0
        );
        for line in to_compact(&region.query).lines() {
            let _ = writeln!(out, "    {line}");
        }
    }
    out
}

/// Render a whole exploration result (all ranked maps) as plain text.
pub fn render_result(result: &MapResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} map(s) over a working set of {} tuples (generated in {:.1} ms)",
        result.num_maps(),
        result.working_set_size,
        result.timings.total_ms
    );
    for (rank, ranked) in result.maps.iter().enumerate() {
        let _ = writeln!(out, "#{rank} (score {:.3}):", ranked.score);
        out.push_str(&render_map(&ranked.map, result.working_set_size));
    }
    if !result.skipped_attributes.is_empty() {
        let _ = writeln!(
            out,
            "skipped attributes: {}",
            result.skipped_attributes.join(", ")
        );
    }
    out
}

/// Render a result as a Markdown table (one row per region of each map).
pub fn render_result_markdown(result: &MapResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| map | score | region | cover | query |");
    let _ = writeln!(out, "|-----|-------|--------|-------|-------|");
    for (rank, ranked) in result.maps.iter().enumerate() {
        for (i, region) in ranked.map.regions.iter().enumerate() {
            let query_text = to_compact(&region.query).replace('\n', "; ");
            let _ = writeln!(
                out,
                "| {rank} | {:.3} | {i} | {:.1}% | {} |",
                ranked.score,
                region.cover(result.working_set_size) * 100.0,
                query_text
            );
        }
    }
    out
}

/// Render only the top map of a result, as plain text (the quick look).
pub fn render_best(result: &MapResult) -> Option<String> {
    result
        .best()
        .map(|ranked: &RankedMap| render_map(&ranked.map, result.working_set_size))
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_core::{Atlas, AtlasConfig};
    use atlas_datagen::CensusGenerator;
    use atlas_query::ConjunctiveQuery;
    use std::sync::Arc;

    fn result() -> MapResult {
        let table = Arc::new(CensusGenerator::with_rows(1500, 9).generate());
        let atlas = Atlas::new(table, AtlasConfig::default()).unwrap();
        atlas.explore(&ConjunctiveQuery::all("census")).unwrap()
    }

    #[test]
    fn plain_text_rendering_mentions_regions_and_covers() {
        let r = result();
        let text = render_result(&r);
        assert!(text.contains("working set of 1500 tuples"));
        assert!(text.contains("region 0"));
        assert!(text.contains('%'));
        assert!(text.contains("Map on ["));
        // Every map of the result is rendered.
        for ranked in &r.maps {
            for attr in &ranked.map.source_attributes {
                assert!(text.contains(attr.as_str()));
            }
        }
    }

    #[test]
    fn markdown_rendering_has_one_row_per_region() {
        let r = result();
        let md = render_result_markdown(&r);
        let expected_rows: usize = r.maps.iter().map(|m| m.map.num_regions()).sum();
        let data_rows = md.lines().count() - 2; // header + separator
        assert_eq!(data_rows, expected_rows);
        assert!(md.starts_with("| map |"));
    }

    #[test]
    fn best_map_rendering() {
        let r = result();
        let best = render_best(&r).unwrap();
        assert!(best.contains("regions"));
        // Rendering a single map agrees with rendering through the result.
        assert!(render_result(&r).contains(best.lines().next().unwrap()));
    }
}
