//! # atlas-obs — span tracing and counters for the Atlas workspace
//!
//! A dependency-free observability core shared by every crate in the
//! workspace. Three primitives:
//!
//! * **Spans** — [`span`] returns a guard that measures a monotonic wall
//!   interval and, when tracing is enabled, records a [`SpanRecord`] (with
//!   `key=value` attributes) into a bounded, lock-sharded ring buffer on
//!   drop. Spans nest through a thread-local context; [`span_in`] carries a
//!   parent across threads (worker pools, hedge threads).
//! * **Events** — [`event`] records a zero-duration span under the current
//!   context. Free when tracing is disabled (one relaxed atomic load).
//! * **Counters** — [`counter`] interns a named, always-on `AtomicU64`
//!   (kernel dispatch tallies, cache hits); [`counters`] snapshots all of
//!   them in name order for `/metrics`.
//!
//! ## Determinism
//!
//! Trace and span ids come from one per-process atomic counter — never from
//! wall-clock time or an RNG — so enabling tracing cannot perturb any
//! bit-identity invariant, and the `atlas-lint` determinism rules hold.
//! Timestamps are microseconds on a monotonic clock relative to a per-process
//! epoch ([`Tracer::now_us`]); they appear only inside trace output, never in
//! query answers.
//!
//! ## Cost when disabled
//!
//! [`span`] still measures its interval (callers derive phase timings from
//! the guard, enabled or not — that is the pre-existing `Instant` cost, not
//! a new one) but allocates nothing, touches no lock, and records nothing.
//! [`event`] and trace-only attribute work are skipped entirely after a
//! single relaxed load of the `enabled` atomic.
//!
//! ## Knobs
//!
//! * `ATLAS_TRACE=1` — start the process with tracing enabled (read once, at
//!   first use; [`set_enabled`] flips it at runtime).
//! * `ATLAS_TRACE_RING=<spans>` — total ring capacity (default 16384),
//!   split evenly across the lock shards.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Number of independent ring shards (and their locks). Spans hash to a
/// shard by id, so concurrent recorders rarely contend.
const RING_SHARDS: usize = 8;

/// Default total ring capacity, in spans, across all shards.
const DEFAULT_RING_CAPACITY: usize = 16_384;

/// One finished span (or zero-duration event) as stored in the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The trace this span belongs to (a per-process counter value; every
    /// request/explore root allocates a fresh one).
    pub trace_id: u64,
    /// This span's id, unique within the process.
    pub span_id: u64,
    /// The parent span id, or 0 for a trace root.
    pub parent_id: u64,
    /// The span name (`phase.candidates`, `shard.call`, …).
    pub name: String,
    /// Start time in microseconds on the process-local monotonic clock.
    pub start_us: u64,
    /// Wall duration in microseconds (0 for point events).
    pub duration_us: u64,
    /// `key=value` attributes in attachment order.
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// The end time (`start_us + duration_us`) on the monotonic clock.
    pub fn end_us(&self) -> u64 {
        self.start_us.saturating_add(self.duration_us)
    }

    /// The value of the first attribute named `key`, if any.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// The `(trace, span)` coordinates of an open span, used to parent work that
/// runs on another thread ([`span_in`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// The trace id.
    pub trace_id: u64,
    /// The span id that children should point at.
    pub span_id: u64,
}

thread_local! {
    /// The stack of open spans on this thread (innermost last).
    static CURRENT: std::cell::RefCell<Vec<SpanContext>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// The innermost open span on this thread, if tracing has pushed one.
pub fn current() -> Option<SpanContext> {
    CURRENT.with(|stack| stack.borrow().last().copied())
}

fn push_current(ctx: SpanContext) {
    CURRENT.with(|stack| stack.borrow_mut().push(ctx));
}

fn pop_current(span_id: u64) {
    CURRENT.with(|stack| {
        let mut stack = stack.borrow_mut();
        // Guards drop LIFO in practice; the position search keeps a stray
        // out-of-order drop from corrupting unrelated entries.
        if let Some(pos) = stack.iter().rposition(|c| c.span_id == span_id) {
            stack.remove(pos);
        }
    });
}

fn lock_ignore_poison<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The process-wide tracer: the enabled flag, the id allocator, the
/// monotonic epoch, and the lock-sharded span ring.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    next_id: AtomicU64,
    epoch: Instant,
    shards: Vec<Mutex<VecDeque<SpanRecord>>>,
    shard_capacity: usize,
}

impl Tracer {
    fn with_capacity(enabled: bool, capacity: usize) -> Tracer {
        let shard_capacity = capacity.div_ceil(RING_SHARDS).max(1);
        Tracer {
            enabled: AtomicBool::new(enabled),
            next_id: AtomicU64::new(1),
            epoch: Instant::now(),
            shards: (0..RING_SHARDS)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            shard_capacity,
        }
    }

    /// Whether spans and events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off at runtime.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Allocate a fresh id (trace and span ids share one counter, so every
    /// id is unique within the process).
    pub fn alloc_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Microseconds since the process-local monotonic epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Record a pre-built span (remote-span ingestion, synthesized spans
    /// like queue-wait intervals). Ignored while disabled.
    pub fn record(&self, record: SpanRecord) {
        if !self.is_enabled() {
            return;
        }
        self.push(record);
    }

    fn push(&self, record: SpanRecord) {
        let shard = (record.span_id as usize) % RING_SHARDS;
        // lint: slice-index-ok (shard < RING_SHARDS == shards.len() by the modulo)
        let mut ring = lock_ignore_poison(&self.shards[shard]);
        if ring.len() >= self.shard_capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// `(recorded spans, total capacity)` of the ring right now.
    pub fn occupancy(&self) -> (usize, usize) {
        let spans = self
            .shards
            .iter()
            .map(|s| lock_ignore_poison(s).len())
            .sum();
        (spans, self.shard_capacity * RING_SHARDS)
    }

    /// Every span currently in the ring, sorted by `(trace_id, start_us,
    /// span_id)` — a deterministic order for any fixed set of records.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut all: Vec<SpanRecord> = self
            .shards
            .iter()
            .flat_map(|s| lock_ignore_poison(s).iter().cloned().collect::<Vec<_>>())
            .collect();
        all.sort_by_key(|r| (r.trace_id, r.start_us, r.span_id));
        all
    }

    /// The spans of one trace, in the [`Tracer::snapshot`] order.
    pub fn trace(&self, trace_id: u64) -> Vec<SpanRecord> {
        let mut spans: Vec<SpanRecord> = self
            .shards
            .iter()
            .flat_map(|s| {
                lock_ignore_poison(s)
                    .iter()
                    .filter(|r| r.trace_id == trace_id)
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        spans.sort_by_key(|r| (r.start_us, r.span_id));
        spans
    }

    /// Drop every recorded span (tests, trace-smoke isolation).
    pub fn clear(&self) {
        for shard in &self.shards {
            lock_ignore_poison(shard).clear();
        }
    }

    fn begin(
        &self,
        name: &'static str,
        trace_id: u64,
        parent_id: u64,
        start: Instant,
    ) -> SpanGuard {
        let span_id = self.alloc_id();
        push_current(SpanContext { trace_id, span_id });
        SpanGuard {
            start,
            active: Some(ActiveSpan {
                trace_id,
                span_id,
                parent_id,
                name,
                start_us: self.now_us(),
                attrs: Vec::new(),
            }),
        }
    }

    /// Open a span as a child of this thread's current span (a fresh trace
    /// root when there is none). Always measures; records only when enabled.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        let start = Instant::now();
        if !self.is_enabled() {
            return SpanGuard {
                start,
                active: None,
            };
        }
        let (trace_id, parent_id) = match current() {
            Some(ctx) => (ctx.trace_id, ctx.span_id),
            None => (self.alloc_id(), 0),
        };
        self.begin(name, trace_id, parent_id, start)
    }

    /// Open a root span of a **new** trace regardless of the thread context
    /// (request roots, shard-local request traces).
    pub fn span_root(&self, name: &'static str) -> SpanGuard {
        let start = Instant::now();
        if !self.is_enabled() {
            return SpanGuard {
                start,
                active: None,
            };
        }
        let trace_id = self.alloc_id();
        self.begin(name, trace_id, 0, start)
    }

    /// Open a span under an explicit parent context — the cross-thread form
    /// (capture [`current`] before handing work to a pool or hedge thread).
    /// `None` behaves like [`Tracer::span`].
    pub fn span_in(&self, parent: Option<SpanContext>, name: &'static str) -> SpanGuard {
        let start = Instant::now();
        if !self.is_enabled() {
            return SpanGuard {
                start,
                active: None,
            };
        }
        let (trace_id, parent_id) = match parent.or_else(current) {
            Some(ctx) => (ctx.trace_id, ctx.span_id),
            None => (self.alloc_id(), 0),
        };
        self.begin(name, trace_id, parent_id, start)
    }
}

/// The process tracer (initialised on first use from `ATLAS_TRACE` and
/// `ATLAS_TRACE_RING`).
pub fn tracer() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(|| {
        let capacity = std::env::var("ATLAS_TRACE_RING")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_RING_CAPACITY);
        let enabled = matches!(std::env::var("ATLAS_TRACE"), Ok(v) if !v.is_empty() && v != "0");
        Tracer::with_capacity(enabled, capacity)
    })
}

/// Whether tracing is currently recording (one relaxed atomic load).
pub fn enabled() -> bool {
    tracer().is_enabled()
}

/// Turn recording on or off at runtime (tests, the trace-smoke harness,
/// servers honouring an admin toggle).
pub fn set_enabled(on: bool) {
    tracer().set_enabled(on);
}

/// Open a span as a child of this thread's current span. See
/// [`Tracer::span`].
pub fn span(name: &'static str) -> SpanGuard {
    tracer().span(name)
}

/// Open a root span of a new trace. See [`Tracer::span_root`].
pub fn span_root(name: &'static str) -> SpanGuard {
    tracer().span_root(name)
}

/// Open a span under an explicit parent context. See [`Tracer::span_in`].
pub fn span_in(parent: Option<SpanContext>, name: &'static str) -> SpanGuard {
    tracer().span_in(parent, name)
}

/// Keeps `ctx` installed as this thread's current context until dropped.
/// See [`with_context`].
#[derive(Debug)]
pub struct ContextGuard {
    span_id: Option<u64>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if let Some(span_id) = self.span_id.take() {
            pop_current(span_id);
        }
    }
}

/// Install `ctx` as the current context on this thread for the guard's
/// lifetime **without** opening a new span — for pool workers whose events
/// should attribute to a span owned by the dispatching thread, when a full
/// child span per work item would be noise. No-op when `ctx` is `None` or
/// tracing is disabled.
pub fn with_context(ctx: Option<SpanContext>) -> ContextGuard {
    match ctx {
        Some(ctx) if enabled() => {
            push_current(ctx);
            ContextGuard {
                span_id: Some(ctx.span_id),
            }
        }
        _ => ContextGuard { span_id: None },
    }
}

/// Record a zero-duration event span under the current thread context (or
/// unparented, trace id 0, when none is open). Free when disabled.
pub fn event(name: &'static str, attrs: &[(&str, &str)]) {
    let t = tracer();
    if !t.is_enabled() {
        return;
    }
    let (trace_id, parent_id) = match current() {
        Some(ctx) => (ctx.trace_id, ctx.span_id),
        None => (0, 0),
    };
    t.push(SpanRecord {
        trace_id,
        span_id: t.alloc_id(),
        parent_id,
        name: name.to_string(),
        start_us: t.now_us(),
        duration_us: 0,
        attrs: attrs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
    });
}

/// An open span. Dropping it records the measured interval (when tracing was
/// enabled at creation). Create and drop on the same thread.
#[derive(Debug)]
pub struct SpanGuard {
    start: Instant,
    active: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    name: &'static str,
    start_us: u64,
    attrs: Vec<(String, String)>,
}

impl SpanGuard {
    /// Attach a `key=value` attribute (no-op when the span is not recording).
    pub fn attr(&mut self, key: &str, value: impl std::fmt::Display) {
        if let Some(active) = &mut self.active {
            active.attrs.push((key.to_string(), value.to_string()));
        }
    }

    /// The `(trace, span)` coordinates of this span, when recording.
    pub fn context(&self) -> Option<SpanContext> {
        self.active.as_ref().map(|a| SpanContext {
            trace_id: a.trace_id,
            span_id: a.span_id,
        })
    }

    /// Milliseconds elapsed since the span opened (monotonic; measured
    /// whether or not the span records).
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1000.0
    }

    /// Close the span now and return its elapsed milliseconds — the hook
    /// phase timings are derived from.
    pub fn finish_ms(self) -> f64 {
        let ms = self.elapsed_ms();
        drop(self);
        ms
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            pop_current(active.span_id);
            let t = tracer();
            t.push(SpanRecord {
                trace_id: active.trace_id,
                span_id: active.span_id,
                parent_id: active.parent_id,
                name: active.name.to_string(),
                start_us: active.start_us,
                duration_us: self.start.elapsed().as_micros() as u64,
                attrs: active.attrs,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// A named, always-on monotonic counter (interned for the process lifetime).
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// The counter's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add `delta` to the counter.
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

fn counter_registry() -> &'static Mutex<Vec<&'static Counter>> {
    static REGISTRY: OnceLock<Mutex<Vec<&'static Counter>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Intern (or look up) the counter named `name`. Hot call sites should cache
/// the returned reference in a `OnceLock` instead of re-interning per call.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut registry = lock_ignore_poison(counter_registry());
    if let Some(existing) = registry.iter().find(|c| c.name == name) {
        return existing;
    }
    let created: &'static Counter = Box::leak(Box::new(Counter {
        name,
        value: AtomicU64::new(0),
    }));
    registry.push(created);
    created
}

/// A snapshot of every interned counter, sorted by name (a deterministic
/// exposition order for `/metrics`).
pub fn counters() -> Vec<(&'static str, u64)> {
    let registry = lock_ignore_poison(counter_registry());
    let mut out: Vec<(&'static str, u64)> = registry.iter().map(|c| (c.name, c.get())).collect();
    out.sort_by_key(|&(name, _)| name);
    out
}

// ---------------------------------------------------------------------------
// Tree assembly
// ---------------------------------------------------------------------------

/// One node of an assembled span tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// The span itself.
    pub record: SpanRecord,
    /// Child spans, sorted by `(start_us, span_id)`.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Depth-first walk over this node and its descendants.
    pub fn walk(&self, f: &mut impl FnMut(&SpanNode, usize)) {
        fn inner(node: &SpanNode, depth: usize, f: &mut impl FnMut(&SpanNode, usize)) {
            f(node, depth);
            for child in &node.children {
                inner(child, depth + 1, f);
            }
        }
        inner(self, 0, f);
    }

    /// Number of spans in this subtree (this node included).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(SpanNode::size).sum::<usize>()
    }

    /// The names of every span in this subtree, depth-first.
    pub fn names(&self) -> Vec<String> {
        let mut names = Vec::with_capacity(self.size());
        self.walk(&mut |node, _| names.push(node.record.name.clone()));
        names
    }
}

/// Assemble flat records into trees: spans whose parent is absent from the
/// set (or 0) become roots. Roots sort by `(trace_id, start_us, span_id)`;
/// children by `(start_us, span_id)` — deterministic for a fixed record set.
pub fn assemble_forest(records: Vec<SpanRecord>) -> Vec<SpanNode> {
    let ids: std::collections::BTreeSet<u64> = records.iter().map(|r| r.span_id).collect();
    let mut children_of: BTreeMap<u64, Vec<SpanRecord>> = BTreeMap::new();
    let mut roots: Vec<SpanRecord> = Vec::new();
    for record in records {
        if record.parent_id != 0 && ids.contains(&record.parent_id) {
            children_of
                .entry(record.parent_id)
                .or_default()
                .push(record);
        } else {
            roots.push(record);
        }
    }
    fn build(record: SpanRecord, children_of: &mut BTreeMap<u64, Vec<SpanRecord>>) -> SpanNode {
        let mut kids = children_of.remove(&record.span_id).unwrap_or_default();
        kids.sort_by_key(|r| (r.start_us, r.span_id));
        SpanNode {
            record,
            children: kids
                .into_iter()
                .map(|kid| build(kid, children_of))
                .collect(),
        }
    }
    roots.sort_by_key(|r| (r.trace_id, r.start_us, r.span_id));
    roots
        .into_iter()
        .map(|root| build(root, &mut children_of))
        .collect()
}

// ---------------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------------

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Render records as Chrome trace-event-format JSON (the
/// `{"traceEvents": [...]}` object form), loadable in Perfetto and
/// `chrome://tracing`. Every span becomes a complete (`"ph": "X"`) event:
/// `pid` is the trace id, `tid` lanes separate the top-level subtrees of
/// each trace so parallel shard calls render side by side, and attributes
/// ride in `args`. All numbers are integers (microseconds), so the output
/// is byte-stable for a fixed record set.
pub fn chrome_trace_json(records: &[SpanRecord]) -> String {
    let forest = assemble_forest(records.to_vec());
    let mut events: Vec<String> = Vec::new();
    for tree in &forest {
        // The root occupies lane 0; each of its immediate subtrees gets its
        // own lane so concurrent siblings don't fight over one track.
        emit_chrome(tree, 0, &mut events);
        for (lane, child) in tree.children.iter().enumerate() {
            emit_chrome_subtree(child, (lane + 1) as u64, &mut events);
        }
    }
    let mut out = String::from("{\"traceEvents\": [");
    out.push_str(&events.join(", "));
    out.push_str("], \"displayTimeUnit\": \"ms\"}");
    out
}

fn emit_chrome(node: &SpanNode, tid: u64, events: &mut Vec<String>) {
    let r = &node.record;
    let mut ev = String::from("{\"name\": \"");
    escape_json(&r.name, &mut ev);
    ev.push_str(&format!(
        "\", \"cat\": \"atlas\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": {}, \"tid\": {}",
        r.start_us, r.duration_us, r.trace_id, tid
    ));
    ev.push_str(", \"args\": {");
    let mut first = true;
    for (key, value) in &r.attrs {
        if !first {
            ev.push_str(", ");
        }
        first = false;
        ev.push('"');
        escape_json(key, &mut ev);
        ev.push_str("\": \"");
        escape_json(value, &mut ev);
        ev.push('"');
    }
    ev.push_str(&format!(
        "{}\"span_id\": \"{}\", \"parent_id\": \"{}\"}}}}",
        if first { "" } else { ", " },
        r.span_id,
        r.parent_id
    ));
    events.push(ev);
}

fn emit_chrome_subtree(node: &SpanNode, tid: u64, events: &mut Vec<String>) {
    emit_chrome(node, tid, events);
    for child in &node.children {
        emit_chrome_subtree(child, tid, events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests flip the process-wide enabled flag; serialise them.
    fn exclusive() -> MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        lock_ignore_poison(GATE.get_or_init(|| Mutex::new(())))
    }

    #[test]
    fn disabled_spans_measure_but_record_nothing() {
        let _gate = exclusive();
        set_enabled(false);
        tracer().clear();
        let mut guard = span("quiet");
        guard.attr("k", "v");
        assert!(guard.context().is_none());
        let ms = guard.finish_ms();
        assert!(ms >= 0.0);
        assert_eq!(tracer().occupancy().0, 0);
        assert!(current().is_none());
    }

    #[test]
    fn enabled_spans_nest_and_link_parents() {
        let _gate = exclusive();
        set_enabled(true);
        tracer().clear();
        let trace_id;
        {
            let root = span_root("root");
            trace_id = root.context().unwrap().trace_id;
            {
                let mut child = span("child");
                child.attr("k", 7);
                event("tick", &[("path", "word")]);
            }
            assert_eq!(current().unwrap().span_id, root.context().unwrap().span_id);
        }
        set_enabled(false);
        let spans = tracer().trace(trace_id);
        assert_eq!(spans.len(), 3);
        let forest = assemble_forest(spans);
        assert_eq!(forest.len(), 1);
        let root = &forest[0];
        assert_eq!(root.record.name, "root");
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.children[0].record.name, "child");
        assert_eq!(root.children[0].record.attr("k"), Some("7"));
        assert_eq!(root.children[0].children[0].record.name, "tick");
        assert_eq!(root.children[0].children[0].record.duration_us, 0);
        assert!(current().is_none());
    }

    #[test]
    fn span_in_carries_a_parent_across_threads() {
        let _gate = exclusive();
        set_enabled(true);
        tracer().clear();
        let trace_id;
        {
            let root = span_root("root");
            let ctx = root.context();
            trace_id = ctx.unwrap().trace_id;
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    let _worker = span_in(ctx, "worker");
                });
            });
        }
        set_enabled(false);
        let forest = assemble_forest(tracer().trace(trace_id));
        assert_eq!(forest.len(), 1);
        assert_eq!(forest[0].children.len(), 1);
        assert_eq!(forest[0].children[0].record.name, "worker");
    }

    #[test]
    fn the_ring_is_bounded_and_evicts_oldest_first() {
        let _gate = exclusive();
        let t = Tracer::with_capacity(true, 16);
        for i in 0..100u64 {
            t.push(SpanRecord {
                trace_id: 1,
                span_id: i + 1,
                parent_id: 0,
                name: "s".to_string(),
                start_us: i,
                duration_us: 1,
                attrs: Vec::new(),
            });
        }
        let (len, capacity) = t.occupancy();
        assert!(len <= capacity);
        assert!(capacity >= 16);
        // Survivors are the newest spans of each shard.
        let snapshot = t.snapshot();
        assert!(snapshot.iter().all(|r| r.span_id > 100 - capacity as u64));
    }

    #[test]
    fn ids_are_monotonic_and_never_wall_clock() {
        let _gate = exclusive();
        let a = tracer().alloc_id();
        let b = tracer().alloc_id();
        assert!(b > a);
    }

    #[test]
    fn counters_intern_and_snapshot_in_name_order() {
        let _gate = exclusive();
        let c1 = counter("test.zeta");
        let c2 = counter("test.alpha");
        let again = counter("test.zeta");
        assert!(std::ptr::eq(c1, again));
        c1.add(2);
        c2.add(5);
        let snapshot = counters();
        let pos = |name: &str| snapshot.iter().position(|&(n, _)| n == name).unwrap();
        assert!(pos("test.alpha") < pos("test.zeta"));
        assert!(snapshot[pos("test.zeta")].1 >= 2);
        assert!(snapshot[pos("test.alpha")].1 >= 5);
    }

    #[test]
    fn orphan_spans_become_forest_roots() {
        let record = |span_id, parent_id| SpanRecord {
            trace_id: 9,
            span_id,
            parent_id,
            name: format!("s{span_id}"),
            start_us: span_id,
            duration_us: 1,
            attrs: Vec::new(),
        };
        let forest = assemble_forest(vec![record(2, 1), record(3, 2), record(5, 99)]);
        assert_eq!(forest.len(), 2, "orphans root their own trees");
        assert_eq!(forest[0].record.span_id, 2);
        assert_eq!(forest[0].children[0].record.span_id, 3);
        assert_eq!(forest[1].record.span_id, 5);
    }

    #[test]
    fn chrome_export_is_wellformed_and_integer_timed() {
        let record = |span_id, parent_id, start| SpanRecord {
            trace_id: 4,
            span_id,
            parent_id,
            name: format!("span \"{span_id}\""),
            start_us: start,
            duration_us: 10,
            attrs: vec![("key".to_string(), "va\"lue".to_string())],
        };
        let mut bare = record(7, 1, 8);
        bare.attrs.clear();
        let json = chrome_trace_json(&[record(1, 0, 0), record(2, 1, 2), record(3, 1, 5), bare]);
        assert!(json.starts_with("{\"traceEvents\": ["));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\\\"2\\\""), "quotes are escaped");
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 4);
        assert!(
            !json.contains("{,"),
            "attr-less spans must still emit valid args: {json}"
        );
        // Sibling subtrees get distinct lanes.
        assert!(json.contains("\"tid\": 1"));
        assert!(json.contains("\"tid\": 2"));
        assert!(!json.contains('.'), "all numbers are integers: {json}");
    }
}
