//! Gaussian-mixture tables with planted subspace clusters.
//!
//! Experiment E4 (product vs composition merging, Figure 5 of the paper) and
//! E7 (anytime quality) need datasets where the "right answer" — which rows
//! belong together, and in which attributes the structure lives — is known
//! exactly. This generator plants `k` Gaussian clusters in a chosen subset of
//! *signal* dimensions and fills the remaining *noise* dimensions with
//! structure-free uniform values.

use atlas_columnar::{DataType, Field, Schema, Table, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the mixture generator.
#[derive(Debug, Clone)]
pub struct MixtureConfig {
    /// Number of rows.
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
    /// Table name.
    pub table_name: String,
    /// Number of planted clusters.
    pub num_clusters: usize,
    /// Number of signal dimensions (columns `sig_0 … sig_{n-1}`) in which the
    /// clusters are separated.
    pub signal_dims: usize,
    /// Number of noise dimensions (columns `noise_0 …`) with no structure.
    pub noise_dims: usize,
    /// Distance between neighbouring cluster centres, in units of the
    /// within-cluster standard deviation. 6.0 gives well-separated clusters.
    pub separation: f64,
    /// Mixing weights; if empty, clusters are equally likely.
    pub weights: Vec<f64>,
}

impl Default for MixtureConfig {
    fn default() -> Self {
        MixtureConfig {
            rows: 5_000,
            seed: 7,
            table_name: "mixture".to_string(),
            num_clusters: 4,
            signal_dims: 2,
            noise_dims: 2,
            separation: 6.0,
            weights: Vec::new(),
        }
    }
}

/// A generated mixture dataset: the table plus the ground-truth cluster label
/// of every row.
#[derive(Debug, Clone)]
pub struct MixtureDataset {
    /// The generated table.
    pub table: Table,
    /// Ground-truth cluster assignment, one label per row.
    pub labels: Vec<u32>,
    /// The signal column names.
    pub signal_columns: Vec<String>,
    /// The noise column names.
    pub noise_columns: Vec<String>,
}

/// The Gaussian-mixture generator.
#[derive(Debug, Clone)]
pub struct MixtureGenerator {
    config: MixtureConfig,
}

impl MixtureGenerator {
    /// Create a generator with the given configuration.
    pub fn new(config: MixtureConfig) -> Self {
        MixtureGenerator { config }
    }

    /// Shorthand: `rows` rows, `k` clusters separated in `signal_dims`
    /// dimensions plus `noise_dims` noise dimensions.
    pub fn with_shape(
        rows: usize,
        k: usize,
        signal_dims: usize,
        noise_dims: usize,
        seed: u64,
    ) -> Self {
        MixtureGenerator {
            config: MixtureConfig {
                rows,
                seed,
                num_clusters: k,
                signal_dims,
                noise_dims,
                ..MixtureConfig::default()
            },
        }
    }

    /// The schema implied by the configuration.
    pub fn schema(&self) -> Schema {
        let mut fields = Vec::new();
        for i in 0..self.config.signal_dims {
            fields.push(Field::new(format!("sig_{i}"), DataType::Float));
        }
        for i in 0..self.config.noise_dims {
            fields.push(Field::new(format!("noise_{i}"), DataType::Float));
        }
        Schema::new(fields).expect("mixture schema is valid")
    }

    /// Generate the dataset.
    pub fn generate(&self) -> MixtureDataset {
        let cfg = &self.config;
        assert!(cfg.num_clusters >= 1, "need at least one cluster");
        assert!(cfg.signal_dims >= 1, "need at least one signal dimension");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let schema = self.schema();
        let mut builder = TableBuilder::new(cfg.table_name.clone(), schema);

        // Cluster centres use a *nested* placement (the Figure 5 situation of
        // the paper): every signal dimension separates the same two top-level
        // groups at a coarse scale (so the binary candidate cuts of different
        // attributes are statistically dependent and Atlas clusters them
        // together), while the fine-scale offsets within each group differ per
        // dimension (so only local re-cutting — the composition operator — can
        // tell the clusters of a group apart).
        let k = cfg.num_clusters;
        let centres: Vec<Vec<f64>> = (0..k)
            .map(|c| {
                let top = usize::from(c >= k.div_ceil(2));
                (0..cfg.signal_dims)
                    .map(|d| cfg.separation * ((k * top) as f64 + ((c + d) % k) as f64))
                    .collect()
            })
            .collect();

        let weights: Vec<f64> = if cfg.weights.len() == cfg.num_clusters {
            cfg.weights.clone()
        } else {
            vec![1.0; cfg.num_clusters]
        };
        let total_weight: f64 = weights.iter().sum();

        let mut labels = Vec::with_capacity(cfg.rows);
        for _ in 0..cfg.rows {
            // Pick a cluster by weight.
            let mut draw = rng.gen_range(0.0..total_weight);
            let mut cluster = 0usize;
            for (i, w) in weights.iter().enumerate() {
                if draw < *w {
                    cluster = i;
                    break;
                }
                draw -= w;
            }
            labels.push(cluster as u32);

            let mut row = Vec::with_capacity(cfg.signal_dims + cfg.noise_dims);
            for centre in centres[cluster].iter().take(cfg.signal_dims) {
                row.push(Value::Float(centre + gaussian(&mut rng)));
            }
            let noise_span = cfg.separation * cfg.num_clusters as f64;
            for _ in 0..cfg.noise_dims {
                row.push(Value::Float(rng.gen_range(0.0..noise_span.max(1.0))));
            }
            builder.push_row(&row).expect("row matches schema");
        }

        MixtureDataset {
            table: builder.build().expect("consistent columns"),
            labels,
            signal_columns: (0..cfg.signal_dims).map(|i| format!("sig_{i}")).collect(),
            noise_columns: (0..cfg.noise_dims).map(|i| format!("noise_{i}")).collect(),
        }
    }
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_table_and_labels_of_matching_size() {
        let ds = MixtureGenerator::with_shape(1000, 3, 2, 1, 5).generate();
        assert_eq!(ds.table.num_rows(), 1000);
        assert_eq!(ds.labels.len(), 1000);
        assert_eq!(ds.table.num_columns(), 3);
        assert_eq!(ds.signal_columns, vec!["sig_0", "sig_1"]);
        assert_eq!(ds.noise_columns, vec!["noise_0"]);
        assert!(ds.labels.iter().all(|&l| l < 3));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = MixtureGenerator::with_shape(300, 4, 2, 0, 9).generate();
        let b = MixtureGenerator::with_shape(300, 4, 2, 0, 9).generate();
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.table.row(10).unwrap(), b.table.row(10).unwrap());
    }

    #[test]
    fn all_clusters_are_populated() {
        let ds = MixtureGenerator::with_shape(2000, 5, 2, 0, 3).generate();
        let mut counts = [0usize; 5];
        for &l in &ds.labels {
            counts[l as usize] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!(*c > 200, "cluster {i} has only {c} members");
        }
    }

    #[test]
    fn clusters_are_separated_in_signal_dimensions() {
        let ds = MixtureGenerator::with_shape(2000, 2, 1, 0, 12).generate();
        let all = ds.table.full_selection();
        let values = ds.table.column("sig_0").unwrap().numeric_values_where(&all);
        // With separation 6 sigma, the two clusters produce a clearly bimodal
        // distribution: almost nothing should lie in the middle band.
        let mid_band =
            values.iter().filter(|&&v| (v - 3.0).abs() < 1.0).count() as f64 / values.len() as f64;
        assert!(mid_band < 0.1, "mid band fraction {mid_band}");
    }

    #[test]
    fn weights_skew_cluster_sizes() {
        let cfg = MixtureConfig {
            rows: 3000,
            seed: 4,
            num_clusters: 2,
            signal_dims: 1,
            noise_dims: 0,
            weights: vec![0.9, 0.1],
            ..MixtureConfig::default()
        };
        let ds = MixtureGenerator::new(cfg).generate();
        let big = ds.labels.iter().filter(|&&l| l == 0).count();
        assert!(big > 2400, "expected ~90% in cluster 0, got {big}/3000");
    }

    #[test]
    fn noise_dims_are_uniform_not_clustered() {
        let ds = MixtureGenerator::with_shape(3000, 3, 1, 1, 8).generate();
        let all = ds.table.full_selection();
        let noise = ds
            .table
            .column("noise_0")
            .unwrap()
            .numeric_values_where(&all);
        // Uniform data: the variance should be close to span^2/12.
        let span = 6.0 * 3.0;
        let mean = noise.iter().sum::<f64>() / noise.len() as f64;
        let var = noise.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / noise.len() as f64;
        let expected = span * span / 12.0;
        assert!(
            (var / expected - 1.0).abs() < 0.2,
            "var {var} vs expected {expected}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_panics() {
        let cfg = MixtureConfig {
            num_clusters: 0,
            ..MixtureConfig::default()
        };
        MixtureGenerator::new(cfg).generate();
    }
}
