//! Adult-census-like survey generator with planted attribute dependencies.
//!
//! The generated table reproduces the running example of the paper (Figures 1
//! and 2): a survey with demographic attributes. Three dependency groups are
//! planted so that the map-clustering step has unambiguous ground truth:
//!
//! | group | attributes | mechanism |
//! |-------|------------|-----------|
//! | G1    | `education`, `salary` | salary is drawn from a distribution conditioned on education |
//! | G2    | `age`, `hours_per_week` | working hours collapse after retirement age |
//! | G3    | `sex`, `height_cm` | height is drawn from a sex-specific normal |
//! | —     | `eye_color` | independent of everything (the paper's distractor) |

use atlas_columnar::{DataType, Field, Schema, Table, TableBuilder, Value};
use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the census generator.
#[derive(Debug, Clone)]
pub struct CensusConfig {
    /// Number of rows to generate.
    pub rows: usize,
    /// RNG seed (same seed ⇒ same table).
    pub seed: u64,
    /// Name of the generated table.
    pub table_name: String,
    /// Strength of the planted dependencies in `[0, 1]`: 1.0 = deterministic
    /// coupling, 0.0 = fully independent attributes.
    pub dependency_strength: f64,
    /// Fraction of values replaced by NULL (uniformly across nullable
    /// columns), to exercise NULL handling.
    pub null_fraction: f64,
    /// Rows per storage segment of the generated table
    /// (default: [`atlas_columnar::default_segment_rows`]). Generation is
    /// segment-sized either way — rows stream through the sealing
    /// [`TableBuilder`] — but the knob lets benchmarks and tests control the
    /// layout (e.g. to carve off a tail segment for `Atlas::append`).
    pub segment_rows: Option<usize>,
}

impl Default for CensusConfig {
    fn default() -> Self {
        CensusConfig {
            rows: 10_000,
            seed: 42,
            table_name: "census".to_string(),
            dependency_strength: 0.85,
            null_fraction: 0.0,
            segment_rows: None,
        }
    }
}

/// The census data generator.
#[derive(Debug, Clone)]
pub struct CensusGenerator {
    config: CensusConfig,
}

/// Education levels, ordered from lowest to highest.
pub const EDUCATION_LEVELS: [&str; 4] = ["HighSchool", "BSc", "MSc", "PhD"];
/// Salary classes, mirroring the Adult census bucketing.
pub const SALARY_CLASSES: [&str; 2] = ["<50k", ">50k"];
/// Sexes used by the generator.
pub const SEXES: [&str; 2] = ["Male", "Female"];
/// Eye colours (the independent distractor attribute from the paper's intro).
pub const EYE_COLORS: [&str; 3] = ["Blue", "Green", "Brown"];

impl CensusGenerator {
    /// Create a generator with the given configuration.
    pub fn new(config: CensusConfig) -> Self {
        CensusGenerator { config }
    }

    /// Create a generator with default configuration except row count and seed.
    pub fn with_rows(rows: usize, seed: u64) -> Self {
        CensusGenerator {
            config: CensusConfig {
                rows,
                seed,
                ..CensusConfig::default()
            },
        }
    }

    /// The schema of the generated table.
    pub fn schema() -> Schema {
        Schema::new(vec![
            Field::new("age", DataType::Int),
            Field::new("sex", DataType::Str),
            Field::new("height_cm", DataType::Float),
            Field::new("education", DataType::Str),
            Field::new("salary", DataType::Str),
            Field::new("hours_per_week", DataType::Int),
            Field::new("eye_color", DataType::Str),
        ])
        .expect("static schema is valid")
    }

    /// The planted dependency groups (used as ground truth by experiment E3).
    pub fn dependency_groups() -> Vec<Vec<&'static str>> {
        vec![
            vec!["education", "salary"],
            vec!["age", "hours_per_week"],
            vec!["sex", "height_cm"],
            vec!["eye_color"],
        ]
    }

    /// Generate the table.
    pub fn generate(&self) -> Table {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut builder = TableBuilder::new(cfg.table_name.clone(), Self::schema());
        if let Some(segment_rows) = cfg.segment_rows {
            builder = builder.with_segment_rows(segment_rows);
        }
        let strength = cfg.dependency_strength.clamp(0.0, 1.0);
        let normal = Normalish::new();

        for _ in 0..cfg.rows {
            // Age: mixture of working-age adults and retirees, 17..=90.
            let age: i64 = if rng.gen_bool(0.8) {
                rng.gen_range(17..=64)
            } else {
                rng.gen_range(65..=90)
            };

            // Sex, then height conditioned on sex (group G3).
            let sex = SEXES[rng.gen_range(0..SEXES.len())];
            let height_mean = if follows(&mut rng, strength) {
                if sex == "Male" {
                    178.0
                } else {
                    164.0
                }
            } else {
                171.0
            };
            let height = height_mean + 7.0 * normal.sample(&mut rng);

            // Education, then salary conditioned on education (group G1).
            let education = {
                let r: f64 = rng.gen();
                if r < 0.35 {
                    EDUCATION_LEVELS[0]
                } else if r < 0.70 {
                    EDUCATION_LEVELS[1]
                } else if r < 0.92 {
                    EDUCATION_LEVELS[2]
                } else {
                    EDUCATION_LEVELS[3]
                }
            };
            let p_high = if follows(&mut rng, strength) {
                match education {
                    "HighSchool" => 0.08,
                    "BSc" => 0.35,
                    "MSc" => 0.70,
                    _ => 0.88,
                }
            } else {
                0.4
            };
            let salary = if rng.gen_bool(p_high) {
                SALARY_CLASSES[1]
            } else {
                SALARY_CLASSES[0]
            };

            // Hours per week conditioned on age (group G2): a downward trend
            // with age plus a hard retirement cliff, so the dependency is
            // visible even to coarse two-way cuts.
            let hours: i64 = if follows(&mut rng, strength) {
                if age >= 65 {
                    rng.gen_range(0..=12)
                } else {
                    let base = 48.0 - 0.5 * (age - 17) as f64 + 5.0 * normal.sample(&mut rng);
                    base.clamp(5.0, 80.0).round() as i64
                }
            } else {
                rng.gen_range(0..=80)
            };

            // Eye colour: independent of everything.
            let eye = EYE_COLORS[rng.gen_range(0..EYE_COLORS.len())];

            let maybe_null = |rng: &mut StdRng, v: Value| -> Value {
                if cfg.null_fraction > 0.0 && rng.gen_bool(cfg.null_fraction.clamp(0.0, 1.0)) {
                    Value::Null
                } else {
                    v
                }
            };

            let height_value = maybe_null(&mut rng, Value::Float((height * 10.0).round() / 10.0));
            let hours_value = maybe_null(&mut rng, Value::Int(hours));
            builder
                .push_row(&[
                    Value::Int(age),
                    Value::Str(sex.to_string()),
                    height_value,
                    Value::Str(education.to_string()),
                    Value::Str(salary.to_string()),
                    hours_value,
                    Value::Str(eye.to_string()),
                ])
                .expect("generated row matches static schema");
        }
        builder.build().expect("generated columns are consistent")
    }
}

/// Bernoulli draw: does this row follow the planted dependency?
fn follows(rng: &mut StdRng, strength: f64) -> bool {
    rng.gen_bool(strength)
}

/// A small standard-normal sampler (Box–Muller) so we do not need an extra
/// statistics dependency.
#[derive(Debug, Clone, Copy)]
struct Normalish;

impl Normalish {
    fn new() -> Self {
        Normalish
    }
}

impl Distribution<f64> for Normalish {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_columnar::Bitmap;

    #[test]
    fn generates_requested_rows_with_schema() {
        let t = CensusGenerator::with_rows(500, 7).generate();
        assert_eq!(t.num_rows(), 500);
        assert_eq!(t.num_columns(), 7);
        assert_eq!(t.name(), "census");
        assert!(t.schema().contains("education"));
    }

    #[test]
    fn is_deterministic_for_a_seed() {
        let a = CensusGenerator::with_rows(200, 99).generate();
        let b = CensusGenerator::with_rows(200, 99).generate();
        for row in [0usize, 50, 199] {
            assert_eq!(a.row(row).unwrap(), b.row(row).unwrap());
        }
        let c = CensusGenerator::with_rows(200, 100).generate();
        let mut identical = true;
        for row in 0..200 {
            if a.row(row).unwrap() != c.row(row).unwrap() {
                identical = false;
                break;
            }
        }
        assert!(!identical, "different seeds should give different data");
    }

    #[test]
    fn values_are_in_expected_domains() {
        let t = CensusGenerator::with_rows(1000, 3).generate();
        let all = t.full_selection();
        let (age_min, age_max) = t.column("age").unwrap().numeric_min_max(&all).unwrap();
        assert!(age_min >= 17.0 && age_max <= 90.0);
        let (h_min, h_max) = t
            .column("hours_per_week")
            .unwrap()
            .numeric_min_max(&all)
            .unwrap();
        assert!(h_min >= 0.0 && h_max <= 80.0);
        let edu = t.column("education").unwrap().categories_by_frequency(&all);
        for (value, _) in edu {
            assert!(EDUCATION_LEVELS.contains(&value.as_str()));
        }
    }

    #[test]
    fn planted_dependency_education_salary_is_visible() {
        let t = CensusGenerator::with_rows(4000, 11).generate();
        let all = t.full_selection();
        // P(>50k | PhD or MSc) should far exceed P(>50k | HighSchool).
        let edu = t.column("education").unwrap();
        let sal = t.column("salary").unwrap();
        let high_edu = edu.select_in(&all, &["MSc".to_string(), "PhD".to_string()]);
        let low_edu = edu.select_in(&all, &["HighSchool".to_string()]);
        let rich = sal.select_in(&all, &[">50k".to_string()]);
        let p_rich_high = rich.intersection_count(&high_edu) as f64 / high_edu.count() as f64;
        let p_rich_low = rich.intersection_count(&low_edu) as f64 / low_edu.count() as f64;
        assert!(
            p_rich_high > p_rich_low + 0.3,
            "p_rich_high={p_rich_high} p_rich_low={p_rich_low}"
        );
    }

    #[test]
    fn planted_dependency_age_hours_is_visible() {
        let t = CensusGenerator::with_rows(4000, 13).generate();
        let all = t.full_selection();
        let age = t.column("age").unwrap();
        let hours = t.column("hours_per_week").unwrap();
        let retired = age.select_range(&all, 65.0, 200.0);
        let working = age.select_range(&all, 17.0, 64.0);
        let hours_retired: f64 = mean(&hours.numeric_values_where(&retired));
        let hours_working: f64 = mean(&hours.numeric_values_where(&working));
        assert!(hours_working > hours_retired + 10.0);
    }

    #[test]
    fn eye_color_is_independent_of_salary() {
        let t = CensusGenerator::with_rows(6000, 17).generate();
        let all = t.full_selection();
        let eye = t.column("eye_color").unwrap();
        let sal = t.column("salary").unwrap();
        let rich = sal.select_in(&all, &[">50k".to_string()]);
        let mut rates = Vec::new();
        for color in EYE_COLORS {
            let with_color = eye.select_in(&all, &[color.to_string()]);
            let rate = rich.intersection_count(&with_color) as f64 / with_color.count() as f64;
            rates.push(rate);
        }
        let spread = rates.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - rates.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            spread < 0.08,
            "salary rate spread across eye colors: {spread}"
        );
    }

    #[test]
    fn zero_strength_removes_dependencies() {
        let cfg = CensusConfig {
            rows: 5000,
            seed: 5,
            dependency_strength: 0.0,
            ..CensusConfig::default()
        };
        let t = CensusGenerator::new(cfg).generate();
        let all = t.full_selection();
        let edu = t.column("education").unwrap();
        let sal = t.column("salary").unwrap();
        let high_edu = edu.select_in(&all, &["PhD".to_string(), "MSc".to_string()]);
        let low_edu = edu.select_in(&all, &["HighSchool".to_string()]);
        let rich = sal.select_in(&all, &[">50k".to_string()]);
        let p_rich_high = rich.intersection_count(&high_edu) as f64 / high_edu.count() as f64;
        let p_rich_low = rich.intersection_count(&low_edu) as f64 / low_edu.count() as f64;
        assert!((p_rich_high - p_rich_low).abs() < 0.08);
    }

    #[test]
    fn segment_rows_controls_the_layout_without_changing_the_data() {
        let cfg = CensusConfig {
            rows: 1000,
            seed: 4,
            segment_rows: Some(256),
            ..CensusConfig::default()
        };
        let chunked = CensusGenerator::new(cfg.clone()).generate();
        assert_eq!(chunked.num_segments(), 4, "256*3 + 232");
        let whole = CensusGenerator::new(CensusConfig {
            segment_rows: Some(usize::MAX),
            ..cfg
        })
        .generate();
        assert_eq!(whole.num_segments(), 1);
        for row in [0usize, 255, 256, 999] {
            assert_eq!(chunked.row(row).unwrap(), whole.row(row).unwrap());
        }
    }

    #[test]
    fn null_fraction_produces_nulls() {
        let cfg = CensusConfig {
            rows: 1000,
            seed: 21,
            null_fraction: 0.2,
            ..CensusConfig::default()
        };
        let t = CensusGenerator::new(cfg).generate();
        let nulls = t.column("hours_per_week").unwrap().null_count();
        assert!(nulls > 100 && nulls < 320, "null count {nulls}");
    }

    fn mean(values: &[f64]) -> f64 {
        if values.is_empty() {
            0.0
        } else {
            values.iter().sum::<f64>() / values.len() as f64
        }
    }

    #[test]
    fn dependency_groups_cover_schema_attributes() {
        let schema = CensusGenerator::schema();
        for group in CensusGenerator::dependency_groups() {
            for attr in group {
                assert!(
                    schema.contains(attr),
                    "group attribute {attr} not in schema"
                );
            }
        }
        let _ = Bitmap::new_empty(1); // silence unused import lint in some cfgs
    }
}
