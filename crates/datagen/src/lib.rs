//! # atlas-datagen
//!
//! Seeded synthetic dataset generators for the Atlas reproduction.
//!
//! The paper motivates Atlas with a census-like survey (its Figure 2 example)
//! and names SDSS and TPC data as targets (Section 5.2). Those datasets are
//! not redistributable here, so this crate generates schema-compatible
//! synthetic stand-ins with **known, planted structure**:
//!
//! * [`census`] — an Adult-census-like survey with planted attribute
//!   dependency groups (education↔salary, age↔hours-per-week, sex↔height) and
//!   an independent distractor attribute (eye colour). Used by experiments E1,
//!   E3, E5, E6, E8.
//! * [`mixture`] — numeric tables with planted Gaussian subspace clusters and
//!   optional noise dimensions, returning the ground-truth labels. Used by E4
//!   and E7.
//! * [`sdss`] — a sky-survey-like photometric catalog where magnitudes and
//!   redshift depend on the object class. Used by the `sky_survey` example and
//!   the scale benchmarks.
//! * [`orders`] — a TPC-H-like denormalised orders table with realistic
//!   categorical/numeric mix and a high-cardinality key column (to exercise
//!   the identifier-skipping logic).
//!
//! Every generator is deterministic for a given seed, so experiments are
//! reproducible run to run.

#![warn(missing_docs)]

pub mod census;
pub mod mixture;
pub mod orders;
pub mod sdss;

pub use census::{CensusConfig, CensusGenerator};
pub use mixture::{MixtureConfig, MixtureDataset, MixtureGenerator};
pub use orders::{OrdersConfig, OrdersGenerator};
pub use sdss::{SdssConfig, SdssGenerator};
