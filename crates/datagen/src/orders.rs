//! TPC-H-like denormalised orders table.
//!
//! Section 5.2 of the paper flags two "real life" difficulties this generator
//! reproduces on purpose:
//!
//! * **multiple tables / joins** — the paper proposes to materialise the join;
//!   we generate the already-joined order+lineitem view, which is the input
//!   Atlas would see after that step;
//! * **high-cardinality, semantics-free columns** — `order_key` is a unique
//!   identifier and `comment_code` a high-cardinality code; both should be
//!   detected and skipped by the candidate-generation step.

use atlas_columnar::{DataType, Field, Schema, Table, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Market segments (as in TPC-H `customer.c_mktsegment`).
pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];
/// Order priorities.
pub const PRIORITIES: [&str; 3] = ["HIGH", "MEDIUM", "LOW"];
/// Shipping modes.
pub const SHIP_MODES: [&str; 4] = ["AIR", "RAIL", "SHIP", "TRUCK"];
/// Sales regions.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// Configuration of the orders generator.
#[derive(Debug, Clone)]
pub struct OrdersConfig {
    /// Number of rows.
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
    /// Table name.
    pub table_name: String,
}

impl Default for OrdersConfig {
    fn default() -> Self {
        OrdersConfig {
            rows: 10_000,
            seed: 2013,
            table_name: "orders".to_string(),
        }
    }
}

/// The orders generator.
#[derive(Debug, Clone)]
pub struct OrdersGenerator {
    config: OrdersConfig,
}

impl OrdersGenerator {
    /// Create a generator with the given configuration.
    pub fn new(config: OrdersConfig) -> Self {
        OrdersGenerator { config }
    }

    /// Shorthand constructor.
    pub fn with_rows(rows: usize, seed: u64) -> Self {
        OrdersGenerator {
            config: OrdersConfig {
                rows,
                seed,
                ..OrdersConfig::default()
            },
        }
    }

    /// Schema of the generated table.
    pub fn schema() -> Schema {
        Schema::new(vec![
            Field::new("order_key", DataType::Int),
            Field::new("region", DataType::Str),
            Field::new("segment", DataType::Str),
            Field::new("priority", DataType::Str),
            Field::new("quantity", DataType::Int),
            Field::new("extended_price", DataType::Float),
            Field::new("discount", DataType::Float),
            Field::new("ship_mode", DataType::Str),
            Field::new("comment_code", DataType::Str),
        ])
        .expect("static schema is valid")
    }

    /// Generate the table.
    pub fn generate(&self) -> Table {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut builder = TableBuilder::new(cfg.table_name.clone(), Self::schema());
        for i in 0..cfg.rows {
            let region = REGIONS[rng.gen_range(0..REGIONS.len())];
            let segment = SEGMENTS[rng.gen_range(0..SEGMENTS.len())];
            // Priority is correlated with segment: machinery and building
            // orders skew HIGH, household orders skew LOW.
            let priority = {
                let p_high = match segment {
                    "MACHINERY" | "BUILDING" => 0.6,
                    "HOUSEHOLD" => 0.15,
                    _ => 0.33,
                };
                let r: f64 = rng.gen();
                if r < p_high {
                    "HIGH"
                } else if r < p_high + 0.3 {
                    "MEDIUM"
                } else {
                    "LOW"
                }
            };
            let quantity: i64 = rng.gen_range(1..=50);
            // Price is strongly driven by quantity (planted numeric dependency)
            // with a unit price that depends on the segment.
            let unit_price = match segment {
                "MACHINERY" => 900.0,
                "AUTOMOBILE" => 700.0,
                "BUILDING" => 500.0,
                "FURNITURE" => 300.0,
                _ => 150.0,
            };
            let extended_price =
                quantity as f64 * unit_price * (1.0 + 0.1 * rng.gen_range(-1.0..1.0));
            let discount = (rng.gen_range(0.0..0.1f64) * 100.0).round() / 100.0;
            // Ship mode is correlated with priority (HIGH orders fly).
            let ship_mode = if priority == "HIGH" && rng.gen_bool(0.7) {
                "AIR"
            } else {
                SHIP_MODES[rng.gen_range(0..SHIP_MODES.len())]
            };
            let comment_code = format!("C{:06}", rng.gen_range(0..1_000_000));
            builder
                .push_row(&[
                    Value::Int(i as i64 + 1),
                    Value::Str(region.to_string()),
                    Value::Str(segment.to_string()),
                    Value::Str(priority.to_string()),
                    Value::Int(quantity),
                    Value::Float((extended_price * 100.0).round() / 100.0),
                    Value::Float(discount),
                    Value::Str(ship_mode.to_string()),
                    Value::Str(comment_code),
                ])
                .expect("row matches schema");
        }
        builder.build().expect("consistent columns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_rows_and_unique_keys() {
        let t = OrdersGenerator::with_rows(1000, 3).generate();
        assert_eq!(t.num_rows(), 1000);
        let stats = t.column_stats("order_key", &t.full_selection()).unwrap();
        assert_eq!(stats.distinct_count, 1000);
        assert!(stats.looks_like_identifier());
    }

    #[test]
    fn comment_code_is_high_cardinality() {
        let t = OrdersGenerator::with_rows(2000, 5).generate();
        let stats = t.column_stats("comment_code", &t.full_selection()).unwrap();
        assert!(stats.distinct_ratio() > 0.9);
    }

    #[test]
    fn price_depends_on_quantity() {
        let t = OrdersGenerator::with_rows(4000, 7).generate();
        let all = t.full_selection();
        let qty = t.column("quantity").unwrap();
        let price = t.column("extended_price").unwrap();
        let small = qty.select_range(&all, 1.0, 10.0);
        let large = qty.select_range(&all, 40.0, 50.0);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        let p_small = mean(&price.numeric_values_where(&small));
        let p_large = mean(&price.numeric_values_where(&large));
        assert!(p_large > p_small * 2.0);
    }

    #[test]
    fn priority_depends_on_segment() {
        let t = OrdersGenerator::with_rows(6000, 9).generate();
        let all = t.full_selection();
        let seg = t.column("segment").unwrap();
        let pri = t.column("priority").unwrap();
        let machinery = seg.select_in(&all, &["MACHINERY".to_string()]);
        let household = seg.select_in(&all, &["HOUSEHOLD".to_string()]);
        let high = pri.select_in(&all, &["HIGH".to_string()]);
        let p_m = high.intersection_count(&machinery) as f64 / machinery.count() as f64;
        let p_h = high.intersection_count(&household) as f64 / household.count() as f64;
        assert!(p_m > p_h + 0.2, "p_machinery={p_m} p_household={p_h}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = OrdersGenerator::with_rows(200, 11).generate();
        let b = OrdersGenerator::with_rows(200, 11).generate();
        assert_eq!(a.row(123).unwrap(), b.row(123).unwrap());
    }
}
