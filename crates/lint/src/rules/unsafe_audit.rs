//! Rule 4 — **missing-safety-comment**.
//!
//! Every `unsafe` site in the workspace — vendored crates included — must be
//! preceded by a `// SAFETY:` comment stating the invariants that make it
//! sound (the `minirayon` lifetime-erasure contract is the canonical
//! example). This rule is deliberately unwaivable: an `unsafe` block whose
//! soundness cannot be written down should not exist.

use super::{code_tokens, emit, Rule};
use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// How many lines above the `unsafe` token a `SAFETY:` comment may sit
/// (attributes or a signature line may intervene).
const SAFETY_LOOKBACK_LINES: u32 = 5;

/// See the module docs.
pub struct MissingSafetyComment;

impl Rule for MissingSafetyComment {
    fn id(&self) -> &'static str {
        "missing-safety-comment"
    }

    fn waiver_key(&self) -> &'static str {
        "" // unwaivable
    }

    fn applies_to(&self, _path: &str) -> bool {
        true
    }

    fn check(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for (_, tok) in code_tokens(file) {
            if tok.ident() != Some("unsafe") {
                continue;
            }
            if !file.comment_nearby_contains(tok.line, SAFETY_LOOKBACK_LINES, "SAFETY:") {
                emit(
                    self,
                    file,
                    tok.line,
                    "`unsafe` without a preceding `// SAFETY:` comment stating its \
                     soundness invariants"
                        .to_string(),
                    &mut out,
                );
            }
        }
        out
    }
}
