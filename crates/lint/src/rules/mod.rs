//! The rule registry.
//!
//! Every Atlas-specific invariant is one [`Rule`] implementation. The
//! registry is the single list in [`all_rules`]; the CLI, the fixture tests
//! and the workspace gate all iterate it, so a rule added there is enforced
//! everywhere at once.
//!
//! # Adding a rule
//!
//! 1. Create `src/rules/<name>.rs` implementing [`Rule`]:
//!    * [`Rule::id`] — kebab-case identifier, stable (it is what baselines
//!      and JSON output key on);
//!    * [`Rule::waiver_key`] — the `// lint: <key> (reason)` token that
//!      suppresses one finding, or `""` for unwaivable rules;
//!    * [`Rule::applies_to`] — path predicate (workspace-relative,
//!      `/`-separated) selecting the enforced surface;
//!    * [`Rule::check`] — pattern-match over [`SourceFile::toks`], emit
//!      through [`emit`] so waivers are honoured uniformly.
//! 2. Register it in [`all_rules`].
//! 3. Add fixture files under `tests/fixtures/` with at least one
//!    **true positive** and one **must-not-match** case (a string or comment
//!    containing the flagged pattern), and assertions in `tests/rules.rs`.
//! 4. If the workspace has legacy violations, either burn them down in the
//!    same change or commit them with `--write-baseline` — the ratchet
//!    fails only *new* findings.
//!
//! Rules are token-level heuristics, not a type system. When a rule cannot
//! prove a site is fine, the site carries a waiver whose mandatory reason
//! documents the proof — the waiver comment is the artifact a reviewer
//! audits, exactly like a `// SAFETY:` comment.

use crate::diag::Diagnostic;
use crate::source::SourceFile;

mod determinism;
mod doc_hygiene;
mod panic_free;
mod unsafe_audit;
mod wire_floats;

/// One lint rule: a path scope plus a token-level check.
pub trait Rule {
    /// Stable kebab-case identifier used in diagnostics and baselines.
    fn id(&self) -> &'static str;
    /// Waiver token (`// lint: <key> (reason)`), empty if unwaivable.
    fn waiver_key(&self) -> &'static str;
    /// Does this rule apply to the file at `path` (workspace-relative)?
    fn applies_to(&self, path: &str) -> bool;
    /// Scan the file, returning findings (waivers already applied).
    fn check(&self, file: &SourceFile) -> Vec<Diagnostic>;
}

/// Every registered rule, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(determinism::NondeterministicIteration),
        Box::new(wire_floats::WireFloatFormat),
        Box::new(panic_free::PanicPath),
        Box::new(panic_free::SliceIndex),
        Box::new(unsafe_audit::MissingSafetyComment),
        Box::new(doc_hygiene::TestlessIntegrationFile),
        Box::new(doc_hygiene::UndocumentedPub),
    ]
}

/// Push a finding unless the site carries this rule's waiver. All rules emit
/// through here so waiver semantics cannot drift between rules.
pub fn emit(
    rule: &dyn Rule,
    file: &SourceFile,
    line: u32,
    message: String,
    out: &mut Vec<Diagnostic>,
) {
    let key = rule.waiver_key();
    if !key.is_empty() && file.waived(line, key) {
        return;
    }
    out.push(Diagnostic {
        file: file.path.clone(),
        line,
        rule: rule.id(),
        message,
    });
}

/// The non-comment tokens of a file with their original indices — the view
/// every token-pattern rule iterates.
pub fn code_tokens(file: &SourceFile) -> Vec<(usize, &crate::lexer::Tok)> {
    file.toks
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_comment())
        .collect()
}
