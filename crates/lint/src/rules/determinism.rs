//! Rule 1 — **nondeterministic-iteration**.
//!
//! Atlas's headline guarantee is bit-identical ranked maps across thread
//! counts, segment layouts, the wire and shard assignments. Iterating a
//! `std::collections::HashMap`/`HashSet` yields entries in randomized order,
//! so any iteration feeding an ordered output is a latent determinism bug.
//! This rule forbids iteration over hash-typed bindings in the pipeline
//! crates (`core`, `stats`, `columnar`, `serve`); sites whose folds are
//! provably order-insensitive (sums into another set, mins under a total
//! order) carry a `// lint: nondeterministic-ok (reason)` waiver.

use super::{code_tokens, emit, Rule};
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::source::{Mark, SourceFile};

/// Methods whose call on a hash collection observes iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// See the module docs.
pub struct NondeterministicIteration;

impl Rule for NondeterministicIteration {
    fn id(&self) -> &'static str {
        "nondeterministic-iteration"
    }

    fn waiver_key(&self) -> &'static str {
        "nondeterministic-ok"
    }

    fn applies_to(&self, path: &str) -> bool {
        [
            "crates/core/src",
            "crates/stats/src",
            "crates/columnar/src",
            "crates/serve/src",
        ]
        .iter()
        .any(|p| path.starts_with(p))
    }

    fn check(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let code = code_tokens(file);
        let mut out = Vec::new();
        for i in 0..code.len() {
            let (orig, tok) = code[i];
            if file.in_test_code(orig) {
                continue;
            }
            // `receiver.method(` where method observes iteration order and
            // receiver is a hash-typed binding.
            if let Some(method) = tok.ident() {
                if ITER_METHODS.contains(&method)
                    && i >= 2
                    && code[i - 1].1.is_punct('.')
                    && code.get(i + 1).is_some_and(|(_, t)| t.is_punct('('))
                {
                    if let Some(name) = code[i - 2].1.ident() {
                        if file.is_marked(name, orig, Mark::Hash) {
                            emit(
                                self,
                                file,
                                tok.line,
                                format!(
                                    "iteration over hash collection `{name}` via `.{method}()` \
                                     has randomized order; use BTreeMap/sorted iteration or \
                                     waive with a proof of order-insensitivity"
                                ),
                                &mut out,
                            );
                        }
                    }
                }
            }
            // `for pat in <pure path over a hash binding> {`
            if tok.ident() == Some("for") {
                if let Some((expr_start, expr_end)) = for_loop_expr(&code, i) {
                    let expr = &code[expr_start..expr_end];
                    if is_pure_path(expr) {
                        for &(eorig, etok) in expr {
                            if let Some(name) = etok.ident() {
                                if file.is_marked(name, eorig, Mark::Hash) {
                                    emit(
                                        self,
                                        file,
                                        tok.line,
                                        format!(
                                            "`for` loop over hash collection `{name}` has \
                                             randomized order; use BTreeMap/sorted iteration or \
                                             waive with a proof of order-insensitivity"
                                        ),
                                        &mut out,
                                    );
                                    break;
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// For a `for` keyword at `code[i]`, return the token range of the iterated
/// expression (between `in` and the body `{`), or `None` when this `for` is
/// part of `impl Trait for Type` / a generic bound.
fn for_loop_expr(code: &[(usize, &crate::lexer::Tok)], i: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut j = i + 1;
    let mut in_at = None;
    while j < code.len() {
        let t = code[j].1;
        match &t.kind {
            TokKind::Punct('(' | '[') => depth += 1,
            TokKind::Punct(')' | ']') => depth -= 1,
            TokKind::Punct('{') if depth == 0 => {
                // Hit the body (or an impl block) before `in`: not a loop.
                return in_at.map(|start| (start, j));
            }
            TokKind::Ident(name) if depth == 0 && name == "in" && in_at.is_none() => {
                in_at = Some(j + 1);
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Is this expression a bare (borrowed) path like `map`, `&map`,
/// `&mut self.sessions`? Anything with calls or arithmetic is left to the
/// method-call check, which avoids flagging `0..map.len()`.
fn is_pure_path(expr: &[(usize, &crate::lexer::Tok)]) -> bool {
    !expr.is_empty()
        && expr.iter().all(|(_, t)| match &t.kind {
            TokKind::Ident(name) => name != "as",
            TokKind::Punct('&' | '.' | '*') => true,
            _ => false,
        })
}
