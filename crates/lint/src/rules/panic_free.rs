//! Rule 3 — **panic-path** and **slice-index**.
//!
//! A panic on an `atlas-serve` request path kills a worker thread mid-
//! request instead of answering a typed error; under load that degrades the
//! whole pool. Non-test code in `crates/serve` must return typed
//! [`AtlasError`]s instead of calling `unwrap()`/`expect()`/`panic!`-family
//! macros, and slice indexing must either be converted to checked `get`
//! (for wire-derived indices) or carry a `// lint: slice-index-ok (proof)`
//! waiver stating why the bound holds.

use super::{code_tokens, emit, Rule};
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::source::SourceFile;

fn in_serve(path: &str) -> bool {
    path.starts_with("crates/serve/src")
}

/// Panicking method calls and macros on request paths; see the module docs.
pub struct PanicPath;

impl Rule for PanicPath {
    fn id(&self) -> &'static str {
        "panic-path"
    }

    fn waiver_key(&self) -> &'static str {
        "panic-ok"
    }

    fn applies_to(&self, path: &str) -> bool {
        in_serve(path)
    }

    fn check(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let code = code_tokens(file);
        let mut out = Vec::new();
        for i in 0..code.len() {
            let (orig, tok) = code[i];
            if file.in_test_code(orig) {
                continue;
            }
            let Some(name) = tok.ident() else { continue };
            // `.unwrap()` / `.expect(` — exact method names only, so
            // `unwrap_or_else` and `expect_err` stay legal.
            if matches!(name, "unwrap" | "expect")
                && i >= 1
                && code[i - 1].1.is_punct('.')
                && code.get(i + 1).is_some_and(|(_, t)| t.is_punct('('))
            {
                emit(
                    self,
                    file,
                    tok.line,
                    format!("`.{name}()` on a request path; return a typed `AtlasError` instead"),
                    &mut out,
                );
            }
            // `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
            if matches!(name, "panic" | "unreachable" | "todo" | "unimplemented")
                && code.get(i + 1).is_some_and(|(_, t)| t.is_punct('!'))
            {
                emit(
                    self,
                    file,
                    tok.line,
                    format!("`{name}!` on a request path; return a typed `AtlasError` instead"),
                    &mut out,
                );
            }
        }
        out
    }
}

/// Unchecked slice/array indexing on request paths; see the module docs.
pub struct SliceIndex;

impl Rule for SliceIndex {
    fn id(&self) -> &'static str {
        "slice-index"
    }

    fn waiver_key(&self) -> &'static str {
        "slice-index-ok"
    }

    fn applies_to(&self, path: &str) -> bool {
        in_serve(path)
    }

    fn check(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let code = code_tokens(file);
        let mut out = Vec::new();
        for i in 1..code.len() {
            let (orig, tok) = code[i];
            if !tok.is_punct('[') || file.in_test_code(orig) {
                continue;
            }
            // Index position: the `[` directly follows a value expression.
            // Anything else (`#[attr]`, `vec![`, array literals after `=`,
            // `(`, `,`, slice types after `&`/`:`/`<`) is not indexing.
            let prev = code[i - 1].1;
            let indexes_value = match &prev.kind {
                TokKind::Ident(name) => !matches!(
                    name.as_str(),
                    "let"
                        | "in"
                        | "return"
                        | "if"
                        | "else"
                        | "match"
                        | "mut"
                        | "ref"
                        | "move"
                        | "as"
                        | "dyn"
                        | "where"
                        | "box"
                        | "const"
                        | "static"
                ),
                TokKind::Punct(')' | ']') => true,
                _ => false,
            };
            if !indexes_value {
                continue;
            }
            // Find the matching `]`; a bare `[..]` full-range never panics.
            let mut depth = 0i32;
            let mut j = i;
            let mut inner = 0usize;
            let mut all_dots = true;
            while j < code.len() {
                match &code[j].1.kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    kind => {
                        if j > i {
                            inner += 1;
                            if !matches!(kind, TokKind::Punct('.')) {
                                all_dots = false;
                            }
                        }
                    }
                }
                j += 1;
            }
            if inner > 0 && all_dots {
                continue; // `x[..]`
            }
            let receiver = code[i - 1]
                .1
                .ident()
                .map(|n| format!("`{n}[...]`"))
                .unwrap_or_else(|| "`[...]` indexing".to_string());
            emit(
                self,
                file,
                tok.line,
                format!(
                    "{receiver} can panic out-of-bounds on a request path; use checked \
                     `get` for wire-derived indices or waive with the bound's proof"
                ),
                &mut out,
            );
        }
        out
    }
}
