//! Rule 5 — **testless-integration-file** and **undocumented-pub**.
//!
//! Two hygiene checks: an integration-test file that compiles but contains
//! no `#[test]` (nor a `proptest!` block) asserts nothing and rots
//! silently; and the `atlas` facade is the documented surface of the whole
//! workspace, so every top-level `pub` item in `src/lib.rs` needs a doc
//! comment (`#![warn(missing_docs)]` does not cover `pub use` re-exports —
//! this rule does).

use super::{code_tokens, emit, Rule};
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::source::SourceFile;

/// Flags `tests/*.rs` files with no test in them; see the module docs.
pub struct TestlessIntegrationFile;

impl Rule for TestlessIntegrationFile {
    fn id(&self) -> &'static str {
        "testless-integration-file"
    }

    fn waiver_key(&self) -> &'static str {
        "test-file-ok"
    }

    fn applies_to(&self, path: &str) -> bool {
        // Direct children of a `tests/` directory are integration-test
        // binaries; deeper files (fixtures, helpers) are not compiled as
        // tests and are exempt.
        let mut parts = path.rsplit('/');
        let file = parts.next().unwrap_or("");
        file.ends_with(".rs") && parts.next() == Some("tests")
    }

    fn check(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let code = code_tokens(file);
        let has_test_attr = file
            .toks
            .windows(3)
            .any(|w| w[0].is_punct('#') && w[1].is_punct('[') && w[2].ident() == Some("test"));
        let has_proptest = code
            .windows(2)
            .any(|w| w[0].1.ident() == Some("proptest") && w[1].1.is_punct('!'));
        let mut out = Vec::new();
        if !has_test_attr && !has_proptest {
            emit(
                self,
                file,
                1,
                "integration-test file contains no `#[test]` (and no `proptest!` block); \
                 it compiles but asserts nothing"
                    .to_string(),
                &mut out,
            );
        }
        out
    }
}

/// Flags undocumented top-level `pub` items in the facade; see module docs.
pub struct UndocumentedPub;

impl Rule for UndocumentedPub {
    fn id(&self) -> &'static str {
        "undocumented-pub"
    }

    fn waiver_key(&self) -> &'static str {
        "doc-ok"
    }

    fn applies_to(&self, path: &str) -> bool {
        path == "src/lib.rs"
    }

    fn check(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let mut depth = 0i32;
        for (idx, tok) in file.toks.iter().enumerate() {
            match &tok.kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => depth -= 1,
                TokKind::Ident(name)
                    if name == "pub" && depth == 0 && !has_doc_above(file, idx) =>
                {
                    let item = item_name(file, idx);
                    emit(
                        self,
                        file,
                        tok.line,
                        format!(
                            "public facade item {item} has no doc comment; the facade \
                                 is the workspace's documented surface"
                        ),
                        &mut out,
                    );
                }
                _ => {}
            }
        }
        out
    }
}

/// Walk back from a `pub` token over attributes; true if a `///` doc comment
/// (or `#[doc = ...]`) directly precedes the item.
fn has_doc_above(file: &SourceFile, idx: usize) -> bool {
    let mut j = idx;
    while j > 0 {
        j -= 1;
        match &file.toks[j].kind {
            TokKind::LineComment(text) => return text.starts_with("///"),
            TokKind::BlockComment(text) => return text.starts_with("/**"),
            // Skip one `#[...]` attribute group: find its `#`.
            TokKind::Punct(']') => {
                let mut depth = 0i32;
                while j > 0 {
                    match &file.toks[j].kind {
                        TokKind::Punct(']') => depth += 1,
                        TokKind::Punct('[') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        TokKind::Ident(name) if name == "doc" => return true,
                        _ => {}
                    }
                    j -= 1;
                }
                if j > 0 && file.toks[j - 1].is_punct('#') {
                    j -= 1;
                    continue;
                }
                return false;
            }
            _ => return false,
        }
    }
    false
}

/// A short name for the item after `pub`, for the diagnostic message.
fn item_name(file: &SourceFile, idx: usize) -> String {
    let rest: Vec<&str> = file.toks[idx + 1..]
        .iter()
        .filter(|t| !t.is_comment())
        .take(3)
        .filter_map(|t| t.ident())
        .collect();
    if rest.is_empty() {
        "`pub` item".to_string()
    } else {
        format!("`pub {}`", rest.join(" "))
    }
}
