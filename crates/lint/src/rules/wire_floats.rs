//! Rule 2 — **wire-float-format**.
//!
//! Scores cross the wire bit-for-bit only because every float is printed by
//! the shortest-round-trip / hex-bit codecs in `crates/serve/src/wire/`.
//! A stray `format!("{score:.3}")` or `x.to_string()` silently truncates
//! and the distributed bit-identity guarantee dies. Inside the wire modules
//! this rule flags float formatting anywhere outside the codec functions
//! themselves (which carry `// lint: wire-float-ok (...)` waivers — they
//! *are* the codecs).

use super::{code_tokens, emit, Rule};
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::source::{Mark, SourceFile};

/// Formatting macros whose arguments (or inline `{name}` captures) are
/// checked for float-typed bindings.
const FORMAT_MACROS: &[&str] = &[
    "format", "write", "writeln", "print", "println", "eprint", "eprintln",
];

/// See the module docs.
pub struct WireFloatFormat;

impl Rule for WireFloatFormat {
    fn id(&self) -> &'static str {
        "wire-float-format"
    }

    fn waiver_key(&self) -> &'static str {
        "wire-float-ok"
    }

    fn applies_to(&self, path: &str) -> bool {
        path.contains("crates/serve/src/wire/")
    }

    fn check(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let code = code_tokens(file);
        let mut out = Vec::new();
        for i in 0..code.len() {
            let (orig, tok) = code[i];
            if file.in_test_code(orig) {
                continue;
            }
            // `format!( ... )` and friends.
            if let Some(mac) = tok.ident() {
                if FORMAT_MACROS.contains(&mac)
                    && code.get(i + 1).is_some_and(|(_, t)| t.is_punct('!'))
                    && code.get(i + 2).is_some_and(|(_, t)| t.is_punct('('))
                {
                    if let Some(offender) = float_in_macro_args(file, &code, i + 2) {
                        emit(
                            self,
                            file,
                            tok.line,
                            format!(
                                "`{mac}!` formats float `{offender}` lossily; route it \
                                 through the shortest-round-trip or hex-bit codec"
                            ),
                            &mut out,
                        );
                    }
                }
            }
            // `x.to_string()` on a float binding or float literal.
            if tok.ident() == Some("to_string")
                && i >= 2
                && code[i - 1].1.is_punct('.')
                && code.get(i + 1).is_some_and(|(_, t)| t.is_punct('('))
            {
                let (rorig, recv) = code[i - 2];
                let float_recv = match &recv.kind {
                    TokKind::Ident(name) => file
                        .is_marked(name, rorig, Mark::Float)
                        .then_some(name.as_str()),
                    TokKind::Num { float: true } => Some("literal"),
                    _ => None,
                };
                if let Some(name) = float_recv {
                    emit(
                        self,
                        file,
                        tok.line,
                        format!(
                            "`.to_string()` on float `{name}` is lossy; route it through \
                             the shortest-round-trip or hex-bit codec"
                        ),
                        &mut out,
                    );
                }
            }
        }
        out
    }
}

/// Scan one macro's argument list (starting at the opening paren in `code`)
/// for a float-typed identifier, a float literal, or an inline `{name}`
/// capture of a float binding. Returns the offender's name.
fn float_in_macro_args<'t>(
    file: &SourceFile,
    code: &[(usize, &'t crate::lexer::Tok)],
    open: usize,
) -> Option<&'t str> {
    let mut depth = 0i32;
    let mut j = open;
    while j < code.len() {
        let (orig, t) = code[j];
        match &t.kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return None;
                }
            }
            TokKind::Ident(name) if file.is_marked(name, orig, Mark::Float) => {
                return Some(name);
            }
            TokKind::Num { float: true } => return Some("literal"),
            TokKind::Str(text) => {
                // Rust 2021 inline captures: `format!("{x}")` mentions `x`
                // only inside the literal.
                for name in inline_captures(text) {
                    if file.is_marked(name, orig, Mark::Float) {
                        // Resolve to the binding's own name for the message.
                        if let Some((_, bt)) = code.iter().find(|(_, bt)| bt.ident() == Some(name))
                        {
                            return bt.ident();
                        }
                        return Some("captured");
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// The `{name}` / `{name:spec}` capture identifiers of a format string.
fn inline_captures(text: &str) -> Vec<&str> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'{' {
            if bytes.get(i + 1) == Some(&b'{') {
                i += 2; // escaped brace
                continue;
            }
            let start = i + 1;
            let mut end = start;
            while end < bytes.len()
                && ((bytes[end] as char).is_ascii_alphanumeric() || bytes[end] == b'_')
            {
                end += 1;
            }
            if end > start && matches!(bytes.get(end), Some(b'}') | Some(b':')) {
                if let Ok(name) = std::str::from_utf8(&bytes[start..end]) {
                    if name
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
                    {
                        out.push(name);
                    }
                }
            }
            i = end.max(i + 1);
        } else {
            i += 1;
        }
    }
    out
}
