//! `atlas-lint` — Atlas's project-specific static analysis.
//!
//! Generic lints (clippy) do not know Atlas's invariants: bit-identical
//! ranked maps across thread counts and shard layouts, floats that cross the
//! wire through shortest-round-trip codecs only, request paths that answer
//! typed errors instead of panicking. This crate is a hand-rolled Rust
//! tokenizer ([`lexer`]) plus a small rule engine ([`rules`]) that walks
//! every workspace `.rs` file and enforces those invariants with
//! rustc-style diagnostics, a mandatory-reason waiver grammar, and a
//! ratchet-only [`baseline`] so legacy findings can be absorbed but new
//! ones always fail.
//!
//! The crate has **zero dependencies** — it must lint the workspace without
//! being able to reach crates.io, and it must never be the thing that breaks
//! the build.

pub mod baseline;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod source;

use diag::Diagnostic;
use source::SourceFile;
use std::path::{Path, PathBuf};

/// Lint one file's text against every applicable rule. `path` is the
/// workspace-relative, `/`-separated path used for rule scoping and
/// diagnostics.
pub fn lint_source(path: &str, text: &str) -> Vec<Diagnostic> {
    let file = SourceFile::parse(path, text);
    let mut out = Vec::new();
    for rule in rules::all_rules() {
        if rule.applies_to(&file.path) {
            out.extend(rule.check(&file));
        }
    }
    out.sort();
    out
}

/// Directories never descended into: build output, VCS metadata, and the
/// lint crate's own fixture files (which are violations *on purpose*).
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

/// Every `.rs` file under `root`, workspace-relative and sorted, skipping
/// `SKIP_DIRS` (build output, VCS metadata, and the fixture files).
pub fn collect_workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(
                path.strip_prefix(root)
                    .map(Path::to_path_buf)
                    .unwrap_or(path),
            );
        }
    }
    Ok(())
}

/// Lint every workspace `.rs` file under `root`. Returns all findings,
/// sorted by (file, line, rule).
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    for rel in collect_workspace_files(root)? {
        let text = std::fs::read_to_string(root.join(&rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        out.extend(lint_source(&rel_str, &text));
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_applies_only_scoped_rules() {
        // A HashMap iteration in a non-pipeline crate is out of scope.
        let src = "use std::collections::HashMap;\n\
                   fn f() { let m: HashMap<u32, u32> = HashMap::new(); for x in &m {} }\n";
        assert!(lint_source("crates/bench/src/x.rs", src).is_empty());
        let diags = lint_source("crates/core/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "nondeterministic-iteration");
    }

    #[test]
    fn diagnostics_are_sorted_and_stable() {
        let src = "fn f(m: std::collections::HashMap<u32, u32>) {\n\
                       for x in &m {}\n\
                       let v = vec![1];\n\
                       let y = v.iter().next().unwrap();\n\
                   }\n";
        let a = lint_source("crates/serve/src/x.rs", src);
        let b = lint_source("crates/serve/src/x.rs", src);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(a.iter().any(|d| d.rule == "nondeterministic-iteration"));
        assert!(a.iter().any(|d| d.rule == "panic-path"));
    }
}
