//! The ratchet baseline: legacy violations are committed to
//! `lint-baseline.txt` so the gate only ever tightens.
//!
//! Format: one `file<TAB>rule<TAB>count` line per (file, rule) pair, sorted.
//! Counts — not line numbers — are stored, so unrelated edits that shift
//! lines do not churn the baseline. Semantics:
//!
//! * current count **above** baseline → those diagnostics are *new*: fail;
//! * current count **at** baseline → legacy debt, tolerated;
//! * current count **below** baseline → the debt shrank; `--write-baseline`
//!   records the smaller number (CI prints a reminder so burn-down progress
//!   is captured, but a stale-high baseline never fails the build).
//!
//! The committed baseline is **empty**: every rule runs clean on the
//! workspace today. The machinery exists so a future rule (or a stricter
//! version of an existing one) can land with its legacy findings baselined
//! and burned down over time.

use crate::diag::Diagnostic;
use std::collections::BTreeMap;

/// Per-(file, rule) allowance loaded from a baseline file.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    counts: BTreeMap<(String, String), usize>,
}

/// The result of applying a baseline to a run's diagnostics.
#[derive(Debug)]
pub struct Applied {
    /// Diagnostics exceeding the baselined allowance — these fail the run.
    pub fresh: Vec<Diagnostic>,
    /// Number of diagnostics absorbed by the baseline.
    pub absorbed: usize,
    /// (file, rule) pairs whose current count undershoots the baseline —
    /// the ratchet can be tightened.
    pub tightenable: Vec<(String, String)>,
}

impl Baseline {
    /// Parse baseline text; unparseable lines are ignored (a linter should
    /// not die on its own config).
    pub fn parse(text: &str) -> Baseline {
        let mut counts = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split('\t');
            if let (Some(file), Some(rule), Some(count)) =
                (parts.next(), parts.next(), parts.next())
            {
                if let Ok(count) = count.trim().parse::<usize>() {
                    counts.insert((file.to_string(), rule.to_string()), count);
                }
            }
        }
        Baseline { counts }
    }

    /// Serialize diagnostics as a fresh baseline.
    pub fn render(diags: &[Diagnostic]) -> String {
        let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        for d in diags {
            *counts
                .entry((d.file.clone(), d.rule.to_string()))
                .or_default() += 1;
        }
        let mut out = String::from(
            "# atlas-lint ratchet baseline: file<TAB>rule<TAB>tolerated-count\n\
             # Regenerate with: cargo run -p atlas-lint -- --write-baseline\n",
        );
        for ((file, rule), count) in counts {
            out.push_str(&format!("{file}\t{rule}\t{count}\n"));
        }
        out
    }

    /// Split `diags` into fresh (failing) and absorbed (legacy) findings.
    /// Within one (file, rule) group the *first* `allowance` findings in
    /// line order are absorbed — deterministic, and stable under appends.
    pub fn apply(&self, diags: &[Diagnostic]) -> Applied {
        let mut sorted: Vec<Diagnostic> = diags.to_vec();
        sorted.sort();
        let mut used: BTreeMap<(String, String), usize> = BTreeMap::new();
        let mut fresh = Vec::new();
        let mut absorbed = 0usize;
        for d in sorted {
            let key = (d.file.clone(), d.rule.to_string());
            let allowance = self.counts.get(&key).copied().unwrap_or(0);
            let used_here = used.entry(key).or_default();
            if *used_here < allowance {
                *used_here += 1;
                absorbed += 1;
            } else {
                fresh.push(d);
            }
        }
        let tightenable = self
            .counts
            .iter()
            .filter(|(key, &allowance)| used.get(*key).copied().unwrap_or(0) < allowance)
            .map(|(key, _)| key.clone())
            .collect();
        Applied {
            fresh,
            absorbed,
            tightenable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(file: &str, line: u32, rule: &'static str) -> Diagnostic {
        Diagnostic {
            file: file.into(),
            line,
            rule,
            message: "m".into(),
        }
    }

    #[test]
    fn baseline_absorbs_up_to_count_and_fails_beyond() {
        let base = Baseline::parse("crates/a.rs\tpanic-path\t2\n");
        let diags = vec![
            diag("crates/a.rs", 1, "panic-path"),
            diag("crates/a.rs", 5, "panic-path"),
            diag("crates/a.rs", 9, "panic-path"),
        ];
        let applied = base.apply(&diags);
        assert_eq!(applied.absorbed, 2);
        assert_eq!(applied.fresh.len(), 1);
        assert_eq!(applied.fresh[0].line, 9, "line order decides absorption");
    }

    #[test]
    fn undershoot_is_tightenable_not_failing() {
        let base = Baseline::parse("crates/a.rs\tpanic-path\t5\n");
        let applied = base.apply(&[diag("crates/a.rs", 1, "panic-path")]);
        assert!(applied.fresh.is_empty());
        assert_eq!(
            applied.tightenable,
            vec![("crates/a.rs".to_string(), "panic-path".to_string())]
        );
    }

    #[test]
    fn roundtrip_through_render_and_parse() {
        let diags = vec![
            diag("b.rs", 1, "slice-index"),
            diag("b.rs", 2, "slice-index"),
            diag("a.rs", 3, "panic-path"),
        ];
        let text = Baseline::render(&diags);
        let base = Baseline::parse(&text);
        let applied = base.apply(&diags);
        assert!(applied.fresh.is_empty());
        assert_eq!(applied.absorbed, 3);
    }

    #[test]
    fn comments_and_junk_lines_are_ignored() {
        let base = Baseline::parse("# comment\n\nnot a baseline line\nx.rs\trule\tNaN\n");
        let applied = base.apply(&[diag("x.rs", 1, "panic-path")]);
        assert_eq!(applied.fresh.len(), 1);
    }
}
