//! Per-file analysis shared by every rule: the token stream plus
//!
//! * **test regions** — spans of `#[cfg(test)]` items and `#[test]` functions,
//!   so request-path rules skip test code;
//! * **function spans** — which tokens belong to which named `fn`, giving
//!   rules a scope for bindings ("the `folded` in *this* function, not the
//!   one three functions down");
//! * a flow-insensitive, per-function **symbol table** of bindings whose type
//!   or initializer marks them as hash collections (`HashMap`/`HashSet`,
//!   through local `type` aliases and the return types of same-file
//!   functions) or floats (`f64`/`f32`);
//! * **waivers** — `// lint: <key>-ok (reason)` comments on the flagged line
//!   or the line above. The reason is mandatory: an empty `()` does not
//!   suppress anything.
//!
//! Everything here is a heuristic over tokens, not a type checker; the rules
//! it feeds are documented as such and back-stopped by the waiver/baseline
//! machinery.

use crate::lexer::{tokenize, Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// How a binding was marked by the symbol-table scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mark {
    /// Typed or initialized as a `HashMap`/`HashSet` (possibly via alias or
    /// the return type of a same-file function).
    Hash,
    /// Typed `f64`/`f32` or initialized from a float literal.
    Float,
}

/// One binding: name, marking, and the function it belongs to (`None` for
/// struct fields and module-level items, which are visible file-wide).
#[derive(Debug, Clone)]
struct Binding {
    name: String,
    mark: Mark,
    func: Option<String>,
}

/// A tokenized source file plus the derived views rules consume.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// The token stream (comments included).
    pub toks: Vec<Tok>,
    /// Token-index ranges lying inside `#[cfg(test)]` items or `#[test]` fns.
    test_spans: Vec<(usize, usize)>,
    /// Named function bodies as (start, end, name) token-index ranges.
    fn_spans: Vec<(usize, usize, String)>,
    /// All marked bindings, in declaration order.
    bindings: Vec<Binding>,
    /// `lint: <key> (reason)` waivers by line.
    waivers: BTreeMap<u32, BTreeSet<String>>,
    /// Lines on which any comment token lives, with the comment text.
    comment_lines: BTreeMap<u32, String>,
}

impl SourceFile {
    /// Tokenize and analyze one file.
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let toks = tokenize(text);
        let test_spans = find_test_spans(&toks);
        let fn_spans = find_fn_spans(&toks);
        let mut file = SourceFile {
            path: path.replace('\\', "/"),
            toks,
            test_spans,
            fn_spans,
            bindings: Vec::new(),
            waivers: BTreeMap::new(),
            comment_lines: BTreeMap::new(),
        };
        file.collect_comments_and_waivers();
        file.collect_bindings();
        file
    }

    /// True when token `idx` lies inside a test region (or the whole file is
    /// an integration-test file under a `tests/` directory).
    pub fn in_test_code(&self, idx: usize) -> bool {
        if self.path.split('/').any(|seg| seg == "tests") {
            return true;
        }
        self.test_spans.iter().any(|&(s, e)| idx >= s && idx < e)
    }

    /// Name of the innermost named function containing token `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&str> {
        self.fn_spans
            .iter()
            .filter(|&&(s, e, _)| idx >= s && idx < e)
            .min_by_key(|&&(s, e, _)| e - s)
            .map(|(_, _, name)| name.as_str())
    }

    /// Is `name`, used at token `idx`, a binding marked `mark`? Bindings in
    /// the same function win; fall back to file-wide (field) bindings.
    pub fn is_marked(&self, name: &str, idx: usize, mark: Mark) -> bool {
        let here = self.enclosing_fn(idx);
        self.bindings.iter().any(|b| {
            b.name == name && b.mark == mark && (b.func.is_none() || b.func.as_deref() == here)
        })
    }

    /// Is the diagnostic with waiver key `key` waived on `line` (same line or
    /// the line directly above)?
    pub fn waived(&self, line: u32, key: &str) -> bool {
        [line, line.saturating_sub(1)]
            .iter()
            .any(|l| self.waivers.get(l).is_some_and(|keys| keys.contains(key)))
    }

    /// Does any comment on `line` or the `above` lines preceding it contain
    /// `needle`? A multi-line comment block whose tail reaches into that
    /// window also counts in full, so a long `// SAFETY:` contract is not
    /// penalized for pushing its keyword line beyond the fixed window.
    /// Used by the `SAFETY:` audit.
    pub fn comment_nearby_contains(&self, line: u32, above: u32, needle: &str) -> bool {
        let lo = line.saturating_sub(above);
        if self
            .comment_lines
            .range(lo..=line)
            .any(|(_, text)| text.contains(needle))
        {
            return true;
        }
        let first_in_window = self.comment_lines.range(lo..=line).next().map(|(l, _)| *l);
        if let Some(mut cur) = first_in_window {
            while cur > 1 {
                match self.comment_lines.get(&(cur - 1)) {
                    Some(text) if text.contains(needle) => return true,
                    Some(_) => cur -= 1,
                    None => break,
                }
            }
        }
        false
    }

    /// All waivers in the file as (line, key) pairs — the CLI lists them so
    /// a reviewer can audit every suppression in one place.
    pub fn waiver_sites(&self) -> Vec<(u32, String)> {
        self.waivers
            .iter()
            .flat_map(|(line, keys)| keys.iter().map(|k| (*line, k.clone())))
            .collect()
    }

    fn collect_comments_and_waivers(&mut self) {
        for tok in &self.toks {
            let text = match &tok.kind {
                TokKind::LineComment(t) | TokKind::BlockComment(t) => t.clone(),
                _ => continue,
            };
            self.comment_lines
                .entry(tok.line)
                .and_modify(|acc| {
                    acc.push(' ');
                    acc.push_str(&text);
                })
                .or_insert_with(|| text.clone());
            // Waiver grammar: `lint: <key> (<non-empty reason>)`.
            let mut rest = text.as_str();
            while let Some(at) = rest.find("lint:") {
                rest = &rest[at + "lint:".len()..];
                let rest_trim = rest.trim_start();
                let key_end = rest_trim
                    .find(|c: char| !(c.is_ascii_alphanumeric() || c == '-' || c == '_'))
                    .unwrap_or(rest_trim.len());
                let key = &rest_trim[..key_end];
                let after = rest_trim[key_end..].trim_start();
                let has_reason = after
                    .strip_prefix('(')
                    .and_then(|r| r.find(')').map(|end| !r[..end].trim().is_empty()))
                    .unwrap_or(false);
                if !key.is_empty() && has_reason {
                    self.waivers
                        .entry(tok.line)
                        .or_default()
                        .insert(key.to_string());
                }
            }
        }
    }

    fn collect_bindings(&mut self) {
        // Pass 1: local `type` aliases and same-file functions whose return
        // type is hash-marked. Both feed pass 2.
        let mut hash_aliases: BTreeSet<String> = BTreeSet::new();
        let mut hash_fns: BTreeSet<String> = BTreeSet::new();
        let code: Vec<(usize, &Tok)> = self
            .toks
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .collect();
        let ident_at = |i: usize| -> Option<&str> { code.get(i).and_then(|(_, t)| t.ident()) };
        let is_hash_ident = |name: &str, aliases: &BTreeSet<String>| {
            name == "HashMap" || name == "HashSet" || aliases.contains(name)
        };

        for i in 0..code.len() {
            if ident_at(i) == Some("type") {
                if let Some(alias) = ident_at(i + 1) {
                    // `type X<...> = rhs ;` — scan rhs to the semicolon.
                    let mut j = i + 2;
                    while j < code.len() && !code[j].1.is_punct(';') {
                        if let Some(name) = ident_at(j) {
                            if is_hash_ident(name, &hash_aliases) {
                                hash_aliases.insert(alias.to_string());
                                break;
                            }
                        }
                        j += 1;
                    }
                }
            }
            if ident_at(i) == Some("fn") {
                if let Some(fname) = ident_at(i + 1) {
                    // Scan the signature for `-> ... {` and mark the fn if
                    // the return type mentions a hash type or alias.
                    let mut j = i + 2;
                    let mut arrow = false;
                    while j < code.len() {
                        let t = code[j].1;
                        if t.is_punct('{') || t.is_punct(';') {
                            break;
                        }
                        if t.is_punct('>') && j > 0 && code[j - 1].1.is_punct('-') {
                            arrow = true;
                        } else if arrow {
                            if let Some(name) = t.ident() {
                                if is_hash_ident(name, &hash_aliases) {
                                    hash_fns.insert(fname.to_string());
                                    break;
                                }
                            }
                        }
                        j += 1;
                    }
                }
            }
        }

        // Pass 2: bindings. Two shapes:
        //   `name : <type tokens>`   (lets, params, struct fields, literals)
        //   `let [mut] name = <expr tokens> ;`
        let mut bindings = Vec::new();
        for i in 0..code.len() {
            // Shape 1: ident ':' followed by a type region.
            if code[i].1.is_punct(':')
                && i > 0
                && i + 1 < code.len()
                && !code[i - 1].1.is_punct(':') // skip `::` paths
                && !code.get(i + 1).is_some_and(|(_, t)| t.is_punct(':'))
            {
                if let Some(name) = ident_at(i - 1) {
                    let (tok_idx, _) = code[i - 1];
                    let mut mark = None;
                    let mut angle = 0i32;
                    let mut j = i + 1;
                    while j < code.len() {
                        let t = code[j].1;
                        match &t.kind {
                            TokKind::Punct('<') => angle += 1,
                            TokKind::Punct('>') => {
                                if j > 0 && code[j - 1].1.is_punct('-') {
                                    // `->` is not a closing angle.
                                } else {
                                    angle -= 1;
                                    if angle < 0 {
                                        break;
                                    }
                                }
                            }
                            TokKind::Punct(',' | ';' | ')' | '{' | '}' | '=') if angle <= 0 => {
                                break
                            }
                            TokKind::Ident(name) => {
                                if is_hash_ident(name, &hash_aliases) {
                                    mark = Some(Mark::Hash);
                                    break;
                                }
                                if name == "f64" || name == "f32" {
                                    mark = Some(Mark::Float);
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    if let Some(mark) = mark {
                        bindings.push(Binding {
                            name: name.to_string(),
                            mark,
                            func: self.enclosing_fn(tok_idx).map(str::to_string),
                        });
                    }
                }
            }
            // Shape 2: `let [mut] name = expr ;`
            if ident_at(i) == Some("let") {
                let mut k = i + 1;
                if ident_at(k) == Some("mut") {
                    k += 1;
                }
                let Some(name) = ident_at(k) else { continue };
                if !code.get(k + 1).is_some_and(|(_, t)| t.is_punct('=')) {
                    continue; // annotated lets are handled by shape 1
                }
                let (tok_idx, _) = code[k];
                let mut mark = None;
                let mut j = k + 2;
                while j < code.len() && !code[j].1.is_punct(';') {
                    match &code[j].1.kind {
                        TokKind::Ident(name) => {
                            if is_hash_ident(name, &hash_aliases) {
                                mark = Some(Mark::Hash);
                                break;
                            }
                            if hash_fns.contains(name.as_str())
                                && code.get(j + 1).is_some_and(|(_, t)| t.is_punct('('))
                            {
                                mark = Some(Mark::Hash);
                                break;
                            }
                        }
                        TokKind::Num { float: true } => {
                            mark = Some(Mark::Float);
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(mark) = mark {
                    bindings.push(Binding {
                        name: name.to_string(),
                        mark,
                        func: self.enclosing_fn(tok_idx).map(str::to_string),
                    });
                }
            }
        }
        self.bindings = bindings;
    }
}

/// Find spans (token-index ranges) of items carrying `#[cfg(test)]` or
/// `#[test]` attributes: the braces-enclosed body that follows the attribute.
fn find_test_spans(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && !attr_is_inner(toks, i) {
            let (attr_toks, after) = read_attr(toks, i);
            if attr_is_test(&attr_toks) {
                if let Some((start, end)) = item_body_span(toks, after) {
                    spans.push((start, end));
                    i = end;
                    continue;
                }
            }
            i = after;
            continue;
        }
        i += 1;
    }
    spans
}

/// `#![...]` inner attributes apply to the enclosing module, not the next
/// item; the test-span scan must not treat them as item attributes.
fn attr_is_inner(toks: &[Tok], i: usize) -> bool {
    toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
}

/// Read one `#[...]` attribute starting at `#`; returns its identifier
/// tokens and the index just past the closing `]`.
fn read_attr(toks: &[Tok], i: usize) -> (Vec<String>, usize) {
    let mut idents = Vec::new();
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.is_punct('!')) {
        j += 1;
    }
    if !toks.get(j).is_some_and(|t| t.is_punct('[')) {
        return (idents, i + 1);
    }
    let mut depth = 0i32;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (idents, j + 1);
                }
            }
            TokKind::Ident(name) => idents.push(name.clone()),
            _ => {}
        }
        j += 1;
    }
    (idents, toks.len())
}

/// `#[test]`, `#[cfg(test)]` and friends (`#[cfg(all(test, ...))]`, ...).
fn attr_is_test(idents: &[String]) -> bool {
    match idents.first().map(String::as_str) {
        Some("test") => true,
        Some("cfg") => idents.iter().any(|s| s == "test"),
        _ => false,
    }
}

/// From an attribute's end, find the span of the attributed item's `{...}`
/// body: skip further attributes and signature tokens (balancing parens and
/// brackets) to the first top-level `{`, then match braces.
fn item_body_span(toks: &[Tok], mut i: usize) -> Option<(usize, usize)> {
    let mut paren = 0i32;
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct('#') if paren == 0 && !attr_is_inner(toks, i) => {
                let (_, after) = read_attr(toks, i);
                i = after;
                continue;
            }
            TokKind::Punct('(' | '[') => paren += 1,
            TokKind::Punct(')' | ']') => paren -= 1,
            TokKind::Punct(';') if paren == 0 => return None, // bodyless item
            TokKind::Punct('{') if paren == 0 => {
                let start = i;
                let mut depth = 0i32;
                while i < toks.len() {
                    match &toks[i].kind {
                        TokKind::Punct('{') => depth += 1,
                        TokKind::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                return Some((start, i + 1));
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return Some((start, toks.len()));
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Find every named `fn` body as a (start, end, name) token-index span.
fn find_fn_spans(toks: &[Tok]) -> Vec<(usize, usize, String)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].ident() == Some("fn") {
            if let Some(TokKind::Ident(name)) = toks.get(i + 1).map(|t| &t.kind) {
                if let Some((start, end)) = item_body_span(toks, i + 2) {
                    spans.push((start, end, name.clone()));
                }
            }
        }
        i += 1;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_cover_cfg_test_mods_and_test_fns() {
        let src = r#"
fn request_path() { work(); }

#[test]
fn a_unit_test() { assert!(true); }

#[cfg(test)]
mod tests {
    fn helper() {}
}
"#;
        let f = SourceFile::parse("crates/serve/src/x.rs", src);
        let at = |name: &str| f.toks.iter().position(|t| t.ident() == Some(name)).unwrap();
        assert!(!f.in_test_code(at("request_path")));
        assert!(f.in_test_code(at("assert")));
        assert!(f.in_test_code(at("helper")));
    }

    #[test]
    fn integration_test_files_are_all_test_code() {
        let f = SourceFile::parse("tests/end_to_end.rs", "fn x() { y.unwrap(); }");
        assert!(f.in_test_code(0));
    }

    #[test]
    fn bindings_are_scoped_to_their_function() {
        let src = r#"
use std::collections::HashMap;
fn a() { let folded: HashMap<u32, u32> = HashMap::new(); }
fn b() { let folded: Vec<u32> = Vec::new(); for x in &folded {} }
"#;
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        let in_a = f
            .toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.ident() == Some("folded"))
            .map(|(i, _)| i)
            .collect::<Vec<_>>();
        assert!(f.is_marked("folded", in_a[0], Mark::Hash));
        assert!(
            !f.is_marked("folded", *in_a.last().unwrap(), Mark::Hash),
            "the Vec-typed `folded` in fn b must not inherit fn a's mark"
        );
    }

    #[test]
    fn aliases_and_returning_fns_propagate_the_hash_mark() {
        let src = r#"
type PairCounts = std::collections::HashMap<(usize, usize), u64>;
fn make() -> PairCounts { PairCounts::new() }
fn consume() { let counts = make(); let other: PairCounts = make(); }
"#;
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        let idx = f
            .toks
            .iter()
            .position(|t| t.ident() == Some("counts"))
            .unwrap();
        assert!(f.is_marked("counts", idx, Mark::Hash));
        assert!(f.is_marked("other", idx, Mark::Hash));
    }

    #[test]
    fn waivers_need_a_reason_and_cover_the_next_line() {
        let src = "
// lint: panic-ok (startup path, cannot recur at runtime)
x.unwrap();
// lint: panic-ok ()
y.unwrap();
z.unwrap(); // lint: slice-index-ok (bounded by loop)
";
        let f = SourceFile::parse("crates/serve/src/x.rs", src);
        assert!(f.waived(3, "panic-ok"));
        assert!(!f.waived(5, "panic-ok"), "empty reason must not waive");
        assert!(f.waived(6, "slice-index-ok"));
        assert!(!f.waived(6, "panic-ok"));
    }

    #[test]
    fn long_contiguous_safety_blocks_reach_past_the_fixed_window() {
        let mut src = String::from("// SAFETY: the invariant lives way up here.\n");
        for i in 0..10 {
            src.push_str(&format!("// obligation {i} of the contract.\n"));
        }
        src.push_str("fn f() { unsafe { danger() } }\n");
        let f = SourceFile::parse("crates/core/src/x.rs", &src);
        assert!(
            f.comment_nearby_contains(12, 5, "SAFETY:"),
            "the block's tail is adjacent, so the whole block counts"
        );
        // A gap of code between the block and the unsafe line breaks the run.
        let gapped = "// SAFETY: stale contract.\nfn other() {}\n\n\n\n\n\n\nfn f() { unsafe { danger() } }\n";
        let f = SourceFile::parse("crates/core/src/x.rs", gapped);
        assert!(!f.comment_nearby_contains(9, 5, "SAFETY:"));
    }

    #[test]
    fn float_bindings_are_marked() {
        let src = "fn f(x: f64) { let y = 1.5; let n = 3; }";
        let f = SourceFile::parse("crates/serve/src/wire/x.rs", src);
        let idx = f.toks.iter().position(|t| t.ident() == Some("y")).unwrap();
        assert!(f.is_marked("x", idx, Mark::Float));
        assert!(f.is_marked("y", idx, Mark::Float));
        assert!(!f.is_marked("n", idx, Mark::Float));
    }
}
