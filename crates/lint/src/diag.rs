//! Diagnostics and their two output formats: rustc-style text
//! (`file:line: rule: message`) and machine-readable JSON (`--format json`).

use std::fmt;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-indexed source line.
    pub line: u32,
    /// Rule identifier (e.g. `nondeterministic-iteration`).
    pub rule: &'static str,
    /// Human-readable explanation, one sentence.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Minimal JSON string escaping (the only JSON this crate emits; it stays
/// dependency-free on purpose).
fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render a full report as JSON: every diagnostic, plus the counts the CI
/// gate keys on (`new` is the number of non-baselined findings).
pub fn to_json(diags: &[Diagnostic], baselined: usize) -> String {
    let mut out = String::from("{\n  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"file\": ");
        escape(&d.file, &mut out);
        out.push_str(&format!(", \"line\": {}, \"rule\": ", d.line));
        escape(d.rule, &mut out);
        out.push_str(", \"message\": ");
        escape(&d.message, &mut out);
        out.push('}');
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"total\": {},\n  \"baselined\": {},\n  \"new\": {}\n}}\n",
        diags.len(),
        baselined,
        diags.len().saturating_sub(baselined)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_format_is_rustc_style() {
        let d = Diagnostic {
            file: "crates/serve/src/server.rs".into(),
            line: 42,
            rule: "panic-path",
            message: "`unwrap()` on a request path".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/serve/src/server.rs:42: panic-path: `unwrap()` on a request path"
        );
    }

    #[test]
    fn json_escapes_hostile_content() {
        let d = Diagnostic {
            file: "a\"b.rs".into(),
            line: 1,
            rule: "panic-path",
            message: "tab\there\nnewline".into(),
        };
        let json = to_json(&[d], 0);
        assert!(json.contains(r#""file": "a\"b.rs""#));
        assert!(json.contains(r#"tab\there\nnewline"#));
        assert!(json.contains("\"total\": 1"));
        assert!(json.contains("\"new\": 1"));
    }

    #[test]
    fn empty_report_is_valid_json_shape() {
        let json = to_json(&[], 0);
        assert!(json.contains("\"diagnostics\": []"));
        assert!(json.contains("\"total\": 0"));
    }
}
