//! `atlas-lint` CLI.
//!
//! ```text
//! atlas-lint [ROOT] [--format text|json] [--baseline PATH] [--write-baseline]
//! ```
//!
//! Lints every `.rs` file under ROOT (default: the current directory),
//! applies the ratchet baseline (default: `ROOT/lint-baseline.txt` when it
//! exists), prints diagnostics, and exits non-zero when any non-baselined
//! finding remains. `--write-baseline` rewrites the baseline from the
//! current findings instead of failing — the only sanctioned way to absorb
//! legacy debt; there is deliberately no `--fix`.

use atlas_lint::baseline::Baseline;
use atlas_lint::diag::to_json;
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    format: Format,
    baseline: Option<PathBuf>,
    write_baseline: bool,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn usage() -> ! {
    eprintln!("usage: atlas-lint [ROOT] [--format text|json] [--baseline PATH] [--write-baseline]");
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        root: PathBuf::from("."),
        format: Format::Text,
        baseline: None,
        write_baseline: false,
    };
    let mut root_set = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("text") => opts.format = Format::Text,
                Some("json") => opts.format = Format::Json,
                _ => usage(),
            },
            "--baseline" => match args.next() {
                Some(path) => opts.baseline = Some(PathBuf::from(path)),
                None => usage(),
            },
            "--write-baseline" => opts.write_baseline = true,
            "--help" | "-h" => usage(),
            _ if arg.starts_with('-') => usage(),
            _ if !root_set => {
                opts.root = PathBuf::from(arg);
                root_set = true;
            }
            _ => usage(),
        }
    }
    opts
}

fn main() -> ExitCode {
    let opts = parse_args();
    let diags = match atlas_lint::lint_workspace(&opts.root) {
        Ok(diags) => diags,
        Err(err) => {
            eprintln!("atlas-lint: cannot walk {}: {err}", opts.root.display());
            return ExitCode::from(2);
        }
    };

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| opts.root.join("lint-baseline.txt"));

    if opts.write_baseline {
        let text = Baseline::render(&diags);
        if let Err(err) = std::fs::write(&baseline_path, &text) {
            eprintln!(
                "atlas-lint: cannot write {}: {err}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
        eprintln!(
            "atlas-lint: wrote {} entries to {}",
            diags.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text),
        Err(_) => Baseline::default(), // no baseline file: everything is fresh
    };
    let applied = baseline.apply(&diags);

    match opts.format {
        Format::Json => print!("{}", to_json(&diags, applied.absorbed)),
        Format::Text => {
            for d in &applied.fresh {
                println!("{d}");
            }
            for (file, rule) in &applied.tightenable {
                eprintln!(
                    "atlas-lint: note: baseline for {file} / {rule} exceeds current count; \
                     run --write-baseline to tighten the ratchet"
                );
            }
            eprintln!(
                "atlas-lint: {} finding(s): {} new, {} baselined",
                diags.len(),
                applied.fresh.len(),
                applied.absorbed
            );
        }
    }

    if applied.fresh.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
