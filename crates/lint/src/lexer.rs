//! A hand-rolled Rust tokenizer, just deep enough for lint rules.
//!
//! The whole point of tokenizing (instead of regexing over source text) is
//! that `unwrap()` inside a string literal, `HashMap` inside a doc comment,
//! and `unsafe` inside a `/* ... */` block must **not** look like code. The
//! lexer therefore handles, precisely:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`), kept as [`TokKind::LineComment`] / [`TokKind::BlockComment`]
//!   trivia — rules need them for `SAFETY:` audits and waiver detection;
//! * string literals with escapes (`"a\"b"`), byte strings (`b"..."`), and
//!   raw strings with arbitrary hash fences (`r"..."`, `r#"..."#`,
//!   `br##"..."##`);
//! * char literals versus lifetimes (`'a'` is a literal, `'a` in `&'a str`
//!   is not);
//! * identifiers, number literals (including float detection for the wire
//!   float-hygiene rule) and single-character punctuation.
//!
//! It does **not** build an AST: rules pattern-match over the token stream,
//! which keeps them auditable and keeps this crate dependency-free.

/// What a token is. Text is kept where rules need to inspect it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `unsafe`, `HashMap`, ...).
    Ident(String),
    /// A single punctuation character (`.`, `[`, `!`, ...). Multi-character
    /// operators arrive as consecutive tokens (`::` is two `:`).
    Punct(char),
    /// A string or byte-string literal (raw or escaped); the *unparsed*
    /// contents between the quotes, escapes left as written.
    Str(String),
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A number literal. `float` is true when it is spelled with a decimal
    /// point or exponent (`1.5`, `2e9`), i.e. an `f32`/`f64` literal.
    Num {
        /// Spelled as a float (decimal point or exponent)?
        float: bool,
    },
    /// A `//`-style comment, full text including the slashes.
    LineComment(String),
    /// A `/* */`-style comment, full text including the delimiters.
    BlockComment(String),
}

/// One token plus the 1-indexed source line it starts on.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind and payload.
    pub kind: TokKind,
    /// 1-indexed line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self.kind, TokKind::Punct(p) if p == c)
    }

    /// True for comment trivia (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokKind::LineComment(_) | TokKind::BlockComment(_)
        )
    }
}

/// Tokenize `source`. Invalid input never panics: unknown bytes become
/// punctuation and unterminated literals run to end-of-file, which is the
/// forgiving behaviour a linter wants.
pub fn tokenize(source: &str) -> Vec<Tok> {
    Lexer {
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        toks: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    toks: Vec<Tok>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Tok> {
        while let Some(b) = self.peek(0) {
            let line = self.line;
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(line),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(line),
                b'"' => self.string(line),
                b'\'' => self.char_or_lifetime(line),
                b'0'..=b'9' => self.number(line),
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(line),
                _ => {
                    self.toks.push(Tok {
                        kind: TokKind::Punct(b as char),
                        line,
                    });
                    self.pos += 1;
                }
            }
        }
        self.toks
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn take_text(&mut self, start: usize) -> String {
        String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned()
    }

    fn bump_line(&mut self, b: u8) {
        if b == b'\n' {
            self.line += 1;
        }
    }

    fn line_comment(&mut self, line: u32) {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.pos += 1;
        }
        let text = self.take_text(start);
        self.toks.push(Tok {
            kind: TokKind::LineComment(text),
            line,
        });
    }

    fn block_comment(&mut self, line: u32) {
        let start = self.pos;
        self.pos += 2; // consume "/*"
        let mut depth = 1usize;
        while let Some(b) = self.peek(0) {
            if b == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if b == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
                if depth == 0 {
                    break;
                }
            } else {
                self.bump_line(b);
                self.pos += 1;
            }
        }
        let text = self.take_text(start);
        self.toks.push(Tok {
            kind: TokKind::BlockComment(text),
            line,
        });
    }

    /// A plain (non-raw) string body, opening quote at `self.pos`.
    fn string(&mut self, line: u32) {
        self.pos += 1; // opening quote
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => {
                    // Skip the escape and whatever follows it (covers \" \\
                    // and the first byte of \u{...}; the rest are ordinary
                    // bytes to this loop). Clamped so a trailing backslash
                    // at EOF cannot walk past the buffer.
                    self.pos = (self.pos + 2).min(self.bytes.len());
                }
                b'"' => break,
                _ => {
                    self.bump_line(b);
                    self.pos += 1;
                }
            }
        }
        let text = self.take_text(start);
        self.pos += 1; // closing quote (no-op at EOF)
        self.pos = self.pos.min(self.bytes.len());
        self.toks.push(Tok {
            kind: TokKind::Str(text),
            line,
        });
    }

    /// A raw string starting at `self.pos` (at the `r`): `r"..."` or
    /// `r#*"..."#*`. Returns false if it is not actually a raw string.
    fn raw_string(&mut self, line: u32) -> bool {
        let mut probe = self.pos + 1; // past 'r'
        let mut hashes = 0usize;
        while self.bytes.get(probe) == Some(&b'#') {
            hashes += 1;
            probe += 1;
        }
        if self.bytes.get(probe) != Some(&b'"') {
            return false;
        }
        self.pos = probe + 1;
        let start = self.pos;
        let end_fence: Vec<u8> = std::iter::once(b'"')
            .chain(std::iter::repeat_n(b'#', hashes))
            .collect();
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos..].starts_with(&end_fence) {
                let text = self.take_text(start);
                self.pos += end_fence.len();
                self.toks.push(Tok {
                    kind: TokKind::Str(text),
                    line,
                });
                return true;
            }
            self.bump_line(self.bytes[self.pos]);
            self.pos += 1;
        }
        // Unterminated: keep what we have.
        let text = self.take_text(start);
        self.toks.push(Tok {
            kind: TokKind::Str(text),
            line,
        });
        true
    }

    /// `'` either opens a char literal (`'x'`, `'\n'`) or marks a lifetime
    /// (`'a`, `'static`, `'_`). Lifetimes produce no token — rules never
    /// need them.
    fn char_or_lifetime(&mut self, line: u32) {
        if self.peek(1) == Some(b'\\') {
            // Escaped char literal: skip to the closing quote.
            self.pos += 2; // ' and backslash
            self.pos += 1; // escaped byte
            while let Some(b) = self.peek(0) {
                self.pos += 1;
                if b == b'\'' {
                    break;
                }
            }
            self.toks.push(Tok {
                kind: TokKind::Char,
                line,
            });
            return;
        }
        // Find the extent of the identifier-ish run after the quote.
        let mut end = self.pos + 1;
        while matches!(
            self.bytes.get(end),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
        ) {
            end += 1;
        }
        if self.bytes.get(end) == Some(&b'\'') && end > self.pos + 1 {
            // 'x' — a char literal (multi-byte UTF-8 chars fall through to
            // the non-ASCII arm below).
            self.pos = end + 1;
            self.toks.push(Tok {
                kind: TokKind::Char,
                line,
            });
        } else if end == self.pos + 1 && self.peek(1).is_some_and(|b| b >= 0x80) {
            // A non-ASCII char literal like '✓'.
            self.pos += 2;
            while let Some(b) = self.peek(0) {
                self.pos += 1;
                if b == b'\'' {
                    break;
                }
            }
            self.toks.push(Tok {
                kind: TokKind::Char,
                line,
            });
        } else {
            // A lifetime: consume the quote and the identifier, emit nothing.
            self.pos = end;
        }
    }

    fn number(&mut self, line: u32) {
        let mut float = false;
        if self.peek(0) == Some(b'0') && matches!(self.peek(1), Some(b'x' | b'X' | b'b' | b'o')) {
            // Radix literal: hex/binary/octal digits, never a float.
            self.pos += 2;
            while matches!(
                self.peek(0),
                Some(b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F' | b'_')
            ) {
                self.pos += 1;
            }
        } else {
            // Decimal integer part.
            while matches!(self.peek(0), Some(b'0'..=b'9' | b'_')) {
                self.pos += 1;
            }
            // Fractional part: a dot followed by a digit (not `..` ranges,
            // not method calls like `1.max(2)`).
            if self.peek(0) == Some(b'.') && matches!(self.peek(1), Some(b'0'..=b'9')) {
                float = true;
                self.pos += 1;
                while matches!(self.peek(0), Some(b'0'..=b'9' | b'_')) {
                    self.pos += 1;
                }
            }
            // Exponent.
            if matches!(self.peek(0), Some(b'e' | b'E'))
                && (matches!(self.peek(1), Some(b'0'..=b'9'))
                    || (matches!(self.peek(1), Some(b'+' | b'-'))
                        && matches!(self.peek(2), Some(b'0'..=b'9'))))
            {
                float = true;
                self.pos += 2;
                while matches!(self.peek(0), Some(b'0'..=b'9' | b'+' | b'-' | b'_')) {
                    self.pos += 1;
                }
            }
        }
        // Type suffix (1.5f64, 3usize).
        let suffix_start = self.pos;
        while matches!(
            self.peek(0),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
        ) {
            self.pos += 1;
        }
        let suffix = String::from_utf8_lossy(&self.bytes[suffix_start..self.pos]).into_owned();
        if suffix.starts_with('f') {
            float = true;
        }
        self.toks.push(Tok {
            kind: TokKind::Num { float },
            line,
        });
    }

    fn ident(&mut self, line: u32) {
        let start = self.pos;
        while matches!(
            self.peek(0),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
        ) {
            self.pos += 1;
        }
        let text = self.take_text(start);
        // `r"..."` / `b"..."` / `br#"..."#` — string prefixes lex as an
        // identifier first; re-dispatch when a quote or fence follows.
        if matches!(text.as_str(), "r" | "b" | "br" | "rb") {
            match self.peek(0) {
                Some(b'"') | Some(b'#') if text != "b" => {
                    // Rewind to the `r` and try the raw-string fence; on a
                    // raw identifier like `r#fn` this fails and we fall back
                    // to the plain identifier.
                    self.pos = if text.starts_with('b') {
                        start + 1
                    } else {
                        start
                    };
                    if self.raw_string(line) {
                        return;
                    }
                    self.pos = start + text.len();
                }
                Some(b'"') if text == "b" => {
                    self.pos = start + 1;
                    self.string(line);
                    return;
                }
                Some(b'\'') if text == "b" => {
                    self.pos = start + 1;
                    self.char_or_lifetime(line);
                    return;
                }
                _ => {}
            }
        }
        self.toks.push(Tok {
            kind: TokKind::Ident(text),
            line,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .into_iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn code_in_strings_and_comments_is_not_tokenized_as_idents() {
        let src = r###"
            // calling unwrap() here would be bad
            /* nested /* HashMap */ comment */
            let x = "value.unwrap()";
            let y = r#"HashMap::new() "quoted" inside raw"#;
            let z = b"unsafe bytes";
            real_ident();
        "###;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(ids.contains(&"let".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(!ids.contains(&"quoted".to_string()));
    }

    #[test]
    fn char_literals_are_not_lifetimes_and_vice_versa() {
        let toks = tokenize("let c: char = 'a'; fn f<'a>(x: &'a str) -> &'static str { x }");
        let chars = toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Char))
            .count();
        assert_eq!(chars, 1, "exactly one char literal");
        let ids = idents("let c = '\\n'; &'a str");
        assert!(!ids.contains(&"n".to_string()));
        // The lifetime's identifier is swallowed, not misread as code.
        assert!(!idents("&'static str").contains(&"static".to_string()));
    }

    #[test]
    fn comments_are_kept_with_text_and_line_numbers() {
        let toks = tokenize("fn a() {}\n// SAFETY: fine\nunsafe {}\n");
        let comment = toks.iter().find(|t| t.is_comment()).expect("comment kept");
        assert_eq!(comment.line, 2);
        match &comment.kind {
            TokKind::LineComment(text) => assert!(text.contains("SAFETY: fine")),
            other => panic!("unexpected kind {other:?}"),
        }
        let unsafe_tok = toks
            .iter()
            .find(|t| t.ident() == Some("unsafe"))
            .expect("unsafe kept");
        assert_eq!(unsafe_tok.line, 3);
    }

    #[test]
    fn float_literals_are_marked() {
        let toks = tokenize("let a = 1; let b = 1.5; let c = 2e9; let d = 3f64; let e = 0..4;");
        let floats: Vec<bool> = toks
            .iter()
            .filter_map(|t| match t.kind {
                TokKind::Num { float } => Some(float),
                _ => None,
            })
            .collect();
        assert_eq!(floats, vec![false, true, true, true, false, false]);
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        tokenize("let x = \"never closed");
        tokenize("let y = r#\"never closed");
        tokenize("/* never closed");
        tokenize("let c = 'x");
        tokenize("let trailing = \"escape at eof\\");
    }
}
