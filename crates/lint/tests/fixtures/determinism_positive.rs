// Fixture: true positives for `nondeterministic-iteration`.
// This file is NOT compiled — it is parsed by the lint fixture tests.
use std::collections::{HashMap, HashSet};

type Index = HashMap<String, usize>;

fn build() -> Index {
    Index::new()
}

fn method_call_on_annotated_binding(scores: HashMap<String, f64>) -> Vec<String> {
    scores.keys().cloned().collect() // line 12: flagged
}

fn for_loop_over_initialized_binding() {
    let mut seen = HashSet::new();
    seen.insert(1);
    for value in &seen { // line 18: flagged
        let _ = value;
    }
}

fn alias_and_returning_fn_propagate() {
    let index = build();
    for (name, pos) in index.iter() { // line 25: flagged
        let _ = (name, pos);
    }
}
