// Fixture: true positives for `missing-safety-comment`.

fn erase_lifetime(x: &u32) -> &'static u32 {
    unsafe { std::mem::transmute(x) } // line 4: flagged, no SAFETY comment
}

// A stale comment that is not a SAFETY contract does not count.
fn another(x: &u32) -> &'static u32 {
    unsafe { std::mem::transmute(x) } // line 9: flagged
}
