// Fixture: sites that must NOT be flagged by `wire-float-format`.

fn integers_are_fine(count: usize) -> String {
    format!("{count} rows")
}

fn strings_are_fine(name: &str) -> String {
    let label = format!("dataset {name}");
    label.to_string()
}

fn the_codec_is_waived(x: f64) -> String {
    // lint: wire-float-ok (this is the hex-bit codec; it formats the bit pattern)
    format!("{:016x}", x.to_bits())
}

fn comments_do_not_match(_x: f64) {
    // format!("{_x}") in a comment is not code.
    let doc = "format!(\"{x}\") in a string is not code either";
    let _ = doc;
}
