// Fixture: a `tests/*.rs` integration file with no test in it — flagged by
// `testless-integration-file` when parsed under a tests/ path.

fn helper_that_asserts_nothing() -> u32 {
    41 + 1
}

fn main_like_body() {
    let _ = helper_that_asserts_nothing();
}
