// Fixture: integration files that must NOT be flagged by
// `testless-integration-file`.

#[test]
fn has_a_real_test() {
    assert_eq!(1 + 1, 2);
}
