// Fixture: sites that must NOT be flagged by `panic-path` / `slice-index`.

fn unwrap_or_else_is_legal(value: Option<u32>) -> u32 {
    value.unwrap_or_else(|| 0)
}

fn unwrap_or_default_is_legal(value: Option<u32>) -> u32 {
    value.unwrap_or_default()
}

fn expect_err_is_legal(value: Result<(), String>) -> String {
    match value {
        Err(e) => e,
        Ok(()) => String::new(),
    }
}

fn strings_and_comments_do_not_match() -> &'static str {
    // Saying .unwrap() or panic! in a comment is fine.
    "error: refusing to .unwrap() or panic!(...) here"
}

fn attributes_are_not_indexing() {
    #[allow(dead_code)]
    fn inner() {}
}

fn array_literals_and_macros_are_not_indexing() -> Vec<[u32; 2]> {
    vec![[1, 2], [3, 4]]
}

fn full_range_never_panics(rows: &[u64]) -> &[u64] {
    &rows[..]
}

fn checked_get_is_the_fix(rows: &[u64], idx: usize) -> Option<u64> {
    rows.get(idx).copied()
}

fn waived_with_proof(rows: &[u64]) -> u64 {
    let mut total = 0;
    for i in 0..rows.len() {
        // lint: slice-index-ok (i is loop-bounded by rows.len())
        total += rows[i];
    }
    total
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let rows = [1u64, 2];
        assert_eq!(rows[0], Some(1u64).unwrap());
    }
}
