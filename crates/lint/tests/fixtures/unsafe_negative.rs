// Fixture: sites that must NOT be flagged by `missing-safety-comment`.

fn documented(x: &u32) -> &'static u32 {
    // SAFETY: the pointee is a leaked allocation, so 'static genuinely holds.
    unsafe { std::mem::transmute(x) }
}

// SAFETY: the contract may sit a few lines above the unsafe token, e.g.
// above the signature of an unsafe fn.
unsafe fn documented_above_signature() {}

fn strings_do_not_count() -> &'static str {
    "unsafe { } in a string is not an unsafe block"
}
