// Fixture: true positives for `panic-path` and `slice-index`.

fn unwrap_on_request_path(value: Option<u32>) -> u32 {
    value.unwrap() // line 4: panic-path
}

fn expect_on_request_path(value: Option<u32>) -> u32 {
    value.expect("present") // line 8: panic-path
}

fn explicit_panics(kind: u32) {
    match kind {
        0 => panic!("boom"),        // line 13: panic-path
        1 => unreachable!("never"), // line 14: panic-path
        _ => todo!(),               // line 15: panic-path
    }
}

fn unchecked_index(rows: &[u64], idx: usize) -> u64 {
    rows[idx] // line 20: slice-index
}

fn chained_index(matrix: &[Vec<u64>], i: usize) -> u64 {
    matrix[i][0] // line 24: slice-index, twice
}
