// Fixture: true positives for `wire-float-format` (scoped to wire paths).

fn positional_argument(score: f64) -> String {
    format!("{}", score) // line 4: flagged
}

fn inline_capture(score: f64) -> String {
    format!("score={score:.3}") // line 8: flagged (captured through the literal)
}

fn float_literal_to_string() -> String {
    let x = 1.5;
    x.to_string() // line 13: flagged
}

fn write_macro(out: &mut String, epsilon: f64) {
    use std::fmt::Write;
    let _ = write!(out, "{epsilon}"); // line 18: flagged
}
