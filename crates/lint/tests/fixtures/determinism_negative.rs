// Fixture: sites that must NOT be flagged by `nondeterministic-iteration`.
use std::collections::HashMap;

fn strings_and_comments_do_not_match() {
    // A comment mentioning map.iter() over a HashMap is not code.
    let doc = "call map.iter() on your HashMap";
    let _ = doc;
}

fn vec_iteration_is_fine(rows: Vec<u64>) -> u64 {
    let mut total = 0;
    for row in &rows {
        total += row;
    }
    total + rows.iter().sum::<u64>()
}

fn ranges_over_hash_len_are_fine(map: HashMap<u32, u32>) -> Vec<usize> {
    // `0..map.len()` mentions the binding but iterates a range, not the map.
    (0..map.len()).collect()
}

fn same_name_different_function_is_scoped() {
    // `scores` is a Vec here even though another fixture fn has a HashMap
    // binding of the same name in another file; per-function scoping keeps
    // this clean.
    let scores: Vec<f64> = Vec::new();
    for s in &scores {
        let _ = s;
    }
}

fn waived_with_reason(counts: HashMap<String, u64>) -> u64 {
    // lint: nondeterministic-ok (summing is order-insensitive)
    counts.values().sum()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_is_exempt() {
        let m: HashMap<u32, u32> = HashMap::new();
        for x in &m {
            let _ = x;
        }
    }
}
