//! Fixture tests: every rule is exercised against files under
//! `tests/fixtures/` with true positives, waiver suppression, and
//! strings/comments that must NOT match. Fixtures are parsed by the linter,
//! never compiled (the workspace walker skips `fixtures` directories for
//! the same reason).

use atlas_lint::lint_source;
use std::path::Path;

/// Lint one fixture under a synthetic workspace-relative path that puts it
/// in the wanted rule's scope.
fn lint_fixture(fixture: &str, as_path: &str) -> Vec<atlas_lint::diag::Diagnostic> {
    let on_disk = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    let text = std::fs::read_to_string(&on_disk)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", on_disk.display()));
    lint_source(as_path, &text)
}

fn rules_of(diags: &[atlas_lint::diag::Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.rule).collect()
}

fn lines_of(diags: &[atlas_lint::diag::Diagnostic], rule: &str) -> Vec<u32> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

#[test]
fn determinism_positives_are_found() {
    let diags = lint_fixture("determinism_positive.rs", "crates/core/src/fixture.rs");
    assert_eq!(
        lines_of(&diags, "nondeterministic-iteration"),
        vec![12, 18, 25],
        "annotated binding, initialized binding, alias/returning-fn: {diags:?}"
    );
}

#[test]
fn determinism_negatives_stay_clean() {
    let diags = lint_fixture("determinism_negative.rs", "crates/core/src/fixture.rs");
    assert!(diags.is_empty(), "false positives: {diags:?}");
}

#[test]
fn determinism_rule_is_scoped_to_pipeline_crates() {
    let diags = lint_fixture("determinism_positive.rs", "crates/datagen/src/fixture.rs");
    assert!(
        !rules_of(&diags).contains(&"nondeterministic-iteration"),
        "datagen is out of the determinism scope: {diags:?}"
    );
}

#[test]
fn wire_float_positives_are_found() {
    let diags = lint_fixture("wire_floats_positive.rs", "crates/serve/src/wire/fx.rs");
    assert_eq!(
        lines_of(&diags, "wire-float-format"),
        vec![4, 8, 13, 18],
        "positional, inline capture, to_string, write!: {diags:?}"
    );
}

#[test]
fn wire_float_negatives_stay_clean() {
    let diags = lint_fixture("wire_floats_negative.rs", "crates/serve/src/wire/fx.rs");
    assert!(
        !rules_of(&diags).contains(&"wire-float-format"),
        "false positives: {diags:?}"
    );
}

#[test]
fn wire_float_rule_is_scoped_to_wire_modules() {
    let diags = lint_fixture("wire_floats_positive.rs", "crates/serve/src/server.rs");
    assert!(
        !rules_of(&diags).contains(&"wire-float-format"),
        "float formatting outside wire/ is legal: {diags:?}"
    );
}

#[test]
fn panic_and_index_positives_are_found() {
    let diags = lint_fixture("panic_positive.rs", "crates/serve/src/fixture.rs");
    assert_eq!(
        lines_of(&diags, "panic-path"),
        vec![4, 8, 13, 14, 15],
        "unwrap, expect, panic!, unreachable!, todo!: {diags:?}"
    );
    assert_eq!(
        lines_of(&diags, "slice-index"),
        vec![20, 24, 24],
        "plain index plus a chained double index: {diags:?}"
    );
}

#[test]
fn panic_and_index_negatives_stay_clean() {
    let diags = lint_fixture("panic_negative.rs", "crates/serve/src/fixture.rs");
    assert!(diags.is_empty(), "false positives: {diags:?}");
}

#[test]
fn panic_rules_are_scoped_to_serve() {
    let diags = lint_fixture("panic_positive.rs", "crates/core/src/fixture.rs");
    assert!(
        !rules_of(&diags).contains(&"panic-path") && !rules_of(&diags).contains(&"slice-index"),
        "panic-freedom is a serve-only contract: {diags:?}"
    );
}

#[test]
fn unsafe_positives_are_found_everywhere_including_vendor() {
    for path in ["crates/core/src/fx.rs", "vendor/minirayon/src/fx.rs"] {
        let diags = lint_fixture("unsafe_positive.rs", path);
        assert_eq!(
            lines_of(&diags, "missing-safety-comment").len(),
            2,
            "both undocumented unsafe sites at {path}: {diags:?}"
        );
    }
}

#[test]
fn unsafe_negatives_stay_clean() {
    let diags = lint_fixture("unsafe_negative.rs", "crates/core/src/fx.rs");
    assert!(
        !rules_of(&diags).contains(&"missing-safety-comment"),
        "false positives: {diags:?}"
    );
}

#[test]
fn unsafe_rule_is_unwaivable() {
    let source = "fn f(x: &u32) -> &'static u32 {\n\
                  \x20   // lint: missing-safety-comment (trying to waive)\n\
                  \x20   unsafe { std::mem::transmute(x) }\n\
                  }\n";
    let diags = lint_source("crates/core/src/fx.rs", source);
    assert!(
        rules_of(&diags).contains(&"missing-safety-comment"),
        "no waiver key exists for the unsafe audit: {diags:?}"
    );
}

#[test]
fn testless_integration_files_are_flagged() {
    let diags = lint_fixture("testless_positive.rs", "crates/serve/tests/fixture.rs");
    assert_eq!(lines_of(&diags, "testless-integration-file"), vec![1]);
    // The same content deeper than tests/ (a helper module) is exempt.
    let diags = lint_fixture("testless_positive.rs", "crates/serve/tests/util/helper.rs");
    assert!(!rules_of(&diags).contains(&"testless-integration-file"));
}

#[test]
fn integration_files_with_tests_stay_clean() {
    let diags = lint_fixture("testless_negative.rs", "crates/serve/tests/fixture.rs");
    assert!(
        !rules_of(&diags).contains(&"testless-integration-file"),
        "false positives: {diags:?}"
    );
}

#[test]
fn undocumented_pub_flags_the_facade_only() {
    let source = "#![warn(missing_docs)]\n\
                  pub use other as alias;\n\
                  /// Documented.\n\
                  pub fn documented() {}\n";
    let diags = lint_source("src/lib.rs", source);
    assert_eq!(lines_of(&diags, "undocumented-pub"), vec![2]);
    // Anywhere else the rule is out of scope.
    let diags = lint_source("crates/core/src/lib.rs", source);
    assert!(!rules_of(&diags).contains(&"undocumented-pub"));
}

#[test]
fn waivers_suppress_only_their_own_key() {
    let source = "fn f(v: Vec<u32>, i: usize) -> u32 {\n\
                  \x20   // lint: panic-ok (wrong key for an index)\n\
                  \x20   v[i]\n\
                  }\n";
    let diags = lint_source("crates/serve/src/fx.rs", source);
    assert!(
        rules_of(&diags).contains(&"slice-index"),
        "a panic-ok waiver must not silence slice-index: {diags:?}"
    );
}

/// The acceptance gate in test form: the whole workspace lints clean against
/// the committed baseline (which is empty — see lint-baseline.txt).
#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let diags = atlas_lint::lint_workspace(&root).expect("workspace walk succeeds");
    let baseline_text = std::fs::read_to_string(root.join("lint-baseline.txt")).unwrap_or_default();
    let applied = atlas_lint::baseline::Baseline::parse(&baseline_text).apply(&diags);
    assert!(
        applied.fresh.is_empty(),
        "non-baselined findings:\n{}",
        applied
            .fresh
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
