//! Error type of the Atlas engine.

use std::fmt;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, AtlasError>;

/// Errors raised by the map-generation engine.
#[derive(Debug, Clone, PartialEq)]
pub enum AtlasError {
    /// The user query (or a region query) failed to parse or evaluate.
    Query(atlas_query::QueryError),
    /// The storage layer reported an error.
    Columnar(String),
    /// The user query selects no rows, so there is nothing to map.
    EmptyWorkingSet,
    /// No attribute of the table can be cut (all are constant, identifiers, or
    /// excluded by the configuration).
    NoCuttableAttributes,
    /// The configuration is inconsistent (e.g. zero splits per attribute).
    InvalidConfig(String),
    /// A shard or coordinator failed during a distributed exploration (a
    /// shard died, timed out past its retry, or returned an inconsistent
    /// dataset layout).
    Distributed(String),
    /// The request's deadline expired before the work finished. Carries how
    /// much of the budget was spent and which phase of the pipeline was
    /// running, so front-ends can answer with work-done-so-far metadata
    /// (`atlas-serve` maps this onto HTTP `504 Gateway Timeout`).
    Deadline {
        /// The total budget the request arrived with, in milliseconds.
        budget_ms: u64,
        /// How long the request had been running when the deadline fired.
        elapsed_ms: u64,
        /// The pipeline phase that was running (or about to run) when the
        /// deadline fired.
        phase: String,
    },
}

impl AtlasError {
    /// True if the error was caused by the caller's input (an unparseable or
    /// unanswerable query, inconsistent options) rather than by the engine
    /// itself. Front-ends use this split to map errors onto their own
    /// vocabulary — `atlas-serve` turns user errors into HTTP `4xx` statuses
    /// and everything else into `5xx`.
    pub fn is_user_error(&self) -> bool {
        match self {
            AtlasError::Query(_)
            | AtlasError::EmptyWorkingSet
            | AtlasError::NoCuttableAttributes
            | AtlasError::InvalidConfig(_) => true,
            AtlasError::Columnar(_) | AtlasError::Distributed(_) | AtlasError::Deadline { .. } => {
                false
            }
        }
    }
}

impl fmt::Display for AtlasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtlasError::Query(e) => write!(f, "query error: {e}"),
            AtlasError::Columnar(msg) => write!(f, "storage error: {msg}"),
            AtlasError::EmptyWorkingSet => {
                f.write_str("the user query selects no rows; nothing to map")
            }
            AtlasError::NoCuttableAttributes => {
                f.write_str("no attribute can be cut into a candidate map")
            }
            AtlasError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            AtlasError::Distributed(msg) => write!(f, "distributed exploration error: {msg}"),
            AtlasError::Deadline {
                budget_ms,
                elapsed_ms,
                phase,
            } => write!(
                f,
                "deadline exceeded after {elapsed_ms} ms of a {budget_ms} ms budget \
                 (during {phase})"
            ),
        }
    }
}

impl std::error::Error for AtlasError {}

impl From<atlas_query::QueryError> for AtlasError {
    fn from(err: atlas_query::QueryError) -> Self {
        AtlasError::Query(err)
    }
}

impl From<atlas_columnar::ColumnarError> for AtlasError {
    fn from(err: atlas_columnar::ColumnarError) -> Self {
        AtlasError::Columnar(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(AtlasError::EmptyWorkingSet.to_string().contains("no rows"));
        assert!(AtlasError::InvalidConfig("zero splits".into())
            .to_string()
            .contains("zero splits"));
        let e: AtlasError = atlas_query::QueryError::UnknownAttribute("x".into()).into();
        assert!(e.to_string().contains('x'));
        let e: AtlasError = atlas_columnar::ColumnarError::EmptySchema.into();
        assert!(matches!(e, AtlasError::Columnar(_)));
        assert!(AtlasError::Distributed("shard 2 unreachable".into())
            .to_string()
            .contains("shard 2 unreachable"));
        let deadline = AtlasError::Deadline {
            budget_ms: 100,
            elapsed_ms: 123,
            phase: "candidates".into(),
        };
        let text = deadline.to_string();
        assert!(text.contains("100 ms budget"), "{text}");
        assert!(text.contains("123 ms"), "{text}");
        assert!(text.contains("candidates"), "{text}");
    }

    #[test]
    fn user_errors_are_distinguished_from_engine_errors() {
        assert!(AtlasError::EmptyWorkingSet.is_user_error());
        assert!(AtlasError::NoCuttableAttributes.is_user_error());
        assert!(AtlasError::InvalidConfig("x".into()).is_user_error());
        assert!(
            AtlasError::Query(atlas_query::QueryError::UnknownAttribute("x".into()))
                .is_user_error()
        );
        assert!(!AtlasError::Columnar("disk on fire".into()).is_user_error());
        assert!(!AtlasError::Distributed("shard died".into()).is_user_error());
        assert!(!AtlasError::Deadline {
            budget_ms: 1,
            elapsed_ms: 2,
            phase: "working".into()
        }
        .is_user_error());
    }
}
