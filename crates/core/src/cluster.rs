//! Agglomerative clustering of candidate maps (step 2b of the framework).
//!
//! The paper favours agglomerative hierarchical methods (and cites SLINK)
//! because (a) the number of clusters is unknown a priori, ruling out
//! centroid methods, and (b) a hierarchy makes it easy to control the size of
//! the clusters and hence the complexity of the merged maps.
//!
//! Two implementations are provided:
//!
//! * [`slink`] — the classic SLINK algorithm (Sibson 1973), `O(n²)`, single
//!   linkage only, returning the full dendrogram;
//! * [`cluster_maps`] — a generic agglomerative algorithm supporting single,
//!   complete and average linkage, with the stopping rules Atlas needs
//!   (distance threshold and maximum cluster size).
//!
//! With at most a few dozen candidate maps, the `O(n³)` generic algorithm is
//! never a bottleneck; SLINK exists both for fidelity to the paper and as a
//! cross-check in the tests.

use crate::distance::DistanceMatrix;
use crate::error::{AtlasError, Result};
use minirayon::ThreadPool;

/// Linkage criterion for the generic agglomerative algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Linkage {
    /// Distance between clusters = minimum pairwise distance (SLINK-style).
    #[default]
    Single,
    /// Distance between clusters = maximum pairwise distance.
    Complete,
    /// Distance between clusters = unweighted average pairwise distance.
    Average,
}

/// Configuration of the map-clustering step.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteringConfig {
    /// Linkage criterion.
    pub linkage: Linkage,
    /// Two clusters are only merged while their linkage distance is at most
    /// this threshold. `None` disables the threshold (merging is then limited
    /// only by `max_cluster_size`).
    pub distance_threshold: Option<f64>,
    /// Maximum number of candidate maps per cluster. Because candidate maps
    /// are one attribute each, this bounds the number of predicates of the
    /// merged region queries (the paper targets ≤ 3).
    pub max_cluster_size: usize,
}

impl Default for ClusteringConfig {
    fn default() -> Self {
        ClusteringConfig {
            // The threshold is calibrated for the normalised VI distance:
            // genuinely independent attributes score ≈ 1.0 (up to sampling
            // noise), while even dependencies that binary cuts coarsen heavily
            // stay below ≈ 0.95.
            linkage: Linkage::Single,
            distance_threshold: Some(0.95),
            max_cluster_size: 3,
        }
    }
}

impl ClusteringConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.max_cluster_size == 0 {
            return Err(AtlasError::InvalidConfig(
                "max_cluster_size must be at least 1".to_string(),
            ));
        }
        if let Some(t) = self.distance_threshold {
            if t < 0.0 {
                return Err(AtlasError::InvalidConfig(
                    "distance_threshold must be non-negative".to_string(),
                ));
            }
        }
        Ok(())
    }
}

/// One merge step of a dendrogram: the two clusters merged (identified by
/// their representative item index) and the linkage distance at which the
/// merge happened.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeStep {
    /// Representative of the first cluster merged.
    pub left: usize,
    /// Representative of the second cluster merged.
    pub right: usize,
    /// Linkage distance of the merge.
    pub distance: f64,
}

/// A single-linkage dendrogram as produced by [`slink`].
#[derive(Debug, Clone)]
pub struct Dendrogram {
    /// Merge steps in order of increasing distance.
    pub steps: Vec<MergeStep>,
    /// Number of items clustered.
    pub num_items: usize,
}

impl Dendrogram {
    /// Cut the dendrogram at a distance threshold: merges with a distance
    /// strictly greater than `threshold` are ignored. Returns the resulting
    /// clusters as lists of item indices.
    pub fn cut_at(&self, threshold: f64) -> Vec<Vec<usize>> {
        let mut uf = UnionFind::new(self.num_items);
        for step in &self.steps {
            if step.distance <= threshold {
                uf.union(step.left, step.right);
            }
        }
        uf.clusters()
    }
}

/// The SLINK algorithm (Sibson 1973): optimally efficient single-linkage
/// hierarchical clustering from a distance matrix.
///
/// Returns the dendrogram (pointer representation converted to merge steps).
pub fn slink(distances: &DistanceMatrix) -> Dendrogram {
    let n = distances.len();
    if n == 0 {
        return Dendrogram {
            steps: Vec::new(),
            num_items: 0,
        };
    }
    // Pointer representation: lambda[i] = distance at which i is last merged,
    // pi[i] = the representative it merges into.
    let mut lambda = vec![f64::INFINITY; n];
    let mut pi = vec![0usize; n];
    let mut m = vec![0.0f64; n];
    for i in 0..n {
        pi[i] = i;
        lambda[i] = f64::INFINITY;
        for (j, mj) in m.iter_mut().enumerate().take(i) {
            *mj = distances.get(i, j);
        }
        for j in 0..i {
            if lambda[j] >= m[j] {
                m[pi[j]] = m[pi[j]].min(lambda[j]);
                lambda[j] = m[j];
                pi[j] = i;
            } else {
                m[pi[j]] = m[pi[j]].min(m[j]);
            }
        }
        for j in 0..i {
            if lambda[j] >= lambda[pi[j]] {
                pi[j] = i;
            }
        }
    }
    // Convert the pointer representation into merge steps sorted by distance.
    let mut steps: Vec<MergeStep> = (0..n)
        .filter(|&i| lambda[i].is_finite())
        .map(|i| MergeStep {
            left: i,
            right: pi[i],
            distance: lambda[i],
        })
        .collect();
    steps.sort_by(|a, b| a.distance.total_cmp(&b.distance));
    Dendrogram {
        steps,
        num_items: n,
    }
}

/// Generic agglomerative clustering with the Atlas stopping rules.
///
/// Starting from one cluster per candidate map, repeatedly merge the two
/// closest clusters (under the chosen linkage) while:
///
/// * the linkage distance does not exceed `distance_threshold` (if set), and
/// * the merged cluster would not exceed `max_cluster_size` maps.
///
/// Returns the clusters as lists of candidate indices, each sorted, ordered by
/// their smallest member.
pub fn cluster_maps(
    distances: &DistanceMatrix,
    config: &ClusteringConfig,
) -> Result<Vec<Vec<usize>>> {
    cluster_maps_with_pool(distances, config, ThreadPool::sequential())
}

/// [`cluster_maps`] with the closest-pair search of each round split across a
/// thread pool (row-blocked over the first cluster index).
///
/// The selected pair — smallest linkage distance, ties broken by the smallest
/// `(a, b)` index pair — is a pure function of the matrix, so the clustering
/// is **identical at every thread count**. Small instances (fewer than
/// [`PARALLEL_SEARCH_THRESHOLD`] clusters) search sequentially; the scan is
/// memory-bound and not worth task dispatch below that.
pub fn cluster_maps_with_pool(
    distances: &DistanceMatrix,
    config: &ClusteringConfig,
    pool: &ThreadPool,
) -> Result<Vec<Vec<usize>>> {
    config.validate()?;
    let n = distances.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    loop {
        // Find the closest admissible pair of clusters.
        let best = if pool.threads() > 1 && clusters.len() >= PARALLEL_SEARCH_THRESHOLD {
            let clusters = &clusters;
            pool.par_map_indexed(clusters.len(), 4, |a| {
                best_partner_of(distances, clusters, config, a)
            })
            .into_iter()
            .flatten()
            .min_by(|x, y| pair_order(*x, *y))
        } else {
            let mut best: Option<(f64, usize, usize)> = None;
            for a in 0..clusters.len() {
                if let Some(candidate) = best_partner_of(distances, &clusters, config, a) {
                    if best.is_none_or(|b| pair_order(candidate, b).is_lt()) {
                        best = Some(candidate);
                    }
                }
            }
            best
        };
        match best {
            Some((_, a, b)) => {
                let merged: Vec<usize> = {
                    let mut m = clusters[a].clone();
                    m.extend_from_slice(&clusters[b]);
                    m
                };
                // Remove b first (it has the larger index).
                clusters.remove(b);
                clusters.remove(a);
                clusters.push(merged);
            }
            None => break,
        }
    }
    for cluster in &mut clusters {
        cluster.sort_unstable();
    }
    clusters.sort_by_key(|c| c[0]);
    Ok(clusters)
}

/// Minimum number of clusters before the closest-pair search of a round is
/// split across the thread pool.
pub const PARALLEL_SEARCH_THRESHOLD: usize = 24;

/// The best admissible merge partner for cluster `a` among clusters `a+1..`:
/// `(distance, a, b)` of the closest pair passing the size and threshold
/// constraints, or `None` if no pair is admissible.
fn best_partner_of(
    distances: &DistanceMatrix,
    clusters: &[Vec<usize>],
    config: &ClusteringConfig,
    a: usize,
) -> Option<(f64, usize, usize)> {
    let mut best: Option<(f64, usize, usize)> = None;
    for b in (a + 1)..clusters.len() {
        if clusters[a].len() + clusters[b].len() > config.max_cluster_size {
            continue;
        }
        let d = linkage_distance(distances, &clusters[a], &clusters[b], config.linkage);
        if let Some(threshold) = config.distance_threshold {
            if d > threshold {
                continue;
            }
        }
        let candidate = (d, a, b);
        if best.is_none_or(|current| pair_order(candidate, current).is_lt()) {
            best = Some(candidate);
        }
    }
    best
}

/// Total order on merge candidates: by distance, ties broken by the smaller
/// `(a, b)` index pair — exactly the pair the sequential lexicographic scan
/// with a strict `<` distance test would keep.
fn pair_order(x: (f64, usize, usize), y: (f64, usize, usize)) -> std::cmp::Ordering {
    x.0.total_cmp(&y.0)
        .then_with(|| x.1.cmp(&y.1))
        .then_with(|| x.2.cmp(&y.2))
}

fn linkage_distance(distances: &DistanceMatrix, a: &[usize], b: &[usize], linkage: Linkage) -> f64 {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    let mut count = 0usize;
    for &i in a {
        for &j in b {
            let d = distances.get(i, j);
            min = min.min(d);
            max = max.max(d);
            sum += d;
            count += 1;
        }
    }
    match linkage {
        Linkage::Single => min,
        Linkage::Complete => max,
        Linkage::Average => {
            if count == 0 {
                0.0
            } else {
                sum / count as f64
            }
        }
    }
}

/// Minimal union–find used to cut dendrograms.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[rb] = ra;
        }
    }

    fn clusters(&mut self) -> Vec<Vec<usize>> {
        let n = self.parent.len();
        let mut groups: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for i in 0..n {
            let root = self.find(i);
            groups.entry(root).or_default().push(i);
        }
        groups.into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A distance matrix with two tight groups {0,1,2} and {3,4}, far apart.
    fn two_group_matrix() -> DistanceMatrix {
        let mut m = DistanceMatrix::zeros(5);
        let close = 0.1;
        let far = 0.9;
        for i in 0..5 {
            for j in (i + 1)..5 {
                let same_group = (i < 3) == (j < 3);
                m.set(i, j, if same_group { close } else { far });
            }
        }
        m
    }

    #[test]
    fn recovers_planted_groups() {
        let m = two_group_matrix();
        let clusters = cluster_maps(&m, &ClusteringConfig::default()).unwrap();
        assert_eq!(clusters, vec![vec![0, 1, 2], vec![3, 4]]);
    }

    #[test]
    fn distance_threshold_blocks_far_merges() {
        let m = two_group_matrix();
        let cfg = ClusteringConfig {
            distance_threshold: Some(0.05),
            ..ClusteringConfig::default()
        };
        let clusters = cluster_maps(&m, &cfg).unwrap();
        assert_eq!(clusters.len(), 5, "nothing should merge below 0.05");
        // Without any threshold everything merges up to the size cap.
        let cfg = ClusteringConfig {
            distance_threshold: None,
            max_cluster_size: 5,
            ..ClusteringConfig::default()
        };
        let clusters = cluster_maps(&m, &cfg).unwrap();
        assert_eq!(clusters.len(), 1);
    }

    #[test]
    fn max_cluster_size_is_enforced() {
        let m = two_group_matrix();
        let cfg = ClusteringConfig {
            max_cluster_size: 2,
            ..ClusteringConfig::default()
        };
        let clusters = cluster_maps(&m, &cfg).unwrap();
        for cluster in &clusters {
            assert!(cluster.len() <= 2);
        }
        // All five items are still present exactly once.
        let mut all: Vec<usize> = clusters.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn linkages_differ_on_chain_shaped_data() {
        // A chain: 0-1 close, 1-2 close, 0-2 far. Single linkage merges all
        // three; complete linkage (with a threshold below the far distance)
        // keeps the chain ends apart.
        let mut m = DistanceMatrix::zeros(3);
        m.set(0, 1, 0.2);
        m.set(1, 2, 0.2);
        m.set(0, 2, 0.9);
        let single = cluster_maps(
            &m,
            &ClusteringConfig {
                linkage: Linkage::Single,
                distance_threshold: Some(0.5),
                max_cluster_size: 3,
            },
        )
        .unwrap();
        assert_eq!(single.len(), 1);
        let complete = cluster_maps(
            &m,
            &ClusteringConfig {
                linkage: Linkage::Complete,
                distance_threshold: Some(0.5),
                max_cluster_size: 3,
            },
        )
        .unwrap();
        assert_eq!(complete.len(), 2);
        let average = cluster_maps(
            &m,
            &ClusteringConfig {
                linkage: Linkage::Average,
                distance_threshold: Some(0.5),
                max_cluster_size: 3,
            },
        )
        .unwrap();
        // Average of {0,1}+{2} distances = (0.9 + 0.2)/2 = 0.55 > 0.5: stays split.
        assert_eq!(average.len(), 2);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let clusters =
            cluster_maps(&DistanceMatrix::zeros(0), &ClusteringConfig::default()).unwrap();
        assert!(clusters.is_empty());
        let clusters =
            cluster_maps(&DistanceMatrix::zeros(1), &ClusteringConfig::default()).unwrap();
        assert_eq!(clusters, vec![vec![0]]);
        let dendro = slink(&DistanceMatrix::zeros(0));
        assert!(dendro.steps.is_empty());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let cfg = ClusteringConfig {
            max_cluster_size: 0,
            ..ClusteringConfig::default()
        };
        assert!(cluster_maps(&DistanceMatrix::zeros(2), &cfg).is_err());
        let cfg = ClusteringConfig {
            distance_threshold: Some(-1.0),
            ..ClusteringConfig::default()
        };
        assert!(cluster_maps(&DistanceMatrix::zeros(2), &cfg).is_err());
    }

    #[test]
    fn slink_matches_naive_single_linkage_cut() {
        let m = two_group_matrix();
        let dendro = slink(&m);
        assert_eq!(dendro.num_items, 5);
        assert_eq!(dendro.steps.len(), 4, "n-1 merges in a full dendrogram");
        // Cutting at 0.5 recovers the two planted groups.
        let mut clusters = dendro.cut_at(0.5);
        clusters.sort_by_key(|c| c[0]);
        assert_eq!(clusters, vec![vec![0, 1, 2], vec![3, 4]]);
        // Cutting below every distance keeps singletons; cutting above merges all.
        assert_eq!(dendro.cut_at(0.01).len(), 5);
        assert_eq!(dendro.cut_at(1.0).len(), 1);
        // Merge distances are non-decreasing.
        for w in dendro.steps.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn pooled_clustering_is_identical_to_sequential_on_large_matrices() {
        // Large enough to cross PARALLEL_SEARCH_THRESHOLD.
        let n = 40;
        let mut m = DistanceMatrix::zeros(n);
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for i in 0..n {
            for j in (i + 1)..n {
                m.set(i, j, next());
            }
        }
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let cfg = ClusteringConfig {
                linkage,
                distance_threshold: Some(0.5),
                max_cluster_size: 6,
            };
            let sequential = cluster_maps(&m, &cfg).unwrap();
            let pool = minirayon::ThreadPool::new(4);
            let pooled = cluster_maps_with_pool(&m, &cfg, &pool).unwrap();
            assert_eq!(sequential, pooled, "{linkage:?}");
        }
    }

    #[test]
    fn slink_agrees_with_generic_single_linkage_on_random_matrices() {
        // Deterministic pseudo-random distances.
        for seed in 0..5u64 {
            let n = 8;
            let mut m = DistanceMatrix::zeros(n);
            let mut state = seed * 2654435761 + 1;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as f64) / (u32::MAX as f64)
            };
            for i in 0..n {
                for j in (i + 1)..n {
                    m.set(i, j, next());
                }
            }
            let threshold = 0.4;
            let mut from_slink = slink(&m).cut_at(threshold);
            from_slink.sort_by_key(|c| c[0]);
            let from_generic = cluster_maps(
                &m,
                &ClusteringConfig {
                    linkage: Linkage::Single,
                    distance_threshold: Some(threshold),
                    max_cluster_size: n,
                },
            )
            .unwrap();
            assert_eq!(from_slink, from_generic, "seed {seed}");
        }
    }
}
