//! The end-to-end Atlas engine.
//!
//! [`Atlas::builder`] assembles a **prepared** engine: per-column statistics
//! (quantile sketches, distinct counts, null masks) are computed once at
//! build time and shared — behind `Arc`s — across every subsequent
//! exploration, and each of the four pipeline steps of Section 3 is a
//! pluggable trait object ([`crate::pipeline`]). The engine is `Send + Sync`,
//! so one `Arc<Atlas>` can serve concurrent explorations.
//!
//! [`Atlas::explore`] runs the pipeline exactly; [`Atlas::explore_iter`]
//! streams the anytime refinement of Section 5.1 (growing samples under a
//! time budget) as an iterator of improving [`AnytimeIteration`]s. Both
//! return per-phase timings (the paper's "quasi-real time" requirement is a
//! first-class concern, so the engine measures itself).

use crate::candidates::{generate_candidates_in_context, CandidateSet};
use crate::cluster::cluster_maps_with_pool;
use crate::config::{AtlasConfig, ExploreOptions, MergeStrategy};
use crate::cut::NumericCutStrategy;
use crate::error::{AtlasError, Result};
use crate::map::DataMap;
use crate::pipeline::{
    CompositionMerge, CutStrategy, EntropyRanker, MapDistance, MergePolicy, PaperCut,
    PipelineContext, ProductMerge, Ranker, ViDistance,
};
use crate::profile::{ProfileStats, TableProfile};
use crate::rank::RankedMap;
use atlas_columnar::{Bitmap, Segment, Table};
use atlas_query::ConjunctiveQuery;
use minirayon::ThreadPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wall-clock time spent in each phase of the pipeline, in milliseconds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseTimings {
    /// Evaluating the user query.
    pub query_ms: f64,
    /// Candidate generation (`CUT` on every attribute).
    pub candidates_ms: f64,
    /// Distance matrix + agglomerative clustering.
    pub clustering_ms: f64,
    /// Merging each cluster into a result map.
    pub merge_ms: f64,
    /// Ranking.
    pub rank_ms: f64,
    /// End-to-end total.
    pub total_ms: f64,
}

/// The result of one exploration step.
#[derive(Debug, Clone)]
pub struct MapResult {
    /// The ranked data maps (best first), at most `max_maps` of them.
    pub maps: Vec<RankedMap>,
    /// Number of tuples selected by the user query (the working set size).
    pub working_set_size: usize,
    /// The working set itself, for callers that want to drill further without
    /// re-evaluating the query.
    pub working_set: Bitmap,
    /// Attributes that were skipped during candidate generation.
    pub skipped_attributes: Vec<String>,
    /// Per-phase timings.
    pub timings: PhaseTimings,
}

impl MapResult {
    /// The best map, if any.
    pub fn best(&self) -> Option<&RankedMap> {
        self.maps.first()
    }

    /// Number of maps returned.
    pub fn num_maps(&self) -> usize {
        self.maps.len()
    }
}

/// Assembles a prepared [`Atlas`] engine: a table, a configuration, and one
/// implementation per pipeline stage.
///
/// Stages not set explicitly default to the paper's algorithms, parameterised
/// by the configuration: [`PaperCut`], [`ViDistance`] with the configured
/// metric, [`ProductMerge`] or [`CompositionMerge`] per
/// [`MergeStrategy`], and [`EntropyRanker`].
///
/// ```
/// # use atlas_core::{Atlas, AtlasConfig};
/// # use atlas_columnar::{DataType, Field, Schema, TableBuilder, Value};
/// # use std::sync::Arc;
/// # let schema = Schema::new(vec![Field::new("x", DataType::Int)]).unwrap();
/// # let mut b = TableBuilder::new("t", schema);
/// # for i in 0..50 { b.push_row(&[Value::Int(i % 7)]).unwrap(); }
/// # let table = Arc::new(b.build().unwrap());
/// let atlas = Atlas::builder(table)
///     .config(AtlasConfig::fast())
///     .build()
///     .unwrap();
/// ```
#[derive(Debug)]
pub struct AtlasBuilder {
    table: Arc<Table>,
    config: AtlasConfig,
    cut_strategy: Option<Arc<dyn CutStrategy>>,
    distance: Option<Arc<dyn MapDistance>>,
    merge: Option<Arc<dyn MergePolicy>>,
    ranker: Option<Arc<dyn Ranker>>,
}

impl AtlasBuilder {
    /// Start building an engine over a shared table.
    pub fn new(table: Arc<Table>) -> Self {
        AtlasBuilder {
            table,
            config: AtlasConfig::default(),
            cut_strategy: None,
            distance: None,
            merge: None,
            ranker: None,
        }
    }

    /// Use the given configuration (defaults to [`AtlasConfig::default`]).
    pub fn config(mut self, config: AtlasConfig) -> Self {
        self.config = config;
        self
    }

    /// Replace the candidate-generation stage (step 1).
    pub fn cut_strategy(mut self, strategy: impl CutStrategy + 'static) -> Self {
        self.cut_strategy = Some(Arc::new(strategy));
        self
    }

    /// Replace the map-distance stage (step 2).
    pub fn distance(mut self, distance: impl MapDistance + 'static) -> Self {
        self.distance = Some(Arc::new(distance));
        self
    }

    /// Replace the merge stage (step 3).
    pub fn merge_policy(mut self, policy: impl MergePolicy + 'static) -> Self {
        self.merge = Some(Arc::new(policy));
        self
    }

    /// Replace the ranking stage (step 4).
    pub fn ranker(mut self, ranker: impl Ranker + 'static) -> Self {
        self.ranker = Some(Arc::new(ranker));
        self
    }

    /// Validate the configuration, profile the table (the build-once cost
    /// every later `explore` amortises; columns are profiled in parallel per
    /// [`AtlasConfig::parallelism`]), and assemble the engine.
    pub fn build(self) -> Result<Atlas> {
        self.config.validate()?;
        let pool = Arc::new(ThreadPool::new(self.config.parallelism));
        // Quantile sketches are only ever queried by sketch-based cut
        // strategies; skip building them otherwise.
        let sketch_epsilon = match self.config.cut.numeric {
            NumericCutStrategy::SketchMedian { epsilon } => Some(epsilon),
            _ => None,
        };
        let profile = Arc::new(TableProfile::build_with_pool(
            &self.table,
            sketch_epsilon,
            &pool,
        ));
        let merge = self.merge.unwrap_or_else(|| match self.config.merge {
            MergeStrategy::Product => Arc::new(ProductMerge) as Arc<dyn MergePolicy>,
            MergeStrategy::Composition => Arc::new(CompositionMerge) as Arc<dyn MergePolicy>,
        });
        Ok(Atlas {
            cut_strategy: self.cut_strategy.unwrap_or_else(|| Arc::new(PaperCut)),
            distance: self.distance.unwrap_or_else(|| {
                Arc::new(ViDistance {
                    metric: self.config.distance,
                })
            }),
            merge,
            ranker: self.ranker.unwrap_or_else(|| Arc::new(EntropyRanker)),
            table: self.table,
            config: self.config,
            profile,
            pool,
        })
    }
}

/// The prepared Atlas engine: a table, its build-time statistics profile, and
/// one implementation per pipeline stage. `Send + Sync`; clone it or wrap it
/// in an `Arc` to share the (already computed) profile across threads.
#[derive(Debug, Clone)]
pub struct Atlas {
    table: Arc<Table>,
    config: AtlasConfig,
    profile: Arc<TableProfile>,
    cut_strategy: Arc<dyn CutStrategy>,
    distance: Arc<dyn MapDistance>,
    merge: Arc<dyn MergePolicy>,
    ranker: Arc<dyn Ranker>,
    /// Worker threads shared by every exploration of this engine (and its
    /// clones), sized by [`AtlasConfig::parallelism`].
    pool: Arc<ThreadPool>,
}

impl Atlas {
    /// Start building a prepared engine over a shared table.
    pub fn builder(table: Arc<Table>) -> AtlasBuilder {
        AtlasBuilder::new(table)
    }

    /// Create an engine over a shared table with the given configuration and
    /// the paper's default stage implementations.
    pub fn new(table: Arc<Table>, config: AtlasConfig) -> Result<Self> {
        Atlas::builder(table).config(config).build()
    }

    /// Create an engine with the default (paper) configuration.
    pub fn with_defaults(table: Arc<Table>) -> Result<Self> {
        Atlas::new(table, AtlasConfig::default())
    }

    /// The table the engine explores.
    pub fn table(&self) -> &Arc<Table> {
        &self.table
    }

    /// The active configuration.
    pub fn config(&self) -> &AtlasConfig {
        &self.config
    }

    /// The per-column statistics computed when the engine was built.
    pub fn profile(&self) -> &TableProfile {
        &self.profile
    }

    /// Hit/miss counters of the statistics profile. Whole-table candidate
    /// generation is served from the build-time profile (hits); statistics
    /// over proper subsets — drill-down queries, anytime samples, and the
    /// per-region re-cuts of composition merging — are computed on the fly
    /// (misses). With a merge policy that never re-cuts (e.g.
    /// [`MergeStrategy::Product`]), repeated whole-table explorations
    /// recompute no statistics at all.
    pub fn profile_stats(&self) -> ProfileStats {
        self.profile.counters()
    }

    /// The thread pool sized by [`AtlasConfig::parallelism`].
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// A new prepared engine over this engine's table extended by `segment` —
    /// the incremental-ingest path.
    ///
    /// The segment (which must match the table's schema) is appended to the
    /// segment list **without copying existing data**, and the engine
    /// re-prepares by profiling only the new rows and merging their summaries,
    /// sketches and null masks into the existing profile
    /// ([`TableProfile::merge_segment`]) — never by rebuilding from scratch.
    /// The resulting engine is bit-for-bit identical to
    /// `Atlas::builder(extended_table)` with the same configuration.
    ///
    /// Cost: the new segment is scanned once, and the retained profile state
    /// is carried over — which clones each column's exact distinct-value set
    /// and extends its null mask, so an append is
    /// `O(segment rows + distinct values + table rows / 64)` per column.
    /// That is far below a rebuild's full rescan on ordinary columns (the
    /// 1M-row census benchmark prepares ~60× faster), but the distinct-set
    /// clone means identifier-like columns (almost every value unique) keep
    /// append cost proportional to their cardinality.
    ///
    /// The original engine is untouched (it keeps answering queries over the
    /// old snapshot), and both engines share every pre-existing segment and
    /// the thread pool.
    pub fn append(&self, segment: impl Into<Arc<Segment>>) -> Result<Atlas> {
        let segment = segment.into();
        let table = Arc::new(self.table.append_segment(Arc::clone(&segment))?);
        let profile = Arc::new(self.profile.merge_segment(&segment));
        Ok(Atlas {
            table,
            config: self.config.clone(),
            profile,
            cut_strategy: Arc::clone(&self.cut_strategy),
            distance: Arc::clone(&self.distance),
            merge: Arc::clone(&self.merge),
            ranker: Arc::clone(&self.ranker),
            pool: Arc::clone(&self.pool),
        })
    }

    /// The stage context handed to the pipeline traits.
    fn context(&self) -> PipelineContext<'_> {
        PipelineContext {
            table: &self.table,
            profile: &self.profile,
            cut_config: &self.config.cut,
            cut_strategy: self.cut_strategy.as_ref(),
            drop_empty_regions: self.config.drop_empty_regions,
            pool: &self.pool,
        }
    }

    /// Open the root span one exploration reports into. Joins a surrounding
    /// trace (a served request, a coordinator shard call) when one is open on
    /// this thread, else roots a fresh one.
    fn explore_span(&self) -> atlas_obs::SpanGuard {
        let mut span = atlas_obs::span("explore");
        span.attr("dataset", self.table.name());
        span
    }

    /// Answer a user query with a ranked list of data maps.
    pub fn explore(&self, user_query: &ConjunctiveQuery) -> Result<MapResult> {
        let total_span = self.explore_span();
        let query_span = atlas_obs::span("phase.query");
        let working = atlas_query::evaluate(user_query, &self.table)?;
        let query_ms = query_span.finish_ms();
        self.explore_working_set(user_query, working, query_ms, total_span)
    }

    /// Same as [`Atlas::explore`] but over an externally supplied working set
    /// (used by the anytime engine, which works on samples).
    pub fn explore_selection(
        &self,
        user_query: &ConjunctiveQuery,
        working: Bitmap,
    ) -> Result<MapResult> {
        let total_span = self.explore_span();
        self.explore_working_set(user_query, working, 0.0, total_span)
    }

    /// Runs steps 1–4 under `total_span`. Phase timings are derived from the
    /// phase spans themselves (one source of truth, recorded to the trace
    /// ring when tracing is enabled; the spans still measure when it isn't).
    fn explore_working_set(
        &self,
        user_query: &ConjunctiveQuery,
        working: Bitmap,
        query_ms: f64,
        total_span: atlas_obs::SpanGuard,
    ) -> Result<MapResult> {
        let working_set_size = working.count();
        if working_set_size == 0 {
            return Err(AtlasError::EmptyWorkingSet);
        }

        let ctx = self.context();

        // Step 1: candidate maps.
        let phase_span = atlas_obs::span("phase.candidates");
        let candidates = generate_candidates_in_context(
            &ctx,
            &working,
            user_query,
            self.config.attributes.as_deref(),
        )?;
        let candidates_ms = phase_span.finish_ms();
        if candidates.is_empty() {
            return Err(AtlasError::NoCuttableAttributes);
        }

        // Step 2: cluster dependent candidates.
        let phase_span = atlas_obs::span("phase.clustering");
        let matrix = self.distance.matrix(&ctx, &candidates.maps);
        let clusters = cluster_maps_with_pool(&matrix, &self.config.clustering, &self.pool)?;
        let clustering_ms = phase_span.finish_ms();

        // Step 3: merge each cluster into a representative map, one pool task
        // per cluster, results assembled in cluster order.
        let phase_span = atlas_obs::span("phase.merge");
        let parent = atlas_obs::current();
        let merge_results = self.pool.par_map(&clusters, |cluster| {
            let _trace = atlas_obs::with_context(parent);
            let members: Vec<DataMap> = cluster
                .iter()
                .map(|&idx| candidates.maps[idx].clone())
                .collect();
            self.merge.merge(&ctx, &members, &working)
        });
        let mut merged: Vec<DataMap> = Vec::with_capacity(clusters.len());
        for result in merge_results {
            if let Some(map) = result? {
                merged.push(self.enforce_constraints(map));
            }
        }
        let merge_ms = phase_span.finish_ms();

        // Step 4: rank and truncate.
        let phase_span = atlas_obs::span("phase.rank");
        let mut ranked = self.ranker.rank(merged);
        ranked.truncate(self.config.max_maps);
        let rank_ms = phase_span.finish_ms();

        Ok(MapResult {
            maps: ranked,
            working_set_size,
            working_set: working,
            skipped_attributes: candidates.skipped,
            timings: PhaseTimings {
                query_ms,
                candidates_ms,
                clustering_ms,
                merge_ms,
                rank_ms,
                total_ms: total_span.finish_ms(),
            },
        })
    }

    /// Step 1 as a standalone operation (used by baselines and benchmarks).
    pub fn candidates(
        &self,
        user_query: &ConjunctiveQuery,
        working: &Bitmap,
    ) -> Result<CandidateSet> {
        generate_candidates_in_context(
            &self.context(),
            working,
            user_query,
            self.config.attributes.as_deref(),
        )
    }

    /// Stream the anytime refinement of Section 5.1 for a user query: an
    /// iterator of improving [`AnytimeIteration`]s computed on growing
    /// samples of the working set, stopping once the time budget of
    /// `options` is exhausted or the full working set has been explored.
    ///
    /// The first iteration is available after one pass over a small sample
    /// ("the user \[gets\] instant results"); callers that want only the final
    /// outcome can use [`Atlas::explore_anytime`].
    pub fn explore_iter(
        &self,
        user_query: &ConjunctiveQuery,
        options: ExploreOptions,
    ) -> Result<ExploreIter<'_>> {
        options.validate()?;
        let working = atlas_query::evaluate(user_query, &self.table)?;
        let working_size = working.count();
        if working_size == 0 {
            return Err(AtlasError::EmptyWorkingSet);
        }
        let rows = working.to_indices();
        let sample_size = options.initial_sample.min(working_size);
        Ok(ExploreIter {
            engine: self,
            query: user_query.clone(),
            working,
            rows,
            rng: StdRng::seed_from_u64(options.seed),
            options,
            start: Instant::now(),
            sample_size,
            done: false,
        })
    }

    /// Run the anytime loop to completion and collect every iteration (the
    /// blocking form of [`Atlas::explore_iter`]).
    pub fn explore_anytime(
        &self,
        user_query: &ConjunctiveQuery,
        options: ExploreOptions,
    ) -> Result<AnytimeResult> {
        let mut iter = self.explore_iter(user_query, options)?;
        let working_set_size = iter.working_set_size();
        let mut iterations = Vec::new();
        for step in &mut iter {
            iterations.push(step?);
        }
        let reached_full_data = iterations
            .last()
            .is_some_and(|it| it.sample_size == working_set_size);
        Ok(AnytimeResult {
            iterations,
            reached_full_data,
            working_set_size,
        })
    }

    /// Enforce the readability constraints of Section 2 on a merged map: if it
    /// has more than `max_regions_per_map` regions, keep the largest ones and
    /// fold the rest into a single remainder region (whose query is the
    /// disjunction-free parent query — it is reported as "other tuples").
    fn enforce_constraints(&self, map: DataMap) -> DataMap {
        enforce_region_cap(map, self.config.max_regions_per_map, self.table.num_rows())
    }
}

/// The readability constraint of Section 2 as a standalone transform: if the
/// map has more than `max_regions_per_map` regions, keep the largest ones and
/// fold the rest into a single remainder region over the parent query.
///
/// This is exactly the post-merge step [`Atlas::explore`] applies to every
/// cluster's merged map; it is exposed so a remote coordinator running the
/// merge phase locally produces bit-identical maps. `num_rows` is the number
/// of rows of the underlying table (the length of the remainder bitmap).
pub fn enforce_region_cap(
    mut map: DataMap,
    max_regions_per_map: usize,
    num_rows: usize,
) -> DataMap {
    if map.num_regions() <= max_regions_per_map {
        return map;
    }
    // Keep the largest (max_regions - 1) regions, merge the tail.
    map.regions.sort_by_key(|r| std::cmp::Reverse(r.count()));
    let keep = max_regions_per_map.saturating_sub(1).max(1);
    let tail = map.regions.split_off(keep);
    if !tail.is_empty() {
        let mut remainder_selection = Bitmap::new_empty(num_rows);
        for region in &tail {
            remainder_selection.union_with(&region.selection);
        }
        // The remainder region keeps only the parent predicates (it is the
        // working set minus the kept regions), so its query stays simple.
        let parent_query = tail[0].query.clone();
        map.regions.push(crate::region::Region::new(
            ConjunctiveQuery {
                table: parent_query.table,
                predicates: Vec::new(),
            },
            remainder_selection,
        ));
    }
    map
}

/// One iteration of the anytime loop.
#[derive(Debug, Clone)]
pub struct AnytimeIteration {
    /// Number of sampled rows this iteration ran on.
    pub sample_size: usize,
    /// Wall-clock time elapsed since the start of the loop when this
    /// iteration finished.
    pub elapsed: Duration,
    /// The (approximate) result computed from the sample.
    pub result: MapResult,
}

/// The outcome of an anytime run.
#[derive(Debug, Clone)]
pub struct AnytimeResult {
    /// All iterations, in order of increasing sample size.
    pub iterations: Vec<AnytimeIteration>,
    /// True if the final iteration ran on the full working set (the result is
    /// then exact, not approximate).
    pub reached_full_data: bool,
    /// Size of the full working set.
    pub working_set_size: usize,
}

impl AnytimeResult {
    /// The most refined result available.
    pub fn best(&self) -> Option<&AnytimeIteration> {
        self.iterations.last()
    }
}

/// The streaming anytime exploration returned by [`Atlas::explore_iter`].
///
/// Each `next()` runs the full pipeline on a sample of the working set and
/// yields the resulting [`AnytimeIteration`]; samples grow geometrically
/// until the time budget is exhausted or the whole working set is covered.
#[derive(Debug)]
pub struct ExploreIter<'a> {
    engine: &'a Atlas,
    query: ConjunctiveQuery,
    working: Bitmap,
    rows: Vec<usize>,
    rng: StdRng,
    options: ExploreOptions,
    start: Instant,
    sample_size: usize,
    done: bool,
}

impl ExploreIter<'_> {
    /// Size of the full working set the samples are drawn from.
    pub fn working_set_size(&self) -> usize {
        self.rows.len()
    }

    /// Wall-clock time elapsed since the iterator was created.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Iterator for ExploreIter<'_> {
    type Item = Result<AnytimeIteration>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let working_size = self.rows.len();
        let is_full = self.sample_size >= working_size;
        let sample = if is_full {
            self.working.clone()
        } else {
            sample_rows(
                &self.rows,
                self.sample_size,
                self.engine.table.num_rows(),
                &mut self.rng,
            )
        };
        let result = match self.engine.explore_selection(&self.query, sample) {
            Ok(result) => result,
            Err(err) => {
                self.done = true;
                return Some(Err(err));
            }
        };
        let iteration = AnytimeIteration {
            sample_size: self.sample_size.min(working_size),
            elapsed: self.start.elapsed(),
            result,
        };
        if is_full
            || self
                .options
                .budget
                .is_some_and(|b| self.start.elapsed() >= b)
        {
            self.done = true;
        } else {
            let next = (self.sample_size as f64 * self.options.growth_factor).ceil() as usize;
            self.sample_size = next.min(working_size);
        }
        Some(Ok(iteration))
    }
}

/// Draw a uniform sample (without replacement) of `k` of the given row ids,
/// returned as a bitmap over `table_rows`.
fn sample_rows(rows: &[usize], k: usize, table_rows: usize, rng: &mut StdRng) -> Bitmap {
    let k = k.min(rows.len());
    // Partial Fisher–Yates over a copy of the indices.
    let mut pool: Vec<usize> = rows.to_vec();
    for i in 0..k {
        let j = rng.gen_range(i..pool.len());
        pool.swap(i, j);
    }
    Bitmap::from_indices(table_rows, pool[..k].iter().copied())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut::{CutConfig, NumericCutStrategy};
    use atlas_columnar::{DataType, Field, Schema, TableBuilder, Value};
    use atlas_query::Predicate;

    /// A survey-like table with two planted dependency groups:
    /// (education, salary) and (age, hours), plus an independent eye colour.
    fn survey(rows: usize) -> Arc<Table> {
        let schema = Schema::new(vec![
            Field::new("age", DataType::Int),
            Field::new("hours", DataType::Int),
            Field::new("education", DataType::Str),
            Field::new("salary", DataType::Str),
            Field::new("eye_color", DataType::Str),
        ])
        .unwrap();
        let mut b = TableBuilder::new("survey", schema);
        for i in 0..rows {
            let age = 17 + (i * 13) % 74;
            let hours = if age >= 65 {
                5 + (i % 8)
            } else {
                30 + (i % 20)
            };
            let education = if i % 3 == 0 { "HS" } else { "MSc" };
            let salary = if education == "MSc" && i % 10 < 8 {
                ">50k"
            } else {
                "<50k"
            };
            // Use i/3 so the eye colour is statistically independent of the
            // education group (which is a function of i % 3).
            let eye = ["Blue", "Green", "Brown"][(i / 3) % 3];
            b.push_row(&[
                Value::Int(age as i64),
                Value::Int(hours as i64),
                Value::Str(education.into()),
                Value::Str(salary.into()),
                Value::Str(eye.into()),
            ])
            .unwrap();
        }
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn explore_returns_ranked_maps_within_constraints() {
        let table = survey(600);
        let atlas = Atlas::with_defaults(Arc::clone(&table)).unwrap();
        let result = atlas.explore(&ConjunctiveQuery::all("survey")).unwrap();
        assert!(result.num_maps() >= 2, "expected several maps");
        assert_eq!(result.working_set_size, 600);
        assert!(result.maps.len() <= atlas.config().max_maps);
        for ranked in &result.maps {
            assert!(ranked.map.num_regions() <= atlas.config().max_regions_per_map);
            assert!(ranked.map.regions_are_disjoint());
            assert!(
                ranked.map.max_predicates()
                    <= atlas.config().max_new_predicates
                        + ConjunctiveQuery::all("survey").num_predicates()
            );
            assert!(ranked.score >= 0.0);
        }
        // Scores are non-increasing.
        for pair in result.maps.windows(2) {
            assert!(pair[0].score >= pair[1].score - 1e-12);
        }
        assert!(result.timings.total_ms >= 0.0);
        assert!(result.best().is_some());
    }

    #[test]
    fn dependent_attributes_are_grouped_into_the_same_map() {
        let table = survey(900);
        let atlas = Atlas::with_defaults(Arc::clone(&table)).unwrap();
        let result = atlas.explore(&ConjunctiveQuery::all("survey")).unwrap();
        // Find the map containing education; it should also involve salary
        // (planted dependency), and never eye_color (independent).
        let education_map = result
            .maps
            .iter()
            .find(|m| m.map.source_attributes.iter().any(|a| a == "education"))
            .expect("some map should involve education");
        assert!(
            education_map
                .map
                .source_attributes
                .iter()
                .any(|a| a == "salary"),
            "education and salary should be merged, got {:?}",
            education_map.map.source_attributes
        );
        assert!(
            !education_map
                .map
                .source_attributes
                .iter()
                .any(|a| a == "eye_color"),
            "independent eye_color should not join the education map"
        );
    }

    #[test]
    fn explore_respects_the_user_query() {
        let table = survey(600);
        let atlas = Atlas::with_defaults(Arc::clone(&table)).unwrap();
        let query = ConjunctiveQuery::all("survey").and(Predicate::range("age", 17.0, 40.0));
        let result = atlas.explore(&query).unwrap();
        assert!(result.working_set_size < 600);
        for ranked in &result.maps {
            for region in &ranked.map.regions {
                // Every region query must still contain the user's predicate.
                assert!(region.query.predicate_on("age").is_some());
                // And select only rows inside the working set.
                assert!(region.selection.is_disjoint(&result.working_set.not()));
            }
        }
    }

    #[test]
    fn empty_working_set_is_an_error() {
        let table = survey(100);
        let atlas = Atlas::with_defaults(Arc::clone(&table)).unwrap();
        let query = ConjunctiveQuery::all("survey").and(Predicate::range("age", 500.0, 600.0));
        assert!(matches!(
            atlas.explore(&query),
            Err(AtlasError::EmptyWorkingSet)
        ));
    }

    #[test]
    fn unknown_table_attribute_in_query_is_an_error() {
        let table = survey(100);
        let atlas = Atlas::with_defaults(Arc::clone(&table)).unwrap();
        let query = ConjunctiveQuery::all("survey").and(Predicate::range("height", 0.0, 1.0));
        assert!(matches!(atlas.explore(&query), Err(AtlasError::Query(_))));
    }

    #[test]
    fn product_and_composition_strategies_both_work() {
        let table = survey(400);
        for merge in [MergeStrategy::Product, MergeStrategy::Composition] {
            let config = AtlasConfig {
                merge,
                ..AtlasConfig::default()
            };
            let atlas = Atlas::new(Arc::clone(&table), config).unwrap();
            let result = atlas.explore(&ConjunctiveQuery::all("survey")).unwrap();
            assert!(result.num_maps() >= 1, "{merge:?}");
            for ranked in &result.maps {
                assert!(ranked.map.regions_are_disjoint(), "{merge:?}");
            }
        }
    }

    #[test]
    fn attribute_restriction_limits_candidates() {
        let table = survey(300);
        let config = AtlasConfig {
            attributes: Some(vec!["age".to_string(), "hours".to_string()]),
            ..AtlasConfig::default()
        };
        let atlas = Atlas::new(Arc::clone(&table), config).unwrap();
        let result = atlas.explore(&ConjunctiveQuery::all("survey")).unwrap();
        for ranked in &result.maps {
            for attr in &ranked.map.source_attributes {
                assert!(attr == "age" || attr == "hours");
            }
        }
    }

    #[test]
    fn region_cap_folds_excess_regions_into_a_remainder() {
        let table = survey(500);
        // Force many regions: 4-way cuts, up to 3 attributes per cluster, but
        // cap the result at 6 regions.
        let config = AtlasConfig {
            cut: CutConfig {
                num_splits: 4,
                numeric: NumericCutStrategy::Median,
                ..CutConfig::default()
            },
            max_regions_per_map: 6,
            merge: MergeStrategy::Product,
            ..AtlasConfig::default()
        };
        let atlas = Atlas::new(Arc::clone(&table), config).unwrap();
        let result = atlas.explore(&ConjunctiveQuery::all("survey")).unwrap();
        for ranked in &result.maps {
            assert!(ranked.map.num_regions() <= 6);
        }
    }

    #[test]
    fn explore_selection_skips_query_evaluation() {
        let table = survey(200);
        let atlas = Atlas::with_defaults(Arc::clone(&table)).unwrap();
        let working = Bitmap::from_indices(200, 0..100);
        let result = atlas
            .explore_selection(&ConjunctiveQuery::all("survey"), working)
            .unwrap();
        assert_eq!(result.working_set_size, 100);
        for ranked in &result.maps {
            for region in &ranked.map.regions {
                for row in region.selection.iter_ones() {
                    assert!(row < 100);
                }
            }
        }
    }

    #[test]
    fn invalid_config_is_rejected_at_construction() {
        let table = survey(50);
        let config = AtlasConfig {
            max_maps: 0,
            ..AtlasConfig::default()
        };
        assert!(Atlas::new(table, config).is_err());
        assert!(Atlas::builder(survey(50))
            .config(AtlasConfig {
                max_maps: 0,
                ..AtlasConfig::default()
            })
            .build()
            .is_err());
    }

    #[test]
    fn builder_defaults_equal_the_new_constructor() {
        let table = survey(600);
        let via_builder = Atlas::builder(Arc::clone(&table)).build().unwrap();
        let via_new = Atlas::with_defaults(Arc::clone(&table)).unwrap();
        let query = ConjunctiveQuery::all("survey");
        let a = via_builder.explore(&query).unwrap();
        let b = via_new.explore(&query).unwrap();
        assert_eq!(a.num_maps(), b.num_maps());
        for (ra, rb) in a.maps.iter().zip(b.maps.iter()) {
            assert_eq!(ra.map.source_attributes, rb.map.source_attributes);
            assert_eq!(ra.map.region_counts(), rb.map.region_counts());
            assert!((ra.score - rb.score).abs() < 1e-12);
        }
    }

    #[test]
    fn second_explore_on_a_prepared_engine_recomputes_no_statistics() {
        // The acceptance criterion of the prepared-engine redesign: column
        // statistics are computed once at build time, so whole-table
        // explorations are pure profile hits — the second `explore` call does
        // no per-column statistics recomputation at all.
        let table = survey(600);
        let config = AtlasConfig {
            merge: MergeStrategy::Product,
            ..AtlasConfig::default()
        };
        let atlas = Atlas::new(Arc::clone(&table), config).unwrap();
        let query = ConjunctiveQuery::all("survey");

        let first = atlas.explore(&query).unwrap();
        let after_first = atlas.profile_stats();
        assert_eq!(
            after_first.misses, 0,
            "whole-table stats come from the profile"
        );
        assert!(after_first.hits >= table.num_columns());

        let second = atlas.explore(&query).unwrap();
        let after_second = atlas.profile_stats();
        assert_eq!(
            after_second.misses, 0,
            "the second explore must not recompute any column statistics"
        );
        assert!(after_second.hits > after_first.hits);
        assert_eq!(first.num_maps(), second.num_maps());
    }

    #[test]
    fn subset_explorations_fall_back_to_fresh_statistics() {
        let table = survey(600);
        let atlas = Atlas::with_defaults(Arc::clone(&table)).unwrap();
        let query = ConjunctiveQuery::all("survey").and(Predicate::range("age", 17.0, 40.0));
        atlas.explore(&query).unwrap();
        assert!(
            atlas.profile_stats().misses > 0,
            "subset working sets need fresh statistics"
        );
    }

    #[test]
    fn custom_ranker_changes_the_presentation_order() {
        /// Ranks maps by *increasing* entropy — the opposite of the paper.
        #[derive(Debug)]
        struct WorstFirst;
        impl crate::pipeline::Ranker for WorstFirst {
            fn name(&self) -> &str {
                "worst-first"
            }
            fn rank(&self, maps: Vec<DataMap>) -> Vec<crate::rank::RankedMap> {
                let mut ranked = crate::rank::rank_maps(maps);
                ranked.reverse();
                ranked
            }
        }
        let table = survey(600);
        let normal = Atlas::builder(Arc::clone(&table)).build().unwrap();
        let reversed = Atlas::builder(Arc::clone(&table))
            .ranker(WorstFirst)
            .build()
            .unwrap();
        let query = ConjunctiveQuery::all("survey");
        let a = normal.explore(&query).unwrap();
        let b = reversed.explore(&query).unwrap();
        assert!(a.num_maps() >= 2);
        assert_eq!(a.num_maps(), b.num_maps());
        assert!((a.maps.first().unwrap().score - b.maps.last().unwrap().score).abs() < 1e-12);
        // Scores are non-decreasing under the custom ranker.
        for pair in b.maps.windows(2) {
            assert!(pair[0].score <= pair[1].score + 1e-12);
        }
    }

    #[test]
    fn explore_iter_streams_improving_iterations() {
        let table = survey(4_000);
        let atlas = Atlas::with_defaults(Arc::clone(&table)).unwrap();
        let options = ExploreOptions {
            budget: None,
            initial_sample: 200,
            growth_factor: 4.0,
            seed: 7,
        };
        let mut sizes = Vec::new();
        for step in atlas
            .explore_iter(&ConjunctiveQuery::all("survey"), options)
            .unwrap()
        {
            let iteration = step.unwrap();
            assert!(iteration.result.num_maps() >= 1);
            sizes.push(iteration.sample_size);
        }
        assert!(sizes.len() >= 2, "several iterations expected: {sizes:?}");
        for pair in sizes.windows(2) {
            assert!(pair[1] > pair[0], "samples must grow: {sizes:?}");
        }
        assert_eq!(*sizes.last().unwrap(), 4_000, "ends on the full data");
    }

    #[test]
    fn explore_anytime_final_iteration_matches_plain_explore() {
        let table = survey(1_500);
        let atlas = Atlas::with_defaults(Arc::clone(&table)).unwrap();
        let query = ConjunctiveQuery::all("survey");
        let outcome = atlas
            .explore_anytime(&query, ExploreOptions::exhaustive())
            .unwrap();
        assert!(outcome.reached_full_data);
        let exact = atlas.explore(&query).unwrap();
        let last = &outcome.best().unwrap().result;
        assert_eq!(last.num_maps(), exact.num_maps());
        for (a, b) in last.maps.iter().zip(exact.maps.iter()) {
            assert_eq!(a.map.source_attributes, b.map.source_attributes);
            assert_eq!(a.map.region_counts(), b.map.region_counts());
        }
    }

    #[test]
    fn explore_iter_validates_options_and_working_sets() {
        let table = survey(100);
        let atlas = Atlas::with_defaults(Arc::clone(&table)).unwrap();
        let bad = ExploreOptions {
            growth_factor: 0.5,
            ..ExploreOptions::default()
        };
        assert!(atlas
            .explore_iter(&ConjunctiveQuery::all("survey"), bad)
            .is_err());
        let empty = ConjunctiveQuery::all("survey").and(Predicate::range("age", 500.0, 600.0));
        assert!(matches!(
            atlas.explore_iter(&empty, ExploreOptions::default()),
            Err(AtlasError::EmptyWorkingSet)
        ));
    }

    #[test]
    fn parallel_explore_is_bit_identical_to_sequential() {
        let table = survey(2_000);
        let query = ConjunctiveQuery::all("survey");
        for merge in [MergeStrategy::Product, MergeStrategy::Composition] {
            let base = AtlasConfig {
                merge,
                ..AtlasConfig::default()
            };
            let sequential =
                Atlas::new(Arc::clone(&table), base.clone().with_parallelism(1)).unwrap();
            let parallel =
                Atlas::new(Arc::clone(&table), base.clone().with_parallelism(4)).unwrap();
            assert_eq!(parallel.pool().threads(), 4);
            let a = sequential.explore(&query).unwrap();
            let b = parallel.explore(&query).unwrap();
            assert_eq!(a.num_maps(), b.num_maps(), "{merge:?}");
            assert_eq!(a.working_set_size, b.working_set_size);
            assert_eq!(a.skipped_attributes, b.skipped_attributes);
            for (ra, rb) in a.maps.iter().zip(b.maps.iter()) {
                assert_eq!(
                    ra.map.source_attributes, rb.map.source_attributes,
                    "{merge:?}"
                );
                assert_eq!(ra.map.region_counts(), rb.map.region_counts(), "{merge:?}");
                assert_eq!(ra.score.to_bits(), rb.score.to_bits(), "{merge:?}");
                for (qa, qb) in ra.map.regions.iter().zip(rb.map.regions.iter()) {
                    assert_eq!(
                        atlas_query::to_sql(&qa.query),
                        atlas_query::to_sql(&qb.query),
                        "{merge:?}"
                    );
                    assert_eq!(qa.selection, qb.selection, "{merge:?}");
                }
            }
        }
    }

    #[test]
    fn append_re_prepares_identically_to_a_rebuild() {
        // Split the survey into a prefix table and a tail segment; appending
        // the tail to a prefix engine must answer exactly like an engine
        // built from scratch over the whole table.
        let whole = survey(900);
        let query = ConjunctiveQuery::all("survey");
        for merge in [MergeStrategy::Product, MergeStrategy::Composition] {
            let config = AtlasConfig {
                merge,
                ..AtlasConfig::default()
            };
            // Rebuild the survey with small segments so there is a real tail.
            let mut b = {
                let schema = whole.schema().clone();
                atlas_columnar::TableBuilder::new("survey", schema).with_segment_rows(256)
            };
            for row in 0..whole.num_rows() {
                b.push_row(&whole.row(row).unwrap()).unwrap();
            }
            let table = b.build().unwrap();
            assert!(table.num_segments() >= 3);
            let (head, tail) = table.segments().split_at(table.num_segments() - 1);
            let prefix =
                Table::from_segments("survey", table.schema().clone(), head.to_vec()).unwrap();

            let appended = Atlas::new(Arc::new(prefix), config.clone())
                .unwrap()
                .append(Arc::clone(&tail[0]))
                .unwrap();
            let rebuilt = Atlas::new(Arc::new(table.clone()), config).unwrap();
            assert_eq!(appended.table().num_rows(), 900);

            let a = appended.explore(&query).unwrap();
            let b = rebuilt.explore(&query).unwrap();
            assert_eq!(a.num_maps(), b.num_maps(), "{merge:?}");
            assert_eq!(a.working_set_size, b.working_set_size);
            assert_eq!(a.skipped_attributes, b.skipped_attributes);
            for (ra, rb) in a.maps.iter().zip(b.maps.iter()) {
                assert_eq!(ra.map.source_attributes, rb.map.source_attributes);
                assert_eq!(ra.map.region_counts(), rb.map.region_counts());
                assert_eq!(ra.score.to_bits(), rb.score.to_bits(), "{merge:?}");
                for (qa, qb) in ra.map.regions.iter().zip(rb.map.regions.iter()) {
                    assert_eq!(
                        atlas_query::to_sql(&qa.query),
                        atlas_query::to_sql(&qb.query)
                    );
                    assert_eq!(qa.selection, qb.selection);
                }
            }
            // With a merge policy that never re-cuts, the appended engine's
            // whole-table exploration is served purely from the merged
            // profile — the acceptance criterion of incremental preparation.
            if merge == MergeStrategy::Product {
                assert_eq!(appended.profile_stats().misses, 0);
                assert!(appended.profile_stats().hits > 0);
            }
        }
    }

    #[test]
    fn append_rejects_mismatched_segments_and_keeps_the_old_engine() {
        let table = survey(300);
        let atlas = Atlas::with_defaults(Arc::clone(&table)).unwrap();
        let bad_schema =
            atlas_columnar::Schema::new(vec![atlas_columnar::Field::new("zzz", DataType::Int)])
                .unwrap();
        let bad = Segment::new(
            &bad_schema,
            vec![atlas_columnar::Column::Int(vec![Some(1)].into())],
        )
        .unwrap();
        assert!(atlas.append(bad).is_err());
        // The engine still answers over its original snapshot.
        let result = atlas.explore(&ConjunctiveQuery::all("survey")).unwrap();
        assert_eq!(result.working_set_size, 300);
    }

    #[test]
    fn the_prepared_engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Atlas>();
        assert_send_sync::<AtlasBuilder>();
        assert_send_sync::<crate::profile::TableProfile>();
    }
}
