//! The end-to-end Atlas engine.
//!
//! [`Atlas::explore`] runs the four-step pipeline of Section 3 on the result
//! of a user query and returns a ranked list of data maps, together with
//! per-phase timings (the paper's "quasi-real time" requirement is a
//! first-class concern, so the engine measures itself).

use crate::candidates::{generate_candidates, CandidateSet};
use crate::cluster::cluster_maps;
use crate::config::{AtlasConfig, MergeStrategy};
use crate::distance::distance_matrix;
use crate::error::{AtlasError, Result};
use crate::map::DataMap;
use crate::merge::{compose_maps, product_maps};
use crate::rank::{rank_maps, RankedMap};
use atlas_columnar::{Bitmap, Table};
use atlas_query::ConjunctiveQuery;
use std::sync::Arc;
use std::time::Instant;

/// Wall-clock time spent in each phase of the pipeline, in milliseconds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseTimings {
    /// Evaluating the user query.
    pub query_ms: f64,
    /// Candidate generation (`CUT` on every attribute).
    pub candidates_ms: f64,
    /// Distance matrix + agglomerative clustering.
    pub clustering_ms: f64,
    /// Merging each cluster into a result map.
    pub merge_ms: f64,
    /// Ranking.
    pub rank_ms: f64,
    /// End-to-end total.
    pub total_ms: f64,
}

/// The result of one exploration step.
#[derive(Debug, Clone)]
pub struct MapResult {
    /// The ranked data maps (best first), at most `max_maps` of them.
    pub maps: Vec<RankedMap>,
    /// Number of tuples selected by the user query (the working set size).
    pub working_set_size: usize,
    /// The working set itself, for callers that want to drill further without
    /// re-evaluating the query.
    pub working_set: Bitmap,
    /// Attributes that were skipped during candidate generation.
    pub skipped_attributes: Vec<String>,
    /// Per-phase timings.
    pub timings: PhaseTimings,
}

impl MapResult {
    /// The best map, if any.
    pub fn best(&self) -> Option<&RankedMap> {
        self.maps.first()
    }

    /// Number of maps returned.
    pub fn num_maps(&self) -> usize {
        self.maps.len()
    }
}

/// The Atlas engine: a table plus a configuration.
#[derive(Debug, Clone)]
pub struct Atlas {
    table: Arc<Table>,
    config: AtlasConfig,
}

impl Atlas {
    /// Create an engine over a shared table with the given configuration.
    pub fn new(table: Arc<Table>, config: AtlasConfig) -> Result<Self> {
        config.validate()?;
        Ok(Atlas { table, config })
    }

    /// Create an engine with the default (paper) configuration.
    pub fn with_defaults(table: Arc<Table>) -> Result<Self> {
        Atlas::new(table, AtlasConfig::default())
    }

    /// The table the engine explores.
    pub fn table(&self) -> &Arc<Table> {
        &self.table
    }

    /// The active configuration.
    pub fn config(&self) -> &AtlasConfig {
        &self.config
    }

    /// Answer a user query with a ranked list of data maps.
    pub fn explore(&self, user_query: &ConjunctiveQuery) -> Result<MapResult> {
        let total_start = Instant::now();
        let query_start = Instant::now();
        let working = atlas_query::evaluate(user_query, &self.table)?;
        let query_ms = elapsed_ms(query_start);
        self.explore_working_set(user_query, working, query_ms, total_start)
    }

    /// Same as [`Atlas::explore`] but over an externally supplied working set
    /// (used by the anytime engine, which works on samples).
    pub fn explore_selection(
        &self,
        user_query: &ConjunctiveQuery,
        working: Bitmap,
    ) -> Result<MapResult> {
        let total_start = Instant::now();
        self.explore_working_set(user_query, working, 0.0, total_start)
    }

    fn explore_working_set(
        &self,
        user_query: &ConjunctiveQuery,
        working: Bitmap,
        query_ms: f64,
        total_start: Instant,
    ) -> Result<MapResult> {
        let working_set_size = working.count();
        if working_set_size == 0 {
            return Err(AtlasError::EmptyWorkingSet);
        }

        // Step 1: candidate maps.
        let phase_start = Instant::now();
        let candidates = self.candidates(user_query, &working)?;
        let candidates_ms = elapsed_ms(phase_start);
        if candidates.is_empty() {
            return Err(AtlasError::NoCuttableAttributes);
        }

        // Step 2: cluster dependent candidates.
        let phase_start = Instant::now();
        let matrix = distance_matrix(
            &candidates.maps,
            self.table.num_rows(),
            self.config.distance,
        );
        let clusters = cluster_maps(&matrix, &self.config.clustering)?;
        let clustering_ms = elapsed_ms(phase_start);

        // Step 3: merge each cluster into a representative map.
        let phase_start = Instant::now();
        let mut merged: Vec<DataMap> = Vec::with_capacity(clusters.len());
        for cluster in &clusters {
            let members: Vec<DataMap> = cluster
                .iter()
                .map(|&idx| candidates.maps[idx].clone())
                .collect();
            let map = match self.config.merge {
                MergeStrategy::Product => product_maps(&members, self.config.drop_empty_regions),
                MergeStrategy::Composition => compose_maps(
                    &members,
                    &self.table,
                    &self.config.cut,
                    self.config.drop_empty_regions,
                )?,
            };
            if let Some(map) = map {
                merged.push(self.enforce_constraints(map));
            }
        }
        let merge_ms = elapsed_ms(phase_start);

        // Step 4: rank and truncate.
        let phase_start = Instant::now();
        let mut ranked = rank_maps(merged);
        ranked.truncate(self.config.max_maps);
        let rank_ms = elapsed_ms(phase_start);

        Ok(MapResult {
            maps: ranked,
            working_set_size,
            working_set: working,
            skipped_attributes: candidates.skipped,
            timings: PhaseTimings {
                query_ms,
                candidates_ms,
                clustering_ms,
                merge_ms,
                rank_ms,
                total_ms: elapsed_ms(total_start),
            },
        })
    }

    /// Step 1 as a standalone operation (used by baselines and benchmarks).
    pub fn candidates(
        &self,
        user_query: &ConjunctiveQuery,
        working: &Bitmap,
    ) -> Result<CandidateSet> {
        generate_candidates(
            &self.table,
            working,
            user_query,
            self.config.attributes.as_deref(),
            &self.config.cut,
        )
    }

    /// Enforce the readability constraints of Section 2 on a merged map: if it
    /// has more than `max_regions_per_map` regions, keep the largest ones and
    /// fold the rest into a single remainder region (whose query is the
    /// disjunction-free parent query — it is reported as "other tuples").
    fn enforce_constraints(&self, mut map: DataMap) -> DataMap {
        if map.num_regions() <= self.config.max_regions_per_map {
            return map;
        }
        // Keep the largest (max_regions - 1) regions, merge the tail.
        map.regions.sort_by_key(|r| std::cmp::Reverse(r.count()));
        let keep = self.config.max_regions_per_map.saturating_sub(1).max(1);
        let tail = map.regions.split_off(keep);
        if !tail.is_empty() {
            let mut remainder_selection = Bitmap::new_empty(self.table.num_rows());
            for region in &tail {
                remainder_selection.union_with(&region.selection);
            }
            // The remainder region keeps only the parent predicates (it is the
            // working set minus the kept regions), so its query stays simple.
            let parent_query = tail[0].query.clone();
            map.regions.push(crate::region::Region::new(
                ConjunctiveQuery {
                    table: parent_query.table,
                    predicates: Vec::new(),
                },
                remainder_selection,
            ));
        }
        map
    }
}

fn elapsed_ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut::{CutConfig, NumericCutStrategy};
    use atlas_columnar::{DataType, Field, Schema, TableBuilder, Value};
    use atlas_query::Predicate;

    /// A survey-like table with two planted dependency groups:
    /// (education, salary) and (age, hours), plus an independent eye colour.
    fn survey(rows: usize) -> Arc<Table> {
        let schema = Schema::new(vec![
            Field::new("age", DataType::Int),
            Field::new("hours", DataType::Int),
            Field::new("education", DataType::Str),
            Field::new("salary", DataType::Str),
            Field::new("eye_color", DataType::Str),
        ])
        .unwrap();
        let mut b = TableBuilder::new("survey", schema);
        for i in 0..rows {
            let age = 17 + (i * 13) % 74;
            let hours = if age >= 65 {
                5 + (i % 8)
            } else {
                30 + (i % 20)
            };
            let education = if i % 3 == 0 { "HS" } else { "MSc" };
            let salary = if education == "MSc" && i % 10 < 8 {
                ">50k"
            } else {
                "<50k"
            };
            // Use i/3 so the eye colour is statistically independent of the
            // education group (which is a function of i % 3).
            let eye = ["Blue", "Green", "Brown"][(i / 3) % 3];
            b.push_row(&[
                Value::Int(age as i64),
                Value::Int(hours as i64),
                Value::Str(education.into()),
                Value::Str(salary.into()),
                Value::Str(eye.into()),
            ])
            .unwrap();
        }
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn explore_returns_ranked_maps_within_constraints() {
        let table = survey(600);
        let atlas = Atlas::with_defaults(Arc::clone(&table)).unwrap();
        let result = atlas.explore(&ConjunctiveQuery::all("survey")).unwrap();
        assert!(result.num_maps() >= 2, "expected several maps");
        assert_eq!(result.working_set_size, 600);
        assert!(result.maps.len() <= atlas.config().max_maps);
        for ranked in &result.maps {
            assert!(ranked.map.num_regions() <= atlas.config().max_regions_per_map);
            assert!(ranked.map.regions_are_disjoint());
            assert!(
                ranked.map.max_predicates()
                    <= atlas.config().max_new_predicates
                        + ConjunctiveQuery::all("survey").num_predicates()
            );
            assert!(ranked.score >= 0.0);
        }
        // Scores are non-increasing.
        for pair in result.maps.windows(2) {
            assert!(pair[0].score >= pair[1].score - 1e-12);
        }
        assert!(result.timings.total_ms >= 0.0);
        assert!(result.best().is_some());
    }

    #[test]
    fn dependent_attributes_are_grouped_into_the_same_map() {
        let table = survey(900);
        let atlas = Atlas::with_defaults(Arc::clone(&table)).unwrap();
        let result = atlas.explore(&ConjunctiveQuery::all("survey")).unwrap();
        // Find the map containing education; it should also involve salary
        // (planted dependency), and never eye_color (independent).
        let education_map = result
            .maps
            .iter()
            .find(|m| m.map.source_attributes.iter().any(|a| a == "education"))
            .expect("some map should involve education");
        assert!(
            education_map
                .map
                .source_attributes
                .iter()
                .any(|a| a == "salary"),
            "education and salary should be merged, got {:?}",
            education_map.map.source_attributes
        );
        assert!(
            !education_map
                .map
                .source_attributes
                .iter()
                .any(|a| a == "eye_color"),
            "independent eye_color should not join the education map"
        );
    }

    #[test]
    fn explore_respects_the_user_query() {
        let table = survey(600);
        let atlas = Atlas::with_defaults(Arc::clone(&table)).unwrap();
        let query = ConjunctiveQuery::all("survey").and(Predicate::range("age", 17.0, 40.0));
        let result = atlas.explore(&query).unwrap();
        assert!(result.working_set_size < 600);
        for ranked in &result.maps {
            for region in &ranked.map.regions {
                // Every region query must still contain the user's predicate.
                assert!(region.query.predicate_on("age").is_some());
                // And select only rows inside the working set.
                assert!(region.selection.is_disjoint(&result.working_set.not()));
            }
        }
    }

    #[test]
    fn empty_working_set_is_an_error() {
        let table = survey(100);
        let atlas = Atlas::with_defaults(Arc::clone(&table)).unwrap();
        let query = ConjunctiveQuery::all("survey").and(Predicate::range("age", 500.0, 600.0));
        assert!(matches!(
            atlas.explore(&query),
            Err(AtlasError::EmptyWorkingSet)
        ));
    }

    #[test]
    fn unknown_table_attribute_in_query_is_an_error() {
        let table = survey(100);
        let atlas = Atlas::with_defaults(Arc::clone(&table)).unwrap();
        let query = ConjunctiveQuery::all("survey").and(Predicate::range("height", 0.0, 1.0));
        assert!(matches!(atlas.explore(&query), Err(AtlasError::Query(_))));
    }

    #[test]
    fn product_and_composition_strategies_both_work() {
        let table = survey(400);
        for merge in [MergeStrategy::Product, MergeStrategy::Composition] {
            let config = AtlasConfig {
                merge,
                ..AtlasConfig::default()
            };
            let atlas = Atlas::new(Arc::clone(&table), config).unwrap();
            let result = atlas.explore(&ConjunctiveQuery::all("survey")).unwrap();
            assert!(result.num_maps() >= 1, "{merge:?}");
            for ranked in &result.maps {
                assert!(ranked.map.regions_are_disjoint(), "{merge:?}");
            }
        }
    }

    #[test]
    fn attribute_restriction_limits_candidates() {
        let table = survey(300);
        let config = AtlasConfig {
            attributes: Some(vec!["age".to_string(), "hours".to_string()]),
            ..AtlasConfig::default()
        };
        let atlas = Atlas::new(Arc::clone(&table), config).unwrap();
        let result = atlas.explore(&ConjunctiveQuery::all("survey")).unwrap();
        for ranked in &result.maps {
            for attr in &ranked.map.source_attributes {
                assert!(attr == "age" || attr == "hours");
            }
        }
    }

    #[test]
    fn region_cap_folds_excess_regions_into_a_remainder() {
        let table = survey(500);
        // Force many regions: 4-way cuts, up to 3 attributes per cluster, but
        // cap the result at 6 regions.
        let config = AtlasConfig {
            cut: CutConfig {
                num_splits: 4,
                numeric: NumericCutStrategy::Median,
                ..CutConfig::default()
            },
            max_regions_per_map: 6,
            merge: MergeStrategy::Product,
            ..AtlasConfig::default()
        };
        let atlas = Atlas::new(Arc::clone(&table), config).unwrap();
        let result = atlas.explore(&ConjunctiveQuery::all("survey")).unwrap();
        for ranked in &result.maps {
            assert!(ranked.map.num_regions() <= 6);
        }
    }

    #[test]
    fn explore_selection_skips_query_evaluation() {
        let table = survey(200);
        let atlas = Atlas::with_defaults(Arc::clone(&table)).unwrap();
        let working = Bitmap::from_indices(200, 0..100);
        let result = atlas
            .explore_selection(&ConjunctiveQuery::all("survey"), working)
            .unwrap();
        assert_eq!(result.working_set_size, 100);
        for ranked in &result.maps {
            for region in &ranked.map.regions {
                for row in region.selection.iter_ones() {
                    assert!(row < 100);
                }
            }
        }
    }

    #[test]
    fn invalid_config_is_rejected_at_construction() {
        let table = survey(50);
        let config = AtlasConfig {
            max_maps: 0,
            ..AtlasConfig::default()
        };
        assert!(Atlas::new(table, config).is_err());
    }
}
