//! End-to-end engine configuration.

use crate::cluster::ClusteringConfig;
use crate::cut::CutConfig;
use crate::distance::MapDistanceMetric;
use crate::error::{AtlasError, Result};
use std::time::Duration;

/// How the maps of one cluster are combined into a representative map
/// (Section 3.3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeStrategy {
    /// The product operator `M1 × M2`: intersect every region of the first
    /// map with every region of the second. Fast and "natural", but unlikely
    /// to reveal clusters.
    Product,
    /// The composition operator `M1 ∘ M2`: re-cut every region of the first
    /// map on the attributes of the other maps, so split points adapt locally.
    /// More expensive, more likely to reveal clusters.
    #[default]
    Composition,
}

/// Configuration of the whole Atlas pipeline.
///
/// The defaults follow the choices the paper argues for: two-way cuts, the
/// Variation-of-Information distance (normalised so one threshold works
/// across datasets), single-linkage agglomerative clustering capped at three
/// attributes per cluster, composition merging, entropy ranking, and the
/// readability constraints of Section 2 (≤ 8 regions per map, ≤ 3 predicates
/// per query, at most a dozen maps shown).
#[derive(Debug, Clone, PartialEq)]
pub struct AtlasConfig {
    /// Configuration of the `CUT` primitive.
    pub cut: CutConfig,
    /// Dependency measure between candidate maps.
    pub distance: MapDistanceMetric,
    /// Configuration of the agglomerative clustering step.
    pub clustering: ClusteringConfig,
    /// How clusters of candidate maps are merged.
    pub merge: MergeStrategy,
    /// Maximum number of regions per result map ("a map with more than 8
    /// regions is hard to read").
    pub max_regions_per_map: usize,
    /// Maximum number of predicates added to the user query per region query
    /// ("we target less than 3").
    pub max_new_predicates: usize,
    /// Maximum number of maps returned ("less than a dozen").
    pub max_maps: usize,
    /// If set, candidate generation only considers these attributes.
    pub attributes: Option<Vec<String>>,
    /// Drop result regions that cover no tuples.
    pub drop_empty_regions: bool,
    /// Number of threads the engine's pipeline phases may use (candidate
    /// generation, the pairwise distance matrix, per-cluster merging, and
    /// profile building at [`crate::engine::Atlas::builder`] time).
    ///
    /// Defaults to the number of hardware threads
    /// ([`AtlasConfig::default_parallelism`]); the `ATLAS_PARALLELISM`
    /// environment variable overrides the default (CI uses it to exercise the
    /// sequential path). `1` disables the thread pool entirely: every phase
    /// runs inline on the calling thread, exactly as before the pool existed.
    ///
    /// **Determinism:** every parallel phase assembles its results in input
    /// order, so with the paper's (pure) stage implementations the ranked
    /// maps are **bit-for-bit identical** at every parallelism level. Custom
    /// stages with order-dependent interior state (e.g. a shared RNG stream,
    /// like [`crate::baselines::RandomCut`]) only keep run-to-run determinism
    /// at `parallelism = 1`.
    pub parallelism: usize,
}

impl Default for AtlasConfig {
    fn default() -> Self {
        AtlasConfig {
            cut: CutConfig::default(),
            distance: MapDistanceMetric::NormalizedVI,
            clustering: ClusteringConfig::default(),
            merge: MergeStrategy::Composition,
            max_regions_per_map: 8,
            max_new_predicates: 3,
            max_maps: 10,
            attributes: None,
            drop_empty_regions: true,
            parallelism: AtlasConfig::default_parallelism(),
        }
    }
}

impl AtlasConfig {
    /// The default value of [`AtlasConfig::parallelism`]: the
    /// `ATLAS_PARALLELISM` environment variable if set to a positive integer,
    /// the number of hardware threads otherwise.
    pub fn default_parallelism() -> usize {
        match std::env::var("ATLAS_PARALLELISM")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            Some(n) if n >= 1 => n,
            _ => minirayon::available_threads(),
        }
    }

    /// This configuration with the given [`AtlasConfig::parallelism`].
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }
    /// Validate the configuration, harmonising the readability constraints
    /// with the clustering cap (a cluster of `k` two-way cut maps yields up to
    /// `2^k` regions and `k` extra predicates).
    pub fn validate(&self) -> Result<()> {
        self.cut.validate()?;
        self.clustering.validate()?;
        if self.max_regions_per_map < 2 {
            return Err(AtlasError::InvalidConfig(
                "max_regions_per_map must be at least 2".to_string(),
            ));
        }
        if self.max_new_predicates == 0 {
            return Err(AtlasError::InvalidConfig(
                "max_new_predicates must be at least 1".to_string(),
            ));
        }
        if self.max_maps == 0 {
            return Err(AtlasError::InvalidConfig(
                "max_maps must be at least 1".to_string(),
            ));
        }
        if self.clustering.max_cluster_size > self.max_new_predicates {
            return Err(AtlasError::InvalidConfig(format!(
                "max_cluster_size ({}) exceeds max_new_predicates ({}): merged queries would be too complex",
                self.clustering.max_cluster_size, self.max_new_predicates
            )));
        }
        if self.parallelism == 0 {
            return Err(AtlasError::InvalidConfig(
                "parallelism must be at least 1 (1 = sequential)".to_string(),
            ));
        }
        Ok(())
    }

    /// A configuration tuned for speed: equi-width cuts, product merging.
    pub fn fast() -> Self {
        AtlasConfig {
            cut: CutConfig {
                numeric: crate::cut::NumericCutStrategy::EquiWidth,
                ..CutConfig::default()
            },
            merge: MergeStrategy::Product,
            ..AtlasConfig::default()
        }
    }

    /// A configuration tuned for map quality: k-means cuts, composition
    /// merging (the default), exact natural-breaks refinement is left to the
    /// caller because of its quadratic cost.
    pub fn quality() -> Self {
        AtlasConfig {
            cut: CutConfig {
                numeric: crate::cut::NumericCutStrategy::KMeans { max_iterations: 50 },
                ..CutConfig::default()
            },
            merge: MergeStrategy::Composition,
            ..AtlasConfig::default()
        }
    }
}

/// Options of one anytime exploration ([`crate::engine::Atlas::explore_iter`],
/// Section 5.1 of the paper): the pipeline runs on geometrically growing
/// samples of the working set until the budget is exhausted or the sample
/// covers everything.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreOptions {
    /// Wall-clock budget; the loop stops before starting an iteration once
    /// the budget is exceeded. `None` runs until the full working set has
    /// been explored (the result is then exact).
    pub budget: Option<Duration>,
    /// Size of the first sample (rows).
    pub initial_sample: usize,
    /// Multiplicative sample growth factor between iterations (must be > 1).
    pub growth_factor: f64,
    /// RNG seed for the sampling.
    pub seed: u64,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            budget: Some(Duration::from_millis(500)),
            initial_sample: 512,
            growth_factor: 2.0,
            seed: 42,
        }
    }
}

impl ExploreOptions {
    /// Options with no time budget: iterate until the result is exact.
    pub fn exhaustive() -> Self {
        ExploreOptions {
            budget: None,
            ..ExploreOptions::default()
        }
    }

    /// Options with the given wall-clock budget.
    pub fn budgeted(budget: Duration) -> Self {
        ExploreOptions {
            budget: Some(budget),
            ..ExploreOptions::default()
        }
    }

    /// Validate the options.
    pub fn validate(&self) -> Result<()> {
        if self.growth_factor <= 1.0 {
            return Err(AtlasError::InvalidConfig(
                "growth_factor must be greater than 1".to_string(),
            ));
        }
        if self.initial_sample == 0 {
            return Err(AtlasError::InvalidConfig(
                "initial_sample must be at least 1".to_string(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_matches_paper_constraints() {
        let cfg = AtlasConfig::default();
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.cut.num_splits, 2);
        assert_eq!(cfg.max_regions_per_map, 8);
        assert_eq!(cfg.max_new_predicates, 3);
        assert!(cfg.max_maps <= 12);
        assert_eq!(cfg.merge, MergeStrategy::Composition);
    }

    #[test]
    fn presets_are_valid() {
        assert!(AtlasConfig::fast().validate().is_ok());
        assert!(AtlasConfig::quality().validate().is_ok());
        assert_eq!(AtlasConfig::fast().merge, MergeStrategy::Product);
    }

    #[test]
    fn inconsistent_configs_are_rejected() {
        let cfg = AtlasConfig {
            max_regions_per_map: 1,
            ..AtlasConfig::default()
        };
        assert!(cfg.validate().is_err());

        let cfg = AtlasConfig {
            max_maps: 0,
            ..AtlasConfig::default()
        };
        assert!(cfg.validate().is_err());

        let cfg = AtlasConfig {
            max_new_predicates: 0,
            ..AtlasConfig::default()
        };
        assert!(cfg.validate().is_err());

        let mut cfg = AtlasConfig::default();
        cfg.clustering.max_cluster_size = 5;
        cfg.max_new_predicates = 3;
        assert!(cfg.validate().is_err());

        let mut cfg = AtlasConfig::default();
        cfg.cut.num_splits = 0;
        assert!(cfg.validate().is_err());

        let cfg = AtlasConfig {
            parallelism: 0,
            ..AtlasConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn parallelism_defaults_to_at_least_one_and_is_overridable() {
        assert!(AtlasConfig::default().parallelism >= 1);
        assert!(AtlasConfig::default_parallelism() >= 1);
        let cfg = AtlasConfig::default().with_parallelism(4);
        assert_eq!(cfg.parallelism, 4);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn explore_options_validate() {
        assert!(ExploreOptions::default().validate().is_ok());
        assert!(ExploreOptions::exhaustive().budget.is_none());
        assert_eq!(
            ExploreOptions::budgeted(Duration::from_millis(20)).budget,
            Some(Duration::from_millis(20))
        );
        let bad_growth = ExploreOptions {
            growth_factor: 1.0,
            ..ExploreOptions::default()
        };
        assert!(bad_growth.validate().is_err());
        let bad_sample = ExploreOptions {
            initial_sample: 0,
            ..ExploreOptions::default()
        };
        assert!(bad_sample.validate().is_err());
    }
}
