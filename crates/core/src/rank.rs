//! Ranking the result maps (step 4 of the framework).
//!
//! Section 3.4 of the paper: result maps are ranked by decreasing entropy of
//! their cover distribution. Maps with many regions score high; among maps
//! with the same number of regions the most balanced one wins; maps that
//! isolate tiny outlier regions appear last.

use crate::map::DataMap;

/// A map together with its ranking score.
#[derive(Debug, Clone)]
pub struct RankedMap {
    /// The map.
    pub map: DataMap,
    /// The ranking score (entropy of the cover distribution, in bits).
    pub score: f64,
}

impl RankedMap {
    /// Convenience accessor: number of regions of the underlying map.
    pub fn num_regions(&self) -> usize {
        self.map.num_regions()
    }
}

/// Score a single map: the entropy, in bits, of its cover distribution.
pub fn score_map(map: &DataMap) -> f64 {
    map.entropy()
}

/// Rank a set of maps by decreasing entropy.
///
/// Ties are broken by the number of regions (more regions first) and then by
/// the source attributes, so the order is deterministic.
pub fn rank_maps(maps: Vec<DataMap>) -> Vec<RankedMap> {
    let mut ranked: Vec<RankedMap> = maps
        .into_iter()
        .map(|map| {
            let score = score_map(&map);
            RankedMap { map, score }
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| b.map.num_regions().cmp(&a.map.num_regions()))
            .then_with(|| a.map.source_attributes.cmp(&b.map.source_attributes))
    });
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Region;
    use atlas_columnar::Bitmap;
    use atlas_query::{ConjunctiveQuery, Predicate};

    fn map_with_counts(counts: &[usize], attr: &str) -> DataMap {
        let total: usize = counts.iter().sum();
        let mut start = 0usize;
        let mut regions = Vec::new();
        for &count in counts {
            let rows: Vec<usize> = (start..start + count).collect();
            regions.push(Region::new(
                ConjunctiveQuery::all("t").and(Predicate::range(
                    attr,
                    start as f64,
                    (start + count) as f64,
                )),
                Bitmap::from_indices(total, rows),
            ));
            start += count;
        }
        DataMap::new(regions, vec![attr.to_string()])
    }

    #[test]
    fn balanced_many_region_maps_rank_first() {
        let four_balanced = map_with_counts(&[25, 25, 25, 25], "a");
        let two_balanced = map_with_counts(&[50, 50], "b");
        let outlier = map_with_counts(&[99, 1], "c");
        let ranked = rank_maps(vec![outlier, two_balanced, four_balanced]);
        assert_eq!(ranked[0].map.source_attributes, vec!["a"]);
        assert_eq!(ranked[1].map.source_attributes, vec!["b"]);
        assert_eq!(ranked[2].map.source_attributes, vec!["c"]);
        assert!((ranked[0].score - 2.0).abs() < 1e-9);
        assert!((ranked[1].score - 1.0).abs() < 1e-9);
        assert!(ranked[2].score < 0.1);
        assert_eq!(ranked[0].num_regions(), 4);
    }

    #[test]
    fn same_region_count_prefers_balance() {
        let balanced = map_with_counts(&[50, 50], "balanced");
        let skewed = map_with_counts(&[90, 10], "skewed");
        let ranked = rank_maps(vec![skewed, balanced]);
        assert_eq!(ranked[0].map.source_attributes, vec!["balanced"]);
    }

    #[test]
    fn ties_are_broken_deterministically() {
        let a = map_with_counts(&[10, 10], "a");
        let b = map_with_counts(&[10, 10], "b");
        let ranked1 = rank_maps(vec![a.clone(), b.clone()]);
        let ranked2 = rank_maps(vec![b, a]);
        assert_eq!(
            ranked1[0].map.source_attributes,
            ranked2[0].map.source_attributes
        );
    }

    #[test]
    fn empty_input_ranks_to_empty_output() {
        assert!(rank_maps(Vec::new()).is_empty());
    }
}
