//! Baseline map generators used by the evaluation (experiment E8).
//!
//! The paper positions Atlas against two families of alternatives
//! (Section 6): exhaustive cluster/subspace analysis, which returns one
//! complete but unreadable answer, and naive suggestions that ignore the data
//! distribution. The baselines here make that comparison concrete:
//!
//! * [`full_product`] — the exhaustive enumeration: cut *every* attribute and
//!   take the product of all candidate maps. Complete, but violates every
//!   convenience constraint (region count explodes, queries carry one
//!   predicate per attribute).
//! * [`single_attribute`] — no clustering, no merging: just the ranked
//!   one-attribute candidate maps. Readable but blind to multi-attribute
//!   structure.
//! * [`random_map`] — uninformed suggestions: random attribute subsets with
//!   random split points. The floor any data-aware method must beat.
//! * [`grid_clique`] — a small grid-density subspace-clustering system in the
//!   spirit of CLIQUE, standing in for the "exhaustive subspace clustering"
//!   comparison of Section 6.

pub mod full_product;
pub mod grid_clique;
pub mod random_map;
pub mod single_attribute;

pub use full_product::FullProductBaseline;
pub use grid_clique::{GridCliqueBaseline, GridCliqueConfig};
pub use random_map::{RandomMapBaseline, RandomMapConfig};
pub use single_attribute::SingleAttributeBaseline;
