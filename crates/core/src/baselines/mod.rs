//! Baseline map generators used by the evaluation (experiment E8).
//!
//! The paper positions Atlas against two families of alternatives
//! (Section 6): exhaustive cluster/subspace analysis, which returns one
//! complete but unreadable answer, and naive suggestions that ignore the data
//! distribution. The baselines here make that comparison concrete:
//!
//! * [`full_product`] — the exhaustive enumeration: cut *every* attribute and
//!   take the product of all candidate maps. Complete, but violates every
//!   convenience constraint (region count explodes, queries carry one
//!   predicate per attribute).
//! * [`single_attribute`] — no clustering, no merging: just the ranked
//!   one-attribute candidate maps. Readable but blind to multi-attribute
//!   structure.
//! * [`random_map`] — uninformed suggestions: random attribute subsets with
//!   random split points. The floor any data-aware method must beat.
//! * [`grid_clique`] — a small grid-density subspace-clustering system in the
//!   spirit of CLIQUE, standing in for the "exhaustive subspace clustering"
//!   comparison of Section 6.
//!
//! None of the baselines owns a private pipeline any more: each one is
//! expressed with the stage traits of [`crate::pipeline`] — the random and
//! grid cutters are [`crate::pipeline::CutStrategy`] implementations
//! ([`RandomCut`], [`GridCut`]), the density-filtered Apriori step is a
//! [`crate::pipeline::MergePolicy`] ([`DenseProductMerge`]), and the
//! exhaustive/single-attribute baselines reuse the paper's own stages with
//! steps omitted. Any of them can be plugged into a prepared engine through
//! [`crate::engine::AtlasBuilder`].

pub mod full_product;
pub mod grid_clique;
pub mod random_map;
pub mod single_attribute;

pub use full_product::FullProductBaseline;
pub use grid_clique::{DenseProductMerge, GridCliqueBaseline, GridCliqueConfig, GridCut};
pub use random_map::{RandomCut, RandomMapBaseline, RandomMapConfig};
pub use single_attribute::SingleAttributeBaseline;
