//! Single-attribute baseline: the candidate maps, ranked, nothing more.
//!
//! Built from the shared stage traits — [`PaperCut`] for the candidates,
//! [`EntropyRanker`] for the ordering — with the clustering and merging
//! steps simply omitted.

use crate::candidates::generate_candidates_in_context;
use crate::cut::CutConfig;
use crate::error::{AtlasError, Result};
use crate::pipeline::{EntropyRanker, PaperCut, PipelineContext, Ranker};
use crate::profile::TableProfile;
use crate::rank::RankedMap;
use atlas_columnar::{Bitmap, Table};
use atlas_query::ConjunctiveQuery;

/// The no-clustering, no-merging baseline.
///
/// It simply returns the one-attribute candidate maps ranked by entropy. Its
/// maps are maximally readable (one predicate each) but can never express
/// multi-attribute structure, which is exactly what Figure 2 of the paper is
/// about.
#[derive(Debug, Clone, Default)]
pub struct SingleAttributeBaseline {
    /// The cut configuration used for every attribute.
    pub cut: CutConfig,
}

impl SingleAttributeBaseline {
    /// Generate the ranked single-attribute maps for a working set.
    pub fn generate(
        &self,
        table: &Table,
        working: &Bitmap,
        user_query: &ConjunctiveQuery,
    ) -> Result<Vec<RankedMap>> {
        let profile = TableProfile::empty(table.num_rows());
        let strategy = PaperCut;
        let ctx = PipelineContext {
            table,
            profile: &profile,
            cut_config: &self.cut,
            cut_strategy: &strategy,
            drop_empty_regions: true,
            pool: minirayon::ThreadPool::sequential(),
        };
        let candidates = generate_candidates_in_context(&ctx, working, user_query, None)?;
        if candidates.is_empty() {
            return Err(AtlasError::NoCuttableAttributes);
        }
        Ok(EntropyRanker.rank(candidates.maps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_columnar::{DataType, Field, Schema, TableBuilder, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("balanced", DataType::Int),
            Field::new("skewed", DataType::Str),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema);
        for i in 0..100i64 {
            b.push_row(&[
                Value::Int(i % 10),
                Value::Str(if i < 95 { "common" } else { "rare" }.into()),
            ])
            .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn produces_one_map_per_attribute_each_with_one_predicate() {
        let t = table();
        let baseline = SingleAttributeBaseline::default();
        let maps = baseline
            .generate(&t, &t.full_selection(), &ConjunctiveQuery::all("t"))
            .unwrap();
        assert_eq!(maps.len(), 2);
        for ranked in &maps {
            assert_eq!(ranked.map.max_predicates(), 1);
            assert_eq!(ranked.map.source_attributes.len(), 1);
        }
        // The balanced attribute ranks above the skewed one.
        assert_eq!(maps[0].map.source_attributes, vec!["balanced"]);
        assert!(maps[0].score > maps[1].score);
    }
}
