//! Exhaustive product baseline: cut everything, intersect everything.
//!
//! Built from the shared stage traits — [`PaperCut`] for the candidates,
//! [`ProductMerge`] for the (single, exhaustive) merge — rather than a
//! pipeline of its own.

use crate::candidates::generate_candidates_in_context;
use crate::cut::CutConfig;
use crate::error::{AtlasError, Result};
use crate::map::DataMap;
use crate::pipeline::{MergePolicy, PaperCut, PipelineContext, ProductMerge};
use crate::profile::TableProfile;
use atlas_columnar::{Bitmap, Table};
use atlas_query::ConjunctiveQuery;

/// The exhaustive-enumeration baseline.
///
/// Every cuttable attribute is cut (two-way by default) and the product of
/// *all* candidate maps is returned as a single map. This is the behaviour
/// Atlas explicitly avoids: the number of regions grows exponentially with
/// the number of attributes and every region query mentions every attribute,
/// so the output is complete but unreadable.
#[derive(Debug, Clone)]
pub struct FullProductBaseline {
    /// The cut configuration used for every attribute.
    pub cut: CutConfig,
    /// Whether empty intersections are dropped from the result.
    pub drop_empty_regions: bool,
}

impl Default for FullProductBaseline {
    fn default() -> Self {
        FullProductBaseline {
            cut: CutConfig::default(),
            drop_empty_regions: true,
        }
    }
}

impl FullProductBaseline {
    /// Generate the single exhaustive map for a working set.
    pub fn generate(
        &self,
        table: &Table,
        working: &Bitmap,
        user_query: &ConjunctiveQuery,
    ) -> Result<DataMap> {
        let profile = TableProfile::empty(table.num_rows());
        let strategy = PaperCut;
        let ctx = PipelineContext {
            table,
            profile: &profile,
            cut_config: &self.cut,
            cut_strategy: &strategy,
            drop_empty_regions: self.drop_empty_regions,
            pool: minirayon::ThreadPool::sequential(),
        };
        let candidates = generate_candidates_in_context(&ctx, working, user_query, None)?;
        if candidates.is_empty() {
            return Err(AtlasError::NoCuttableAttributes);
        }
        ProductMerge
            .merge(&ctx, &candidates.maps, working)?
            .ok_or(AtlasError::NoCuttableAttributes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_columnar::{DataType, Field, Schema, TableBuilder, Value};

    fn table(columns: usize, rows: usize) -> Table {
        let fields: Vec<Field> = (0..columns)
            .map(|c| Field::new(format!("x{c}"), DataType::Float))
            .collect();
        let schema = Schema::new(fields).unwrap();
        let mut b = TableBuilder::new("t", schema);
        for i in 0..rows {
            let row: Vec<Value> = (0..columns)
                .map(|c| Value::Float(((i * (c + 3) * 31) % 100) as f64))
                .collect();
            b.push_row(&row).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn region_count_grows_exponentially_with_attributes() {
        let baseline = FullProductBaseline::default();
        let mut previous = 0usize;
        for columns in [2usize, 4, 6] {
            let t = table(columns, 800);
            let map = baseline
                .generate(&t, &t.full_selection(), &ConjunctiveQuery::all("t"))
                .unwrap();
            assert!(map.num_regions() > previous);
            assert!(
                map.num_regions() > 2usize.pow(columns as u32) / 2,
                "columns={columns} regions={}",
                map.num_regions()
            );
            // Every region query mentions every attribute: unreadable.
            assert_eq!(map.max_predicates(), columns);
            previous = map.num_regions();
        }
    }

    #[test]
    fn result_is_still_a_valid_partition() {
        let t = table(4, 500);
        let baseline = FullProductBaseline::default();
        let map = baseline
            .generate(&t, &t.full_selection(), &ConjunctiveQuery::all("t"))
            .unwrap();
        assert!(map.regions_are_disjoint());
        assert_eq!(map.covered_count(), 500);
    }

    #[test]
    fn uncuttable_tables_are_an_error() {
        let schema = Schema::new(vec![Field::new("c", DataType::Int)]).unwrap();
        let mut b = TableBuilder::new("t", schema);
        for _ in 0..10 {
            b.push_row(&[Value::Int(1)]).unwrap();
        }
        let t = b.build().unwrap();
        let baseline = FullProductBaseline::default();
        assert!(matches!(
            baseline.generate(&t, &t.full_selection(), &ConjunctiveQuery::all("t")),
            Err(AtlasError::NoCuttableAttributes)
        ));
    }
}
