//! A small grid-density subspace-clustering baseline (CLIQUE-style).
//!
//! Section 6 of the paper positions Atlas against subspace clustering, whose
//! canonical grid-based representative is CLIQUE (Agrawal et al.): discretise
//! every dimension into ξ equal-width intervals, call a cell *dense* when it
//! holds more than a τ fraction of the tuples, combine dense units
//! bottom-up (Apriori-style) into higher-dimensional dense units, and report
//! connected dense units as clusters. This implementation covers 1- and
//! 2-dimensional subspaces of the numeric attributes, which is enough to act
//! as the "exhaustive subspace clusterer" comparator in experiment E8: it
//! returns *all* dense regions of *all* subspaces rather than a handful of
//! readable maps.

use crate::error::{AtlasError, Result};
use crate::map::DataMap;
use crate::region::Region;
use atlas_columnar::{Bitmap, DataType, Table};
use atlas_query::{ConjunctiveQuery, Predicate};

/// Configuration of the grid-density baseline.
#[derive(Debug, Clone)]
pub struct GridCliqueConfig {
    /// Number of equal-width intervals per dimension (ξ).
    pub intervals: usize,
    /// Density threshold (τ): a unit is dense when it holds at least this
    /// fraction of the working set.
    pub density_threshold: f64,
    /// Whether to also mine 2-dimensional subspaces.
    pub two_dimensional: bool,
}

impl Default for GridCliqueConfig {
    fn default() -> Self {
        GridCliqueConfig {
            intervals: 8,
            density_threshold: 0.05,
            two_dimensional: true,
        }
    }
}

/// The grid-density subspace-clustering baseline.
#[derive(Debug, Clone, Default)]
pub struct GridCliqueBaseline {
    /// Configuration.
    pub config: GridCliqueConfig,
}

/// A dense unit found by the baseline.
#[derive(Debug, Clone)]
struct DenseUnit {
    /// The attributes and interval index per attribute.
    intervals: Vec<(String, usize)>,
    /// The rows in the unit.
    selection: Bitmap,
}

impl GridCliqueBaseline {
    /// Create a baseline with the given configuration.
    pub fn new(config: GridCliqueConfig) -> Self {
        GridCliqueBaseline { config }
    }

    /// Mine the dense subspace units of the working set and report each
    /// maximal set of connected dense units (per subspace) as one map whose
    /// regions are the dense units.
    ///
    /// The output intentionally ignores the readability constraints: it is the
    /// exhaustive answer a subspace clusterer would give.
    pub fn generate(
        &self,
        table: &Table,
        working: &Bitmap,
        user_query: &ConjunctiveQuery,
    ) -> Result<Vec<DataMap>> {
        if self.config.intervals < 2 {
            return Err(AtlasError::InvalidConfig(
                "intervals must be at least 2".to_string(),
            ));
        }
        let total = working.count();
        if total == 0 {
            return Err(AtlasError::EmptyWorkingSet);
        }
        let min_count = (self.config.density_threshold * total as f64).ceil() as usize;

        // Numeric attributes only (as in CLIQUE).
        let numeric: Vec<String> = table
            .schema()
            .fields()
            .iter()
            .filter(|f| matches!(f.dtype, DataType::Int | DataType::Float))
            .map(|f| f.name.clone())
            .collect();
        if numeric.is_empty() {
            return Err(AtlasError::NoCuttableAttributes);
        }

        // 1-dimensional dense units per attribute.
        let mut one_dim: Vec<(String, Vec<DenseUnit>)> = Vec::new();
        for attr in &numeric {
            let units = self.dense_units_1d(table, working, attr, min_count)?;
            if !units.is_empty() {
                one_dim.push((attr.clone(), units));
            }
        }

        let mut maps = Vec::new();
        // Report every 1-d subspace with at least 2 dense units as a map.
        for (attr, units) in &one_dim {
            if units.len() >= 2 {
                maps.push(self.units_to_map(units, user_query, std::slice::from_ref(attr)));
            }
        }

        // 2-dimensional subspaces: intersect dense units of pairs of attributes
        // (the Apriori candidate generation of CLIQUE, restricted to 2-d).
        if self.config.two_dimensional {
            for i in 0..one_dim.len() {
                for j in (i + 1)..one_dim.len() {
                    let mut units_2d = Vec::new();
                    for a in &one_dim[i].1 {
                        for b in &one_dim[j].1 {
                            let selection = a.selection.and(&b.selection);
                            if selection.count() >= min_count {
                                let mut intervals = a.intervals.clone();
                                intervals.extend(b.intervals.iter().cloned());
                                units_2d.push(DenseUnit {
                                    intervals,
                                    selection,
                                });
                            }
                        }
                    }
                    if units_2d.len() >= 2 {
                        let attrs = vec![one_dim[i].0.clone(), one_dim[j].0.clone()];
                        maps.push(self.units_to_map(&units_2d, user_query, &attrs));
                    }
                }
            }
        }
        if maps.is_empty() {
            return Err(AtlasError::NoCuttableAttributes);
        }
        Ok(maps)
    }

    fn dense_units_1d(
        &self,
        table: &Table,
        working: &Bitmap,
        attribute: &str,
        min_count: usize,
    ) -> Result<Vec<DenseUnit>> {
        let column = table.column(attribute)?;
        let Some((min, max)) = column.numeric_min_max(working) else {
            return Ok(Vec::new());
        };
        if max <= min {
            return Ok(Vec::new());
        }
        let width = (max - min) / self.config.intervals as f64;
        let mut units = Vec::new();
        for i in 0..self.config.intervals {
            let lo = min + width * i as f64;
            let hi = if i + 1 == self.config.intervals {
                max
            } else {
                min + width * (i + 1) as f64
            };
            // Upper-exclusive except for the last interval, approximated with a
            // closed range that stops just under `hi`.
            let hi_closed = if i + 1 == self.config.intervals {
                hi
            } else {
                prev_float(hi)
            };
            let selection = column.select_range(working, lo, hi_closed);
            if selection.count() >= min_count {
                units.push(DenseUnit {
                    intervals: vec![(attribute.to_string(), i)],
                    selection,
                });
            }
        }
        Ok(units)
    }

    #[allow(clippy::unused_self)]
    fn units_to_map(
        &self,
        units: &[DenseUnit],
        user_query: &ConjunctiveQuery,
        attributes: &[String],
    ) -> DataMap {
        let regions: Vec<Region> = units
            .iter()
            .map(|unit| {
                let mut query = user_query.clone();
                for (attr, interval) in &unit.intervals {
                    // The predicate records the interval index as an integer
                    // range; exact bounds are recoverable from the selection.
                    query.add_predicate(Predicate::range(
                        attr.clone(),
                        *interval as f64,
                        *interval as f64,
                    ));
                }
                Region::new(query, unit.selection.clone())
            })
            .collect();
        DataMap::new(regions, attributes.to_vec())
    }
}

/// The largest representable float strictly below `x` (for finite, non-zero `x`).
fn prev_float(x: f64) -> f64 {
    if !x.is_finite() {
        return x;
    }
    if x == 0.0 {
        return -f64::MIN_POSITIVE;
    }
    f64::from_bits(if x > 0.0 {
        x.to_bits() - 1
    } else {
        x.to_bits() + 1
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_columnar::{Field, Schema, TableBuilder, Value};

    /// Two tight 2-d clusters plus sparse background noise.
    fn clustered_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Float),
            Field::new("y", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema);
        for i in 0..200 {
            let (x, y) = if i < 90 {
                (10.0 + (i % 10) as f64 * 0.1, 20.0 + (i % 9) as f64 * 0.1)
            } else if i < 180 {
                (80.0 + (i % 10) as f64 * 0.1, 90.0 + (i % 9) as f64 * 0.1)
            } else {
                ((i * 37 % 100) as f64, (i * 53 % 100) as f64)
            };
            b.push_row(&[Value::Float(x), Value::Float(y)]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn finds_dense_units_in_one_and_two_dimensions() {
        let t = clustered_table();
        let baseline = GridCliqueBaseline::default();
        let maps = baseline
            .generate(&t, &t.full_selection(), &ConjunctiveQuery::all("t"))
            .unwrap();
        // 1-d maps for x and y plus a 2-d map for (x, y).
        assert!(maps.len() >= 3, "got {} maps", maps.len());
        let two_d = maps
            .iter()
            .find(|m| m.source_attributes.len() == 2)
            .expect("a 2-d subspace map");
        // The two planted clusters each fill one dense 2-d unit.
        assert!(two_d.num_regions() >= 2);
        let mut counts = two_d.region_counts();
        counts.sort_unstable();
        counts.reverse();
        assert!(counts[0] >= 80 && counts[1] >= 80, "counts {counts:?}");
    }

    #[test]
    fn density_threshold_prunes_sparse_units() {
        let t = clustered_table();
        let strict = GridCliqueBaseline::new(GridCliqueConfig {
            density_threshold: 0.4,
            ..GridCliqueConfig::default()
        });
        let maps = strict.generate(&t, &t.full_selection(), &ConjunctiveQuery::all("t"));
        // At 40% density only the two big clusters' units survive, and since a
        // subspace needs >= 2 dense units to form a map, results shrink or
        // disappear entirely.
        if let Ok(maps) = maps {
            for map in maps {
                for region in &map.regions {
                    assert!(region.count() >= 80);
                }
            }
        }
    }

    #[test]
    fn one_dimensional_only_mode() {
        let t = clustered_table();
        let baseline = GridCliqueBaseline::new(GridCliqueConfig {
            two_dimensional: false,
            ..GridCliqueConfig::default()
        });
        let maps = baseline
            .generate(&t, &t.full_selection(), &ConjunctiveQuery::all("t"))
            .unwrap();
        for map in &maps {
            assert_eq!(map.source_attributes.len(), 1);
        }
    }

    #[test]
    fn rejects_empty_working_sets_and_bad_config() {
        let t = clustered_table();
        let baseline = GridCliqueBaseline::default();
        assert!(matches!(
            baseline.generate(&t, &t.empty_selection(), &ConjunctiveQuery::all("t")),
            Err(AtlasError::EmptyWorkingSet)
        ));
        let bad = GridCliqueBaseline::new(GridCliqueConfig {
            intervals: 1,
            ..GridCliqueConfig::default()
        });
        assert!(bad
            .generate(&t, &t.full_selection(), &ConjunctiveQuery::all("t"))
            .is_err());
    }

    #[test]
    fn categorical_only_tables_are_not_supported() {
        let schema = Schema::new(vec![Field::new("c", DataType::Str)]).unwrap();
        let mut b = TableBuilder::new("t", schema);
        for i in 0..50 {
            b.push_row(&[Value::Str(["a", "b"][i % 2].into())]).unwrap();
        }
        let t = b.build().unwrap();
        let baseline = GridCliqueBaseline::default();
        assert!(matches!(
            baseline.generate(&t, &t.full_selection(), &ConjunctiveQuery::all("t")),
            Err(AtlasError::NoCuttableAttributes)
        ));
    }
}
