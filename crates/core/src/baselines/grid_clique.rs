//! A small grid-density subspace-clustering baseline (CLIQUE-style).
//!
//! Section 6 of the paper positions Atlas against subspace clustering, whose
//! canonical grid-based representative is CLIQUE (Agrawal et al.): discretise
//! every dimension into ξ equal-width intervals, call a cell *dense* when it
//! holds more than a τ fraction of the tuples, combine dense units
//! bottom-up (Apriori-style) into higher-dimensional dense units, and report
//! connected dense units as clusters.
//!
//! Since the pipeline redesign the baseline is built from stage traits rather
//! than a private pipeline: [`GridCut`] is a [`CutStrategy`] that emits the
//! dense 1-dimensional units of an attribute as a map, and
//! [`DenseProductMerge`] is a [`MergePolicy`] that intersects unit maps and
//! keeps only the intersections that stay dense (the Apriori step, restricted
//! to 2-d). [`GridCliqueBaseline::generate`] composes the two over all
//! numeric attributes, which is enough to act as the "exhaustive subspace
//! clusterer" comparator in experiment E8: it returns *all* dense regions of
//! *all* subspaces rather than a handful of readable maps.

use crate::error::{AtlasError, Result};
use crate::map::DataMap;
use crate::merge::product_maps;
use crate::pipeline::{CutStrategy, MergePolicy, PipelineContext};
use crate::profile::TableProfile;
use crate::region::Region;
use atlas_columnar::{Bitmap, DataType, Table};
use atlas_query::{ConjunctiveQuery, Predicate};

/// Configuration of the grid-density baseline.
#[derive(Debug, Clone)]
pub struct GridCliqueConfig {
    /// Number of equal-width intervals per dimension (ξ).
    pub intervals: usize,
    /// Density threshold (τ): a unit is dense when it holds at least this
    /// fraction of the working set.
    pub density_threshold: f64,
    /// Whether to also mine 2-dimensional subspaces.
    pub two_dimensional: bool,
}

impl Default for GridCliqueConfig {
    fn default() -> Self {
        GridCliqueConfig {
            intervals: 8,
            density_threshold: 0.05,
            two_dimensional: true,
        }
    }
}

/// A [`CutStrategy`] that discretises a numeric attribute into equal-width
/// intervals and keeps only the *dense* ones (CLIQUE's 1-dimensional pass).
///
/// Unlike the paper's `CUT`, the result is not a partition: sparse rows fall
/// outside every region, and an attribute with a single dense unit still
/// yields a (one-region) map so higher-dimensional mining can intersect it.
/// Categorical attributes are not cut (`Ok(None)`), as in CLIQUE.
#[derive(Debug, Clone, Copy)]
pub struct GridCut {
    /// Number of equal-width intervals (ξ).
    pub intervals: usize,
    /// Density threshold (τ) as a fraction of the working set.
    pub density_threshold: f64,
}

impl CutStrategy for GridCut {
    fn name(&self) -> &str {
        "grid-dense-cut"
    }

    fn cut(
        &self,
        ctx: &PipelineContext<'_>,
        working: &Bitmap,
        parent_query: &ConjunctiveQuery,
        attribute: &str,
    ) -> Result<Option<DataMap>> {
        let column = ctx.table.column(attribute)?;
        if !matches!(column.data_type(), DataType::Int | DataType::Float) {
            return Ok(None);
        }
        let total = working.count();
        if total == 0 {
            return Ok(None);
        }
        let min_count = (self.density_threshold * total as f64).ceil() as usize;
        let Some((min, max)) = column.numeric_min_max(working) else {
            return Ok(None);
        };
        if max <= min {
            return Ok(None);
        }
        let width = (max - min) / self.intervals as f64;
        let mut regions = Vec::new();
        for i in 0..self.intervals {
            let lo = min + width * i as f64;
            // Upper-exclusive except for the last interval, approximated with
            // a closed range that stops just under the next boundary.
            let hi = if i + 1 == self.intervals {
                max
            } else {
                prev_float(min + width * (i + 1) as f64)
            };
            let selection = column.select_range(working, lo, hi);
            if selection.count() >= min_count {
                // The predicate records the interval index as an integer
                // range; exact bounds are recoverable from the selection.
                let query = parent_query
                    .clone()
                    .and(Predicate::range(attribute, i as f64, i as f64));
                regions.push(Region::new(query, selection));
            }
        }
        if regions.is_empty() {
            return Ok(None);
        }
        Ok(Some(DataMap::new(regions, vec![attribute.to_string()])))
    }
}

/// A [`MergePolicy`] implementing CLIQUE's Apriori step: the product of the
/// member maps, keeping only intersections that are still dense. Returns
/// `Ok(None)` when fewer than two dense units survive (a subspace needs at
/// least two units to describe structure).
#[derive(Debug, Clone, Copy)]
pub struct DenseProductMerge {
    /// Density threshold (τ) as a fraction of the working set.
    pub density_threshold: f64,
}

impl MergePolicy for DenseProductMerge {
    fn name(&self) -> &str {
        "dense-product"
    }

    fn merge(
        &self,
        ctx: &PipelineContext<'_>,
        members: &[DataMap],
        working: &Bitmap,
    ) -> Result<Option<DataMap>> {
        let min_count = (self.density_threshold * working.count() as f64).ceil() as usize;
        let Some(product) = product_maps(members, ctx.drop_empty_regions) else {
            return Ok(None);
        };
        let regions: Vec<Region> = product
            .regions
            .into_iter()
            .filter(|r| r.count() >= min_count)
            .collect();
        if regions.len() < 2 {
            return Ok(None);
        }
        Ok(Some(DataMap::new(regions, product.source_attributes)))
    }
}

/// The grid-density subspace-clustering baseline.
#[derive(Debug, Clone, Default)]
pub struct GridCliqueBaseline {
    /// Configuration.
    pub config: GridCliqueConfig,
}

impl GridCliqueBaseline {
    /// Create a baseline with the given configuration.
    pub fn new(config: GridCliqueConfig) -> Self {
        GridCliqueBaseline { config }
    }

    /// Mine the dense subspace units of the working set and report each
    /// subspace with at least two dense units as one map whose regions are
    /// the dense units.
    ///
    /// The output intentionally ignores the readability constraints: it is the
    /// exhaustive answer a subspace clusterer would give.
    pub fn generate(
        &self,
        table: &Table,
        working: &Bitmap,
        user_query: &ConjunctiveQuery,
    ) -> Result<Vec<DataMap>> {
        if self.config.intervals < 2 {
            return Err(AtlasError::InvalidConfig(
                "intervals must be at least 2".to_string(),
            ));
        }
        if working.count() == 0 {
            return Err(AtlasError::EmptyWorkingSet);
        }
        let cutter = GridCut {
            intervals: self.config.intervals,
            density_threshold: self.config.density_threshold,
        };
        let merger = DenseProductMerge {
            density_threshold: self.config.density_threshold,
        };
        // The grid stages read only the raw columns, never the statistics
        // profile, so an empty one avoids a useless whole-table scan.
        let profile = TableProfile::empty(table.num_rows());
        let cut_config = crate::cut::CutConfig::default();
        let ctx = PipelineContext {
            table,
            profile: &profile,
            cut_config: &cut_config,
            cut_strategy: &cutter,
            drop_empty_regions: true,
            pool: minirayon::ThreadPool::sequential(),
        };

        // Numeric attributes only (as in CLIQUE).
        let numeric: Vec<String> = table
            .schema()
            .fields()
            .iter()
            .filter(|f| matches!(f.dtype, DataType::Int | DataType::Float))
            .map(|f| f.name.clone())
            .collect();
        if numeric.is_empty() {
            return Err(AtlasError::NoCuttableAttributes);
        }

        // 1-dimensional dense-unit maps per attribute.
        let mut one_dim: Vec<DataMap> = Vec::new();
        for attr in &numeric {
            if let Some(map) = cutter.cut(&ctx, working, user_query, attr)? {
                one_dim.push(map);
            }
        }

        // Report every 1-d subspace with at least 2 dense units as a map.
        let mut maps: Vec<DataMap> = one_dim
            .iter()
            .filter(|m| m.num_regions() >= 2)
            .cloned()
            .collect();

        // 2-dimensional subspaces: the Apriori step over pairs of attributes.
        if self.config.two_dimensional {
            for i in 0..one_dim.len() {
                for j in (i + 1)..one_dim.len() {
                    let members = [one_dim[i].clone(), one_dim[j].clone()];
                    if let Some(map) = merger.merge(&ctx, &members, working)? {
                        maps.push(map);
                    }
                }
            }
        }
        if maps.is_empty() {
            return Err(AtlasError::NoCuttableAttributes);
        }
        Ok(maps)
    }
}

/// The largest representable float strictly below `x` (for finite, non-zero `x`).
fn prev_float(x: f64) -> f64 {
    if !x.is_finite() {
        return x;
    }
    if x == 0.0 {
        return -f64::MIN_POSITIVE;
    }
    f64::from_bits(if x > 0.0 {
        x.to_bits() - 1
    } else {
        x.to_bits() + 1
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_columnar::{Field, Schema, TableBuilder, Value};

    /// Two tight 2-d clusters plus sparse background noise.
    fn clustered_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Float),
            Field::new("y", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema);
        for i in 0..200 {
            let (x, y) = if i < 90 {
                (10.0 + (i % 10) as f64 * 0.1, 20.0 + (i % 9) as f64 * 0.1)
            } else if i < 180 {
                (80.0 + (i % 10) as f64 * 0.1, 90.0 + (i % 9) as f64 * 0.1)
            } else {
                ((i * 37 % 100) as f64, (i * 53 % 100) as f64)
            };
            b.push_row(&[Value::Float(x), Value::Float(y)]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn finds_dense_units_in_one_and_two_dimensions() {
        let t = clustered_table();
        let baseline = GridCliqueBaseline::default();
        let maps = baseline
            .generate(&t, &t.full_selection(), &ConjunctiveQuery::all("t"))
            .unwrap();
        // 1-d maps for x and y plus a 2-d map for (x, y).
        assert!(maps.len() >= 3, "got {} maps", maps.len());
        let two_d = maps
            .iter()
            .find(|m| m.source_attributes.len() == 2)
            .expect("a 2-d subspace map");
        // The two planted clusters each fill one dense 2-d unit.
        assert!(two_d.num_regions() >= 2);
        let mut counts = two_d.region_counts();
        counts.sort_unstable();
        counts.reverse();
        assert!(counts[0] >= 80 && counts[1] >= 80, "counts {counts:?}");
    }

    #[test]
    fn density_threshold_prunes_sparse_units() {
        let t = clustered_table();
        let strict = GridCliqueBaseline::new(GridCliqueConfig {
            density_threshold: 0.4,
            ..GridCliqueConfig::default()
        });
        let maps = strict.generate(&t, &t.full_selection(), &ConjunctiveQuery::all("t"));
        // At 40% density only the two big clusters' units survive, and since a
        // subspace needs >= 2 dense units to form a map, results shrink or
        // disappear entirely.
        if let Ok(maps) = maps {
            for map in maps {
                for region in &map.regions {
                    assert!(region.count() >= 80);
                }
            }
        }
    }

    #[test]
    fn one_dimensional_only_mode() {
        let t = clustered_table();
        let baseline = GridCliqueBaseline::new(GridCliqueConfig {
            two_dimensional: false,
            ..GridCliqueConfig::default()
        });
        let maps = baseline
            .generate(&t, &t.full_selection(), &ConjunctiveQuery::all("t"))
            .unwrap();
        for map in &maps {
            assert_eq!(map.source_attributes.len(), 1);
        }
    }

    #[test]
    fn rejects_empty_working_sets_and_bad_config() {
        let t = clustered_table();
        let baseline = GridCliqueBaseline::default();
        assert!(matches!(
            baseline.generate(&t, &t.empty_selection(), &ConjunctiveQuery::all("t")),
            Err(AtlasError::EmptyWorkingSet)
        ));
        let bad = GridCliqueBaseline::new(GridCliqueConfig {
            intervals: 1,
            ..GridCliqueConfig::default()
        });
        assert!(bad
            .generate(&t, &t.full_selection(), &ConjunctiveQuery::all("t"))
            .is_err());
    }

    #[test]
    fn categorical_only_tables_are_not_supported() {
        let schema = Schema::new(vec![Field::new("c", DataType::Str)]).unwrap();
        let mut b = TableBuilder::new("t", schema);
        for i in 0..50 {
            b.push_row(&[Value::Str(["a", "b"][i % 2].into())]).unwrap();
        }
        let t = b.build().unwrap();
        let baseline = GridCliqueBaseline::default();
        assert!(matches!(
            baseline.generate(&t, &t.full_selection(), &ConjunctiveQuery::all("t")),
            Err(AtlasError::NoCuttableAttributes)
        ));
    }
}
