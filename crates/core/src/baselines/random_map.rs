//! Random-map baseline: uninformed query suggestions.
//!
//! Since the pipeline redesign the baseline is no longer a separate code
//! path: the random splitting lives in [`RandomCut`], an alternative
//! [`CutStrategy`] implementation, and maps are assembled by composing those
//! cuts through the shared [`CompositionMerge`] policy — the same machinery
//! the real engine uses, just with data-blind split points.

use crate::cut::CutConfig;
use crate::error::{AtlasError, Result};
use crate::map::DataMap;
use crate::pipeline::{CompositionMerge, CutStrategy, MergePolicy, PipelineContext};
use crate::profile::TableProfile;
use crate::region::Region;
use atlas_columnar::{Bitmap, DataType, Table};
use atlas_query::{ConjunctiveQuery, Predicate};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// Configuration of the random baseline.
#[derive(Debug, Clone)]
pub struct RandomMapConfig {
    /// Number of maps to generate.
    pub num_maps: usize,
    /// Maximum number of attributes per map.
    pub max_attributes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomMapConfig {
    fn default() -> Self {
        RandomMapConfig {
            num_maps: 10,
            max_attributes: 3,
            seed: 7,
        }
    }
}

/// A [`CutStrategy`] that splits attributes at *uniformly random* points
/// (instead of data-driven ones): numeric attributes at a random point of
/// their observed range, categorical attributes into random halves of their
/// value list. Any data-aware strategy should produce better-balanced, more
/// informative maps.
///
/// The RNG state is interior (behind a mutex), so the strategy satisfies the
/// `Send + Sync` stage contract while each call advances one deterministic,
/// seeded stream.
#[derive(Debug)]
pub struct RandomCut {
    rng: Mutex<StdRng>,
}

impl RandomCut {
    /// A random cutter with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        RandomCut {
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }
}

impl CutStrategy for RandomCut {
    fn name(&self) -> &str {
        "random-cut"
    }

    fn cut(
        &self,
        ctx: &PipelineContext<'_>,
        working: &Bitmap,
        parent_query: &ConjunctiveQuery,
        attribute: &str,
    ) -> Result<Option<DataMap>> {
        let column = ctx.table.column(attribute)?;
        let mut rng = self.rng.lock().expect("rng lock is never poisoned");
        let regions = match column.data_type() {
            DataType::Int | DataType::Float => {
                let Some((min, max)) = column.numeric_min_max(working) else {
                    return Ok(None);
                };
                if max <= min {
                    return Ok(None);
                }
                let split = rng.gen_range(min..max);
                let low = column.select_range(working, min, split);
                let high = column.select_range(working, nudge_up(split), max);
                vec![
                    Region::new(
                        parent_query
                            .clone()
                            .and(Predicate::range(attribute, min, split)),
                        low,
                    ),
                    Region::new(
                        parent_query
                            .clone()
                            .and(Predicate::range(attribute, nudge_up(split), max)),
                        high,
                    ),
                ]
            }
            DataType::Str | DataType::Bool => {
                let mut categories: Vec<String> = column
                    .categories_by_frequency(working)
                    .into_iter()
                    .map(|(v, _)| v)
                    .collect();
                if categories.len() < 2 {
                    return Ok(None);
                }
                categories.shuffle(&mut *rng);
                let cut_point = rng.gen_range(1..categories.len());
                let (left, right) = categories.split_at(cut_point);
                [left, right]
                    .into_iter()
                    .map(|group| {
                        Region::new(
                            parent_query
                                .clone()
                                .and(Predicate::values(attribute, group.iter().cloned())),
                            column.select_in(working, group),
                        )
                    })
                    .collect()
            }
        };
        Ok(Some(DataMap::new(regions, vec![attribute.to_string()])))
    }
}

/// The uninformed baseline: random attribute subsets, random split points.
#[derive(Debug, Clone, Default)]
pub struct RandomMapBaseline {
    /// Configuration.
    pub config: RandomMapConfig,
}

impl RandomMapBaseline {
    /// Create a baseline with the given configuration.
    pub fn new(config: RandomMapConfig) -> Self {
        RandomMapBaseline { config }
    }

    /// Generate random maps over the working set by composing [`RandomCut`]
    /// splits through the shared [`CompositionMerge`] policy.
    pub fn generate(
        &self,
        table: &Table,
        working: &Bitmap,
        user_query: &ConjunctiveQuery,
    ) -> Result<Vec<DataMap>> {
        let profile = TableProfile::empty(table.num_rows());
        let strategy = RandomCut::new(self.config.seed);
        let cut_config = CutConfig::default();
        let ctx = PipelineContext {
            table,
            profile: &profile,
            cut_config: &cut_config,
            cut_strategy: &strategy,
            drop_empty_regions: true,
            pool: minirayon::ThreadPool::sequential(),
        };
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        // Usability is judged on the *working set* (a column constant within
        // a drill-down subset is not usable there, whatever the full table
        // looks like).
        let usable: Vec<String> = table
            .schema()
            .fields()
            .iter()
            .filter(|f| {
                let stats = profile
                    .stats_for(table, &f.name, working)
                    .expect("schema-listed column exists");
                stats.distinct_count >= 2 && !stats.looks_like_identifier()
            })
            .map(|f| f.name.clone())
            .collect();
        if usable.is_empty() {
            return Err(AtlasError::NoCuttableAttributes);
        }
        let mut maps = Vec::with_capacity(self.config.num_maps);
        for _ in 0..self.config.num_maps {
            let how_many = rng.gen_range(1..=self.config.max_attributes.min(usable.len()));
            let mut attrs = usable.clone();
            attrs.shuffle(&mut rng);
            attrs.truncate(how_many);
            // Composition only reads the *attribute* of members after the
            // first, so the whole working set as a single base region plus
            // one region-less stub per attribute reproduces the recursive
            // random splitting exactly: each region is re-cut locally (its
            // own min/max) by [`RandomCut`], and regions an attribute cannot
            // split are kept whole.
            let mut members = Vec::with_capacity(attrs.len() + 1);
            members.push(DataMap::new(
                vec![Region::new(user_query.clone(), working.clone())],
                Vec::new(),
            ));
            for attr in &attrs {
                members.push(DataMap::new(Vec::new(), vec![attr.clone()]));
            }
            let map = CompositionMerge
                .merge(&ctx, &members, working)?
                .expect("composing a non-empty member list yields a map");
            maps.push(map);
        }
        Ok(maps)
    }
}

fn nudge_up(x: f64) -> f64 {
    if x.is_finite() {
        f64::from_bits(if x >= 0.0 {
            x.to_bits() + 1
        } else {
            x.to_bits() - 1
        })
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_columnar::{Field, Schema, TableBuilder, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Float),
            Field::new("group", DataType::Str),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema);
        for i in 0..300 {
            b.push_row(&[
                Value::Float((i % 100) as f64),
                Value::Str(["a", "b", "c"][i % 3].into()),
            ])
            .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn generates_requested_number_of_valid_maps() {
        let t = table();
        let baseline = RandomMapBaseline::new(RandomMapConfig {
            num_maps: 8,
            max_attributes: 2,
            seed: 3,
        });
        let maps = baseline
            .generate(&t, &t.full_selection(), &ConjunctiveQuery::all("t"))
            .unwrap();
        assert_eq!(maps.len(), 8);
        for map in &maps {
            assert!(map.num_regions() >= 1);
            assert!(map.regions_are_disjoint());
            assert!(map.source_attributes.len() <= 2);
            // Random maps never lose tuples other than through empty regions.
            assert!(map.covered_count() <= 300);
        }
    }

    #[test]
    fn is_deterministic_per_seed() {
        let t = table();
        let make = |seed| {
            RandomMapBaseline::new(RandomMapConfig {
                num_maps: 5,
                max_attributes: 2,
                seed,
            })
            .generate(&t, &t.full_selection(), &ConjunctiveQuery::all("t"))
            .unwrap()
        };
        let a = make(11);
        let b = make(11);
        assert_eq!(a.len(), b.len());
        for (ma, mb) in a.iter().zip(b.iter()) {
            assert_eq!(ma.source_attributes, mb.source_attributes);
            assert_eq!(ma.region_counts(), mb.region_counts());
        }
    }

    #[test]
    fn random_maps_are_usually_less_balanced_than_median_cuts() {
        // The entropy of a median cut is maximal (1 bit for a two-way split);
        // random splits on a uniform attribute average well below that.
        let t = table();
        let baseline = RandomMapBaseline::new(RandomMapConfig {
            num_maps: 20,
            max_attributes: 1,
            seed: 5,
        });
        let maps = baseline
            .generate(&t, &t.full_selection(), &ConjunctiveQuery::all("t"))
            .unwrap();
        let mean_entropy: f64 = maps.iter().map(|m| m.entropy()).sum::<f64>() / maps.len() as f64;
        assert!(mean_entropy < 0.99, "mean random entropy {mean_entropy}");
    }

    #[test]
    fn all_identifier_table_is_an_error() {
        let schema = Schema::new(vec![Field::new("id", DataType::Int)]).unwrap();
        let mut b = TableBuilder::new("t", schema);
        for i in 0..100 {
            b.push_row(&[Value::Int(i)]).unwrap();
        }
        let t = b.build().unwrap();
        let baseline = RandomMapBaseline::default();
        assert!(matches!(
            baseline.generate(&t, &t.full_selection(), &ConjunctiveQuery::all("t")),
            Err(AtlasError::NoCuttableAttributes)
        ));
    }

    #[test]
    fn random_cut_is_a_usable_cut_strategy() {
        // RandomCut plugs into the pipeline traits like any other strategy.
        let t = table();
        let profile = TableProfile::build(&t, Some(TableProfile::DEFAULT_SKETCH_EPSILON));
        let strategy = RandomCut::new(99);
        let cut_config = CutConfig::default();
        let ctx = PipelineContext {
            table: &t,
            profile: &profile,
            cut_config: &cut_config,
            cut_strategy: &strategy,
            drop_empty_regions: true,
            pool: minirayon::ThreadPool::sequential(),
        };
        let working = t.full_selection();
        let query = ConjunctiveQuery::all("t");
        let numeric = strategy.cut(&ctx, &working, &query, "x").unwrap().unwrap();
        assert_eq!(numeric.num_regions(), 2);
        assert!(numeric.regions_are_disjoint());
        let categorical = strategy
            .cut(&ctx, &working, &query, "group")
            .unwrap()
            .unwrap();
        assert_eq!(categorical.num_regions(), 2);
        assert_eq!(categorical.covered_count(), 300);
    }
}
