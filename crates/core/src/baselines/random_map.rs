//! Random-map baseline: uninformed query suggestions.

use crate::error::{AtlasError, Result};
use crate::map::DataMap;
use crate::region::Region;
use atlas_columnar::{Bitmap, DataType, Table};
use atlas_query::{ConjunctiveQuery, Predicate};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration of the random baseline.
#[derive(Debug, Clone)]
pub struct RandomMapConfig {
    /// Number of maps to generate.
    pub num_maps: usize,
    /// Maximum number of attributes per map.
    pub max_attributes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomMapConfig {
    fn default() -> Self {
        RandomMapConfig {
            num_maps: 10,
            max_attributes: 3,
            seed: 7,
        }
    }
}

/// The uninformed baseline: it picks random attribute subsets and splits each
/// numeric attribute at a *uniformly random* point of its range (instead of a
/// data-driven point) and each categorical attribute into random halves of its
/// value list. Any data-aware method should produce better-balanced, more
/// informative maps.
#[derive(Debug, Clone, Default)]
pub struct RandomMapBaseline {
    /// Configuration.
    pub config: RandomMapConfig,
}

impl RandomMapBaseline {
    /// Create a baseline with the given configuration.
    pub fn new(config: RandomMapConfig) -> Self {
        RandomMapBaseline { config }
    }

    /// Generate random maps over the working set.
    pub fn generate(
        &self,
        table: &Table,
        working: &Bitmap,
        user_query: &ConjunctiveQuery,
    ) -> Result<Vec<DataMap>> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let usable: Vec<String> = table
            .schema()
            .fields()
            .iter()
            .filter(|f| {
                let stats = table
                    .column_stats(&f.name, working)
                    .expect("schema-listed column exists");
                stats.distinct_count >= 2 && !stats.looks_like_identifier()
            })
            .map(|f| f.name.clone())
            .collect();
        if usable.is_empty() {
            return Err(AtlasError::NoCuttableAttributes);
        }
        let mut maps = Vec::with_capacity(self.config.num_maps);
        for _ in 0..self.config.num_maps {
            let how_many = rng.gen_range(1..=self.config.max_attributes.min(usable.len()));
            let mut attrs = usable.clone();
            attrs.shuffle(&mut rng);
            attrs.truncate(how_many);
            let mut regions = vec![Region::new(user_query.clone(), working.clone())];
            for attr in &attrs {
                regions = self.split_regions_randomly(table, &regions, attr, &mut rng)?;
            }
            regions.retain(|r| !r.is_empty());
            if !regions.is_empty() {
                maps.push(DataMap::new(regions, attrs));
            }
        }
        Ok(maps)
    }

    fn split_regions_randomly(
        &self,
        table: &Table,
        regions: &[Region],
        attribute: &str,
        rng: &mut StdRng,
    ) -> Result<Vec<Region>> {
        let column = table.column(attribute)?;
        let mut out = Vec::with_capacity(regions.len() * 2);
        for region in regions {
            match column.data_type() {
                DataType::Int | DataType::Float => {
                    let Some((min, max)) = column.numeric_min_max(&region.selection) else {
                        out.push(region.clone());
                        continue;
                    };
                    if max <= min {
                        out.push(region.clone());
                        continue;
                    }
                    let split = rng.gen_range(min..max);
                    let low = column.select_range(&region.selection, min, split);
                    let high = column.select_range(&region.selection, nudge_up(split), max);
                    out.push(Region::new(
                        region
                            .query
                            .clone()
                            .and(Predicate::range(attribute, min, split)),
                        low,
                    ));
                    out.push(Region::new(
                        region
                            .query
                            .clone()
                            .and(Predicate::range(attribute, nudge_up(split), max)),
                        high,
                    ));
                }
                DataType::Str | DataType::Bool => {
                    let mut categories: Vec<String> = column
                        .categories_by_frequency(&region.selection)
                        .into_iter()
                        .map(|(v, _)| v)
                        .collect();
                    if categories.len() < 2 {
                        out.push(region.clone());
                        continue;
                    }
                    categories.shuffle(rng);
                    let cut_point = rng.gen_range(1..categories.len());
                    let (left, right) = categories.split_at(cut_point);
                    for group in [left, right] {
                        let selection = column.select_in(&region.selection, group);
                        out.push(Region::new(
                            region
                                .query
                                .clone()
                                .and(Predicate::values(attribute, group.iter().cloned())),
                            selection,
                        ));
                    }
                }
            }
        }
        Ok(out)
    }
}

fn nudge_up(x: f64) -> f64 {
    if x.is_finite() {
        f64::from_bits(if x >= 0.0 {
            x.to_bits() + 1
        } else {
            x.to_bits() - 1
        })
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_columnar::{Field, Schema, TableBuilder, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Float),
            Field::new("group", DataType::Str),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema);
        for i in 0..300 {
            b.push_row(&[
                Value::Float((i % 100) as f64),
                Value::Str(["a", "b", "c"][i % 3].into()),
            ])
            .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn generates_requested_number_of_valid_maps() {
        let t = table();
        let baseline = RandomMapBaseline::new(RandomMapConfig {
            num_maps: 8,
            max_attributes: 2,
            seed: 3,
        });
        let maps = baseline
            .generate(&t, &t.full_selection(), &ConjunctiveQuery::all("t"))
            .unwrap();
        assert_eq!(maps.len(), 8);
        for map in &maps {
            assert!(map.num_regions() >= 1);
            assert!(map.regions_are_disjoint());
            assert!(map.source_attributes.len() <= 2);
            // Random maps never lose tuples other than through empty regions.
            assert!(map.covered_count() <= 300);
        }
    }

    #[test]
    fn is_deterministic_per_seed() {
        let t = table();
        let make = |seed| {
            RandomMapBaseline::new(RandomMapConfig {
                num_maps: 5,
                max_attributes: 2,
                seed,
            })
            .generate(&t, &t.full_selection(), &ConjunctiveQuery::all("t"))
            .unwrap()
        };
        let a = make(11);
        let b = make(11);
        assert_eq!(a.len(), b.len());
        for (ma, mb) in a.iter().zip(b.iter()) {
            assert_eq!(ma.source_attributes, mb.source_attributes);
            assert_eq!(ma.region_counts(), mb.region_counts());
        }
    }

    #[test]
    fn random_maps_are_usually_less_balanced_than_median_cuts() {
        // The entropy of a median cut is maximal (1 bit for a two-way split);
        // random splits on a uniform attribute average well below that.
        let t = table();
        let baseline = RandomMapBaseline::new(RandomMapConfig {
            num_maps: 20,
            max_attributes: 1,
            seed: 5,
        });
        let maps = baseline
            .generate(&t, &t.full_selection(), &ConjunctiveQuery::all("t"))
            .unwrap();
        let mean_entropy: f64 = maps.iter().map(|m| m.entropy()).sum::<f64>() / maps.len() as f64;
        assert!(mean_entropy < 0.99, "mean random entropy {mean_entropy}");
    }

    #[test]
    fn all_identifier_table_is_an_error() {
        let schema = Schema::new(vec![Field::new("id", DataType::Int)]).unwrap();
        let mut b = TableBuilder::new("t", schema);
        for i in 0..100 {
            b.push_row(&[Value::Int(i)]).unwrap();
        }
        let t = b.build().unwrap();
        let baseline = RandomMapBaseline::default();
        assert!(matches!(
            baseline.generate(&t, &t.full_selection(), &ConjunctiveQuery::all("t")),
            Err(AtlasError::NoCuttableAttributes)
        ));
    }
}
