//! Regions: one query of a data map, plus its extent.

use atlas_columnar::Bitmap;
use atlas_query::ConjunctiveQuery;
use std::fmt;

/// One region of a data map: a conjunctive query describing it, and the rows
/// of the table it covers (within the current working set).
#[derive(Debug, Clone)]
pub struct Region {
    /// The query describing this region. It always includes the predicates of
    /// the user query it was derived from, so it can be submitted back to the
    /// engine verbatim for drill-down.
    pub query: ConjunctiveQuery,
    /// The rows of the table covered by this region (already intersected with
    /// the working set).
    pub selection: Bitmap,
}

impl Region {
    /// Create a region from a query and its selection.
    pub fn new(query: ConjunctiveQuery, selection: Bitmap) -> Self {
        Region { query, selection }
    }

    /// Number of tuples in the region.
    pub fn count(&self) -> usize {
        self.selection.count()
    }

    /// The cover of the region relative to a reference population size
    /// (Section 3: number of items described divided by the total number of
    /// tuples). Returns 0 for an empty reference population.
    pub fn cover(&self, reference_size: usize) -> f64 {
        if reference_size == 0 {
            0.0
        } else {
            self.count() as f64 / reference_size as f64
        }
    }

    /// Number of predicates of the region's query (readability constraint:
    /// the paper targets at most ~3).
    pub fn num_predicates(&self) -> usize {
        self.query.num_predicates()
    }

    /// True if the region covers no tuples.
    pub fn is_empty(&self) -> bool {
        self.selection.is_all_clear()
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} tuples)", self.query, self.count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_query::Predicate;

    #[test]
    fn count_cover_and_arity() {
        let query = ConjunctiveQuery::all("t")
            .and(Predicate::range("age", 0.0, 40.0))
            .and(Predicate::values("sex", ["F"]));
        let selection = Bitmap::from_indices(10, [1, 3, 5]);
        let region = Region::new(query, selection);
        assert_eq!(region.count(), 3);
        assert!((region.cover(10) - 0.3).abs() < 1e-12);
        assert!((region.cover(6) - 0.5).abs() < 1e-12);
        assert_eq!(region.cover(0), 0.0);
        assert_eq!(region.num_predicates(), 2);
        assert!(!region.is_empty());
        assert!(region.to_string().contains("3 tuples"));
    }

    #[test]
    fn empty_region() {
        let region = Region::new(ConjunctiveQuery::all("t"), Bitmap::new_empty(5));
        assert!(region.is_empty());
        assert_eq!(region.count(), 0);
    }
}
