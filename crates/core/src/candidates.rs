//! Candidate map generation (step 1 of the framework).
//!
//! Every usable attribute of the working set is broken down with the `CUT`
//! primitive into a simple one-attribute map. Attributes that cannot be cut —
//! constants, identifiers, very-high-cardinality categoricals — are skipped,
//! as Section 5.2 of the paper recommends.

use crate::cut::CutConfig;
use crate::map::DataMap;
use crate::pipeline::{PaperCut, PipelineContext};
use crate::profile::TableProfile;
use crate::Result;
use atlas_columnar::{Bitmap, Table};
use atlas_query::ConjunctiveQuery;

/// The set of candidate maps generated from a working set.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    /// One single-attribute map per cuttable attribute.
    pub maps: Vec<DataMap>,
    /// Attributes that were considered but could not be cut, with no map
    /// produced (constant, identifier-like, too many categories, all NULL).
    pub skipped: Vec<String>,
}

impl CandidateSet {
    /// The attribute behind each candidate map, in order.
    pub fn attributes(&self) -> Vec<&str> {
        self.maps
            .iter()
            .map(|m| m.source_attributes[0].as_str())
            .collect()
    }

    /// Number of candidate maps.
    pub fn len(&self) -> usize {
        self.maps.len()
    }

    /// True if no candidate map could be generated.
    pub fn is_empty(&self) -> bool {
        self.maps.is_empty()
    }
}

/// Generate the candidate maps for a working set through a pipeline context:
/// one [`crate::pipeline::CutStrategy::cut`] call per considered attribute.
///
/// `attributes` restricts the candidate generation to a subset of columns; if
/// `None`, every column of the table is considered.
///
/// Attributes are cut **in parallel** across `ctx.pool` (one task per
/// attribute) and the results are assembled in schema order, so the candidate
/// set — including the order of `maps` and `skipped`, and which error is
/// reported on failure — is identical at every parallelism level for pure
/// cut strategies.
pub fn generate_candidates_in_context(
    ctx: &PipelineContext<'_>,
    working: &Bitmap,
    parent_query: &ConjunctiveQuery,
    attributes: Option<&[String]>,
) -> Result<CandidateSet> {
    let names: Vec<String> = match attributes {
        Some(list) => list.to_vec(),
        None => ctx
            .table
            .schema()
            .names()
            .into_iter()
            .map(|s| s.to_string())
            .collect(),
    };
    // Pool workers inherit the dispatching thread's span context so kernel
    // events raised inside `cut` attach to the surrounding phase span.
    let parent = atlas_obs::current();
    let cuts = ctx.pool.par_map(&names, |name| {
        let _trace = atlas_obs::with_context(parent);
        ctx.cut_strategy.cut(ctx, working, parent_query, name)
    });
    let mut maps = Vec::with_capacity(names.len());
    let mut skipped = Vec::new();
    for (name, cut) in names.into_iter().zip(cuts) {
        match cut? {
            Some(map) => maps.push(map),
            None => skipped.push(name),
        }
    }
    Ok(CandidateSet { maps, skipped })
}

/// Standalone candidate generation with the paper's `CUT` strategy: profiles
/// the table on the spot and delegates to [`generate_candidates_in_context`].
/// Prefer a prepared [`crate::engine::Atlas`] (and its
/// [`crate::engine::Atlas::candidates`]) when generating candidates more than
/// once for the same table.
pub fn generate_candidates(
    table: &Table,
    working: &Bitmap,
    parent_query: &ConjunctiveQuery,
    attributes: Option<&[String]>,
    config: &CutConfig,
) -> Result<CandidateSet> {
    // An empty profile: one-shot callers compute working-set statistics on
    // the fly (as before the redesign) instead of profiling the whole table.
    let profile = TableProfile::empty(table.num_rows());
    let strategy = PaperCut;
    let ctx = PipelineContext {
        table,
        profile: &profile,
        cut_config: config,
        cut_strategy: &strategy,
        drop_empty_regions: true,
        pool: minirayon::ThreadPool::sequential(),
    };
    generate_candidates_in_context(&ctx, working, parent_query, attributes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_columnar::{DataType, Field, Schema, TableBuilder, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("age", DataType::Int),
            Field::new("sex", DataType::Str),
            Field::new("constant", DataType::Int),
            Field::new("user_id", DataType::Int),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema);
        for i in 0..100i64 {
            b.push_row(&[
                Value::Int(20 + i % 50),
                Value::Str(if i % 3 == 0 { "F" } else { "M" }.into()),
                Value::Int(7),
                Value::Int(i),
            ])
            .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn generates_one_map_per_cuttable_attribute() {
        let t = table();
        let working = t.full_selection();
        let q = ConjunctiveQuery::all("t");
        let candidates =
            generate_candidates(&t, &working, &q, None, &CutConfig::default()).unwrap();
        assert_eq!(candidates.len(), 2);
        assert_eq!(candidates.attributes(), vec!["age", "sex"]);
        assert_eq!(
            candidates.skipped,
            vec!["constant".to_string(), "user_id".to_string()]
        );
        assert!(!candidates.is_empty());
        for map in &candidates.maps {
            assert!(map.num_regions() >= 2);
            assert!(map.regions_are_disjoint());
        }
    }

    #[test]
    fn attribute_restriction_is_honoured() {
        let t = table();
        let working = t.full_selection();
        let q = ConjunctiveQuery::all("t");
        let only_age = vec!["age".to_string()];
        let candidates =
            generate_candidates(&t, &working, &q, Some(&only_age), &CutConfig::default()).unwrap();
        assert_eq!(candidates.len(), 1);
        assert_eq!(candidates.attributes(), vec!["age"]);
    }

    #[test]
    fn unknown_attribute_in_restriction_is_an_error() {
        let t = table();
        let working = t.full_selection();
        let q = ConjunctiveQuery::all("t");
        let bad = vec!["nope".to_string()];
        assert!(generate_candidates(&t, &working, &q, Some(&bad), &CutConfig::default()).is_err());
    }

    #[test]
    fn empty_working_set_produces_no_candidates() {
        let t = table();
        let working = t.empty_selection();
        let q = ConjunctiveQuery::all("t");
        let candidates =
            generate_candidates(&t, &working, &q, None, &CutConfig::default()).unwrap();
        assert!(candidates.is_empty());
        assert_eq!(candidates.skipped.len(), 4);
    }
}
