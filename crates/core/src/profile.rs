//! Build-time per-column statistics shared across explorations — built **per
//! segment** and folded, so profiles are incremental.
//!
//! Every call to [`crate::engine::Atlas::explore`] needs per-column summary
//! statistics (distinct counts, min/max, null masks) to decide which
//! attributes are cuttable and where to cut them. A [`TableProfile`] computes
//! them **once** when the engine is built and shares them (behind an `Arc`)
//! across every subsequent exploration — the "anticipative computation"
//! spirit of Section 5.1 applied to the engine's own metadata.
//!
//! With segmented storage the profile is also **mergeable**: every column is
//! profiled as one [`ColumnSummary`] per segment (one pool task per
//! (segment, column) pair, so building scales across segments and columns
//! alike), folded left-to-right in row order. The folded summaries stay in the profile, so appending a segment
//! ([`TableProfile::merge_segment`], driven by
//! [`crate::engine::Atlas::append`]) only profiles the **new** rows and
//! merges — no whole-table rebuild — and produces bit-for-bit the profile a
//! from-scratch rebuild of the extended table would (the fold is
//! left-associative either way).
//!
//! The profile also keeps a one-pass Greenwald–Khanna quantile sketch per
//! numeric column (built per segment and merged with [`GkSketch::merge`]), so
//! sketch-based cut strategies never re-scan columns for whole-table
//! explorations.
//!
//! Statistics served from the profile are counted as `hits`; working sets that
//! are proper subsets of the table (drill-down queries, anytime samples,
//! composition re-cuts) still require fresh statistics and are counted as
//! `misses`. The counters make cache behaviour observable in tests and
//! benchmarks ([`TableProfile::counters`]).

use crate::error::Result;
use atlas_columnar::{
    merge_category_counts, rank_categories_by_frequency, Bitmap, Column, ColumnStats,
    ColumnSummary, DataType, Segment, Table,
};
use atlas_stats::GkSketch;
use minirayon::ThreadPool;
use std::borrow::Cow;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Pre-computed statistics of one column over the full table.
#[derive(Debug, Clone)]
pub struct ColumnProfile {
    /// The column name.
    pub name: String,
    /// Full-table summary statistics (distinct count, min/max, mean/variance).
    pub stats: ColumnStats,
    /// A quantile sketch of the column values (numeric columns only, and only
    /// when the profile was built with a sketch epsilon).
    pub sketch: Option<GkSketch>,
    /// The rows holding a non-NULL value (the column's null mask, inverted).
    /// The paper's own stages derive null information from [`ColumnStats`];
    /// the materialised mask is part of the profile surface custom pipeline
    /// stages reach through [`crate::pipeline::PipelineContext::profile`]
    /// (e.g. to intersect a working set with the non-NULL rows directly).
    pub non_null: Bitmap,
    /// Full-table per-category counts of a categorical column, one
    /// `(value, count)` pair per distinct value in global first-appearance
    /// order *including zero counts* (the mergeable
    /// [`atlas_columnar::ColumnView::category_counts`] form; empty for
    /// numeric columns). Cached so whole-table categorical cuts rank
    /// frequencies without re-scanning the column on every exploration —
    /// served through [`TableProfile::categories_for`].
    pub category_counts: Vec<(String, usize)>,
    /// The mergeable form of `stats` (the fold of the per-segment summaries),
    /// kept so [`TableProfile::merge_segment`] can extend the profile without
    /// rescanning existing segments. This retains the column's exact
    /// distinct-value set for the engine's lifetime — `O(distinct)` memory,
    /// which is what buys exact (and append-invariant) distinct counts
    /// without rescans; identifier-like columns pay the most.
    summary: ColumnSummary,
}

/// A snapshot of the profile's cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfileStats {
    /// Statistics requests served from the pre-computed profile.
    pub hits: usize,
    /// Statistics requests that had to be computed on the fly (subset working
    /// sets and unknown columns).
    pub misses: usize,
}

/// Per-column statistics of a table, computed once and shared by every
/// exploration of a prepared engine.
#[derive(Debug)]
pub struct TableProfile {
    num_rows: usize,
    columns: Vec<ColumnProfile>,
    sketch_epsilon: Option<f64>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

/// The per-segment contribution of one column: its mergeable summary, its
/// segment-local non-NULL mask, and — for numeric columns of sketching
/// profiles — its quantile sketch.
struct SegmentColumnProfile {
    summary: ColumnSummary,
    non_null: Bitmap,
    sketch: Option<GkSketch>,
    category_counts: Vec<(String, usize)>,
}

/// Profile one column of one segment.
fn profile_segment_column(
    column: &Column,
    offset: usize,
    full: &Bitmap,
    sketch_epsilon: Option<f64>,
) -> SegmentColumnProfile {
    let summary = ColumnSummary::compute(column, full, offset);
    let sketch = match (column.data_type(), sketch_epsilon) {
        (DataType::Int | DataType::Float, Some(epsilon)) => {
            let mut sketch = GkSketch::new(epsilon);
            let local = Bitmap::new_full(column.len());
            sketch.extend(&column.numeric_values_where(&local));
            Some(sketch)
        }
        _ => None,
    };
    SegmentColumnProfile {
        summary,
        non_null: column.non_null_mask(),
        sketch,
        category_counts: column.category_counts(full, offset),
    }
}

/// The sketch a freshly-built profile starts a numeric column with (merging
/// segment sketches into it in row order).
fn empty_sketch(dtype: DataType, sketch_epsilon: Option<f64>) -> Option<GkSketch> {
    match (dtype, sketch_epsilon) {
        (DataType::Int | DataType::Float, Some(epsilon)) => Some(GkSketch::new(epsilon)),
        _ => None,
    }
}

/// Extend a numeric-column non-NULL mask and sketch with one more segment.
fn merge_column_segment(
    profile: &ColumnProfile,
    column: &Column,
    sketch_epsilon: Option<f64>,
) -> ColumnProfile {
    let local_full = Bitmap::new_full(column.len());
    let part = ColumnSummary::compute(column, &local_full, 0);
    let mut summary = profile.summary.clone();
    summary.merge_from(&part);
    let mut category_counts = profile.category_counts.clone();
    merge_category_counts(
        &mut category_counts,
        &column.category_counts(&local_full, 0),
    );
    let sketch = profile.sketch.as_ref().map(|existing| {
        let mut merged = existing.clone();
        if let Some(epsilon) = sketch_epsilon {
            let mut part_sketch = GkSketch::new(epsilon);
            part_sketch.extend(&column.numeric_values_where(&local_full));
            merged.merge(&part_sketch);
        }
        merged
    });
    ColumnProfile {
        name: profile.name.clone(),
        stats: summary.to_stats(),
        sketch,
        non_null: profile.non_null.concat(&column.non_null_mask()),
        category_counts,
        summary,
    }
}

impl TableProfile {
    /// The sketch accuracy used when the cut configuration does not request a
    /// specific epsilon.
    pub const DEFAULT_SKETCH_EPSILON: f64 = 0.005;

    /// Profile every column of the table: one mergeable summary per segment
    /// per column (plus — when `sketch_epsilon` is set — a per-segment
    /// quantile sketch for numeric columns), folded in row order. Pass `None`
    /// when no stage will query sketches (the engine builder does so
    /// automatically unless the cut strategy is sketch-based), saving a full
    /// value materialisation per numeric column.
    pub fn build(table: &Table, sketch_epsilon: Option<f64>) -> Self {
        TableProfile::build_with_pool(table, sketch_epsilon, ThreadPool::sequential())
    }

    /// [`TableProfile::build`] with one task per **(segment, column)** pair
    /// on the given pool, so `Atlas::builder` scales with the core count on
    /// both axes — across segments of a long table *and* across columns of a
    /// wide (or single-segment) one. The per-pair profiles are independent
    /// and folded in row order: the result is identical at every thread
    /// count — and identical to incrementally appending the same segments
    /// one by one.
    pub fn build_with_pool(table: &Table, sketch_epsilon: Option<f64>, pool: &ThreadPool) -> Self {
        let full = table.full_selection();
        let fields = table.schema().fields();
        let num_columns = fields.len();
        let tasks: Vec<(usize, usize)> = (0..table.num_segments())
            .flat_map(|seg| (0..num_columns).map(move |col| (seg, col)))
            .collect();
        let mut build_span = atlas_obs::span("profile.build");
        build_span.attr("dataset", table.name());
        build_span.attr("tasks", tasks.len());
        let parent = build_span.context();
        let partials = pool.par_map(&tasks, |&(seg, col)| {
            let mut task_span = atlas_obs::span_in(parent, "profile.column");
            task_span.attr("segment", seg);
            // lint: slice-index-ok (col < num_columns == fields.len() by task construction)
            task_span.attr("column", &fields[col].name);
            profile_segment_column(
                table.segments()[seg].column(col),
                table.segment_offset(seg),
                &full,
                sketch_epsilon,
            )
        });
        let columns = fields
            .iter()
            .enumerate()
            .map(|(col, field)| {
                let mut summary = ColumnSummary::empty(field.dtype);
                let mut sketch = empty_sketch(field.dtype, sketch_epsilon);
                // Null masks are computed inside the parallel tasks; the fold
                // ORs each one into a preallocated table-wide mask at its
                // segment offset (one linear pass, whole-word ORs on
                // word-aligned boundaries).
                let mut non_null = Bitmap::new_empty(table.num_rows());
                let mut category_counts: Vec<(String, usize)> = Vec::new();
                for seg in 0..table.num_segments() {
                    let partial = &partials[seg * num_columns + col];
                    summary.merge_from(&partial.summary);
                    non_null.or_shifted(&partial.non_null, table.segment_offset(seg));
                    merge_category_counts(&mut category_counts, &partial.category_counts);
                    if let (Some(acc), Some(part)) = (&mut sketch, &partial.sketch) {
                        acc.merge(part);
                    }
                }
                ColumnProfile {
                    name: field.name.clone(),
                    stats: summary.to_stats(),
                    sketch,
                    non_null,
                    category_counts,
                    summary,
                }
            })
            .collect();
        TableProfile {
            num_rows: table.num_rows(),
            columns,
            sketch_epsilon,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// A profile with no pre-computed columns: every statistics request is
    /// answered by scanning the working set on the fly (and counted as a
    /// miss). Standalone entry points that run once per working set — the
    /// baselines, [`crate::candidates::generate_candidates`] — use this
    /// instead of paying for a full-table profile they would never amortise;
    /// prepared engines always carry a full [`TableProfile::build`] profile.
    pub fn empty(num_rows: usize) -> Self {
        TableProfile {
            num_rows,
            columns: Vec::new(),
            sketch_epsilon: None,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// The profile of the table extended by `segment`: only the **new** rows
    /// are profiled (summaries, sketch, null mask of the segment), then
    /// merged column by column into the existing fold — the incremental
    /// re-preparation behind [`crate::engine::Atlas::append`]. Because the
    /// fold is left-associative in row order, the result is bit-for-bit the
    /// profile [`TableProfile::build`] would produce on the extended table.
    ///
    /// The segment must match the profiled table's schema (the engine
    /// validates this when it appends to the [`Table`] first). Empty profiles
    /// stay empty — they compute everything on the fly anyway.
    ///
    /// Hit/miss counters start at zero: the merged profile describes a new
    /// engine state.
    pub fn merge_segment(&self, segment: &Segment) -> TableProfile {
        let columns = self
            .columns
            .iter()
            .enumerate()
            .map(|(col, profile)| {
                merge_column_segment(profile, segment.column(col), self.sketch_epsilon)
            })
            .collect();
        TableProfile {
            num_rows: self.num_rows + segment.num_rows(),
            columns,
            sketch_epsilon: self.sketch_epsilon,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Number of rows of the profiled table.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// The profile of a column, if the column exists.
    pub fn column(&self, name: &str) -> Option<&ColumnProfile> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// All column profiles, in schema order.
    pub fn columns(&self) -> &[ColumnProfile] {
        &self.columns
    }

    /// True when the working set covers the whole table, so full-table
    /// statistics apply as-is.
    pub fn covers(&self, working: &Bitmap) -> bool {
        working.count() == self.num_rows
    }

    /// Statistics of `attribute` over `working`: served from the profile when
    /// the working set is the whole table, computed on the fly otherwise.
    pub fn stats_for<'a>(
        &'a self,
        table: &Table,
        attribute: &str,
        working: &Bitmap,
    ) -> Result<Cow<'a, ColumnStats>> {
        if self.covers(working) {
            if let Some(profile) = self.column(attribute) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                observe_cache("hit", attribute);
                return Ok(Cow::Borrowed(&profile.stats));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        observe_cache("miss", attribute);
        Ok(Cow::Owned(table.column_stats(attribute, working)?))
    }

    /// The pre-built quantile sketch of `attribute`, usable only when the
    /// working set covers the whole table (a sketch of the full column says
    /// nothing about an arbitrary subset).
    pub fn sketch_for(&self, attribute: &str, working: &Bitmap) -> Option<&GkSketch> {
        if !self.covers(working) {
            return None;
        }
        self.column(attribute)?.sketch.as_ref()
    }

    /// The distinct categorical values of `attribute` over `working` by
    /// decreasing frequency (ties in global first-appearance order) — the
    /// [`atlas_columnar::ColumnView::categories_by_frequency`] contract.
    /// Whole-table working sets are served by ranking the profile's cached
    /// raw counts (a hit: `O(distinct)` work instead of a column scan);
    /// subsets and unknown columns re-scan on the fly (a miss). Both paths
    /// run the same merge-and-rank code over the same per-segment counts, so
    /// the ranking is bit-for-bit identical either way.
    pub fn categories_for(
        &self,
        table: &Table,
        attribute: &str,
        working: &Bitmap,
    ) -> Result<Vec<(String, usize)>> {
        if self.covers(working) {
            if let Some(profile) = self.column(attribute) {
                if matches!(profile.stats.dtype, DataType::Str | DataType::Bool) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    observe_cache("hit", attribute);
                    return Ok(rank_categories_by_frequency(
                        profile.category_counts.clone(),
                    ));
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        observe_cache("miss", attribute);
        Ok(table.column(attribute)?.categories_by_frequency(working))
    }

    /// A snapshot of the hit/miss counters.
    pub fn counters(&self) -> ProfileStats {
        ProfileStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// Record one profile-cache lookup: bump the process-wide counter behind the
/// `/metrics` exposition (the per-profile atomics above stay the per-dataset
/// source of truth) and attach a trace event when tracing is enabled.
fn observe_cache(outcome: &'static str, attribute: &str) {
    static HITS: OnceLock<&'static atlas_obs::Counter> = OnceLock::new();
    static MISSES: OnceLock<&'static atlas_obs::Counter> = OnceLock::new();
    let counter = match outcome {
        "hit" => HITS.get_or_init(|| atlas_obs::counter("profile.cache.hit")),
        _ => MISSES.get_or_init(|| atlas_obs::counter("profile.cache.miss")),
    };
    counter.add(1);
    if atlas_obs::enabled() {
        atlas_obs::event(
            "profile.cache",
            &[("outcome", outcome), ("attribute", attribute)],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_columnar::{DataType, Field, Schema, TableBuilder, Value};

    fn table() -> Table {
        table_with_segment_rows(usize::MAX)
    }

    fn table_with_segment_rows(segment_rows: usize) -> Table {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Float),
            Field::nullable("n", DataType::Int),
            Field::new("c", DataType::Str),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema).with_segment_rows(segment_rows);
        for i in 0..100 {
            let n = if i % 4 == 0 {
                Value::Null
            } else {
                Value::Int(i % 10)
            };
            b.push_row(&[
                Value::Float(i as f64),
                n,
                Value::Str(["a", "b"][(i % 2) as usize].into()),
            ])
            .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn profile_matches_on_demand_statistics() {
        let t = table();
        let profile = TableProfile::build(&t, Some(TableProfile::DEFAULT_SKETCH_EPSILON));
        assert_eq!(profile.num_rows(), 100);
        assert_eq!(profile.columns().len(), 3);
        for name in ["x", "n", "c"] {
            let cached = &profile.column(name).unwrap().stats;
            let fresh = t.column_stats(name, &t.full_selection()).unwrap();
            assert_eq!(cached, &fresh, "column {name}");
        }
        // Null mask: column n has 25 NULLs.
        assert_eq!(profile.column("n").unwrap().non_null.count(), 75);
        assert_eq!(profile.column("x").unwrap().non_null.count(), 100);
        // Sketches exist for numeric columns only.
        assert!(profile.column("x").unwrap().sketch.is_some());
        assert!(profile.column("c").unwrap().sketch.is_none());
        // The sketch median is close to the true median (rank error εn plus
        // the sketch's own value quantization).
        let sketch = profile.column("x").unwrap().sketch.as_ref().unwrap();
        assert!((sketch.median().unwrap() - 49.5).abs() <= 2.5);
    }

    #[test]
    fn segmented_profiles_match_single_segment_ones_on_everything_exact() {
        let reference = TableProfile::build(&table(), None);
        for segment_rows in [7usize, 32, 64] {
            let t = table_with_segment_rows(segment_rows);
            assert!(t.num_segments() > 1);
            let profile = TableProfile::build(&t, None);
            for (a, b) in profile.columns().iter().zip(reference.columns()) {
                assert_eq!(a.name, b.name);
                // Everything explore consumes is segmentation-invariant.
                assert_eq!(a.stats.non_null_count, b.stats.non_null_count);
                assert_eq!(a.stats.null_count, b.stats.null_count);
                assert_eq!(a.stats.distinct_count, b.stats.distinct_count);
                assert_eq!(a.stats.min, b.stats.min);
                assert_eq!(a.stats.max, b.stats.max);
                assert_eq!(a.non_null, b.non_null);
                assert_eq!(a.category_counts, b.category_counts);
                // Mean/variance merge numerically (Chan's formula), not
                // bitwise — but stay within floating-point slack.
                match (a.stats.mean, b.stats.mean) {
                    (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9),
                    (x, y) => assert_eq!(x, y),
                }
            }
        }
    }

    #[test]
    fn merge_segment_equals_a_full_rebuild() {
        // Build a profile over the first segments, append the last one, and
        // compare against profiling the whole table from scratch.
        let t = table_with_segment_rows(32); // 32+32+32+4 rows
        assert_eq!(t.num_segments(), 4);
        let prefix =
            Table::from_segments("t", t.schema().clone(), t.segments()[..3].to_vec()).unwrap();
        let appended = TableProfile::build(&prefix, Some(0.01)).merge_segment(&t.segments()[3]);
        let rebuilt = TableProfile::build(&t, Some(0.01));
        assert_eq!(appended.num_rows(), rebuilt.num_rows());
        for (a, b) in appended.columns().iter().zip(rebuilt.columns()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.stats, b.stats, "appended profile must equal rebuild");
            assert_eq!(a.non_null, b.non_null);
            assert_eq!(a.category_counts, b.category_counts);
            assert_eq!(a.sketch.is_some(), b.sketch.is_some());
            if let (Some(sa), Some(sb)) = (&a.sketch, &b.sketch) {
                assert_eq!(sa.count(), sb.count());
                assert_eq!(sa.median(), sb.median());
            }
        }
        // Counters restart on the merged profile.
        assert_eq!(appended.counters(), ProfileStats::default());
        // Empty profiles stay empty but track the new row count.
        let empty = TableProfile::empty(96).merge_segment(&t.segments()[3]);
        assert_eq!(empty.num_rows(), 100);
        assert!(empty.columns().is_empty());
    }

    #[test]
    fn full_table_requests_hit_and_subsets_miss() {
        let t = table();
        let profile = TableProfile::build(&t, Some(TableProfile::DEFAULT_SKETCH_EPSILON));
        assert_eq!(profile.counters(), ProfileStats::default());

        let full = t.full_selection();
        let cached = profile.stats_for(&t, "x", &full).unwrap();
        assert_eq!(profile.counters().hits, 1);
        assert_eq!(profile.counters().misses, 0);
        assert_eq!(cached.non_null_count, 100);

        let subset = Bitmap::from_indices(100, 0..50);
        let fresh = profile.stats_for(&t, "x", &subset).unwrap();
        assert_eq!(profile.counters().hits, 1);
        assert_eq!(profile.counters().misses, 1);
        assert_eq!(fresh.non_null_count, 50);

        // Sketches are only served for full-table working sets.
        assert!(profile.sketch_for("x", &full).is_some());
        assert!(profile.sketch_for("x", &subset).is_none());
        assert!(profile.sketch_for("c", &full).is_none());
    }

    #[test]
    fn empty_profiles_always_compute_on_the_fly() {
        let t = table();
        let profile = TableProfile::empty(t.num_rows());
        let full = t.full_selection();
        let stats = profile.stats_for(&t, "x", &full).unwrap();
        assert_eq!(stats.non_null_count, 100);
        assert_eq!(profile.counters(), ProfileStats { hits: 0, misses: 1 });
        assert!(profile.sketch_for("x", &full).is_none());
    }

    #[test]
    fn pooled_profile_build_matches_the_sequential_one() {
        // Multi-segment table so the pool actually has independent tasks.
        let t = table_with_segment_rows(16);
        let sequential = TableProfile::build(&t, Some(TableProfile::DEFAULT_SKETCH_EPSILON));
        let pool = ThreadPool::new(4);
        let pooled =
            TableProfile::build_with_pool(&t, Some(TableProfile::DEFAULT_SKETCH_EPSILON), &pool);
        assert_eq!(pooled.num_rows(), sequential.num_rows());
        assert_eq!(pooled.columns().len(), sequential.columns().len());
        for (a, b) in pooled.columns().iter().zip(sequential.columns()) {
            assert_eq!(a.name, b.name, "schema order is preserved");
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.non_null, b.non_null);
            assert_eq!(a.category_counts, b.category_counts);
            assert_eq!(a.sketch.is_some(), b.sketch.is_some());
            if let (Some(sa), Some(sb)) = (&a.sketch, &b.sketch) {
                assert_eq!(sa.median(), sb.median());
            }
        }
    }

    #[test]
    fn cached_category_rankings_match_on_demand_ones() {
        let t = table_with_segment_rows(32);
        let profile = TableProfile::build(&t, None);
        let full = t.full_selection();
        // Raw cached counts include zeros in first-appearance order and match
        // the view's mergeable precursor exactly.
        assert_eq!(
            profile.column("c").unwrap().category_counts,
            t.column("c").unwrap().category_counts(&full)
        );
        assert!(profile.column("x").unwrap().category_counts.is_empty());
        // The ranked form is bit-identical to the on-demand scan, served as a
        // hit for whole-table working sets.
        let cached = profile.categories_for(&t, "c", &full).unwrap();
        assert_eq!(
            cached,
            t.column("c").unwrap().categories_by_frequency(&full)
        );
        assert_eq!(profile.counters(), ProfileStats { hits: 1, misses: 0 });
        // Numeric columns and subset working sets fall back to the scan.
        assert!(profile.categories_for(&t, "x", &full).unwrap().is_empty());
        let subset = Bitmap::from_indices(100, 0..50);
        let sub = profile.categories_for(&t, "c", &subset).unwrap();
        assert_eq!(sub, t.column("c").unwrap().categories_by_frequency(&subset));
        assert_eq!(profile.counters(), ProfileStats { hits: 1, misses: 2 });
        // Empty profiles always scan.
        let empty = TableProfile::empty(t.num_rows());
        let scanned = empty.categories_for(&t, "c", &full).unwrap();
        assert_eq!(scanned, cached);
        assert_eq!(empty.counters(), ProfileStats { hits: 0, misses: 1 });
    }

    #[test]
    fn unknown_columns_are_an_error() {
        let t = table();
        let profile = TableProfile::build(&t, Some(TableProfile::DEFAULT_SKETCH_EPSILON));
        assert!(profile.stats_for(&t, "zzz", &t.full_selection()).is_err());
    }
}
