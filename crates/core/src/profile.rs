//! Build-time per-column statistics shared across explorations.
//!
//! Every call to [`crate::engine::Atlas::explore`] needs per-column summary
//! statistics (distinct counts, min/max, null masks) to decide which
//! attributes are cuttable and where to cut them. Before the prepared-engine
//! redesign these were recomputed from scratch on every query; a
//! [`TableProfile`] computes them **once** when the engine is built and shares
//! them (behind an `Arc`) across every subsequent exploration — the
//! "anticipative computation" spirit of Section 5.1 applied to the engine's
//! own metadata.
//!
//! The profile also keeps a one-pass Greenwald–Khanna quantile sketch per
//! numeric column, so sketch-based cut strategies never have to re-scan the
//! column for whole-table explorations.
//!
//! Statistics served from the profile are counted as `hits`; working sets that
//! are proper subsets of the table (drill-down queries, anytime samples,
//! composition re-cuts) still require fresh statistics and are counted as
//! `misses`. The counters make cache behaviour observable in tests and
//! benchmarks ([`TableProfile::counters`]).

use crate::error::Result;
use atlas_columnar::{Bitmap, ColumnStats, DataType, Table};
use atlas_stats::GkSketch;
use minirayon::ThreadPool;
use std::borrow::Cow;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Pre-computed statistics of one column over the full table.
#[derive(Debug, Clone)]
pub struct ColumnProfile {
    /// The column name.
    pub name: String,
    /// Full-table summary statistics (distinct count, min/max, mean/variance).
    pub stats: ColumnStats,
    /// A quantile sketch of the column values (numeric columns only, and only
    /// when the profile was built with a sketch epsilon).
    pub sketch: Option<GkSketch>,
    /// The rows holding a non-NULL value (the column's null mask, inverted).
    /// The paper's own stages derive null information from [`ColumnStats`];
    /// the materialised mask is part of the profile surface custom pipeline
    /// stages reach through [`crate::pipeline::PipelineContext::profile`]
    /// (e.g. to intersect a working set with the non-NULL rows directly).
    pub non_null: Bitmap,
}

/// A snapshot of the profile's cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfileStats {
    /// Statistics requests served from the pre-computed profile.
    pub hits: usize,
    /// Statistics requests that had to be computed on the fly (subset working
    /// sets and unknown columns).
    pub misses: usize,
}

/// Per-column statistics of a table, computed once and shared by every
/// exploration of a prepared engine.
#[derive(Debug)]
pub struct TableProfile {
    num_rows: usize,
    columns: Vec<ColumnProfile>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl TableProfile {
    /// The sketch accuracy used when the cut configuration does not request a
    /// specific epsilon.
    pub const DEFAULT_SKETCH_EPSILON: f64 = 0.005;

    /// Profile every column of the table: one pass per column for the summary
    /// statistics and the null mask, plus — when `sketch_epsilon` is set — a
    /// quantile sketch for numeric columns built with that rank-error bound.
    /// Pass `None` when no stage will query sketches (the engine builder does
    /// so automatically unless the cut strategy is sketch-based), saving a
    /// full value materialisation per numeric column.
    pub fn build(table: &Table, sketch_epsilon: Option<f64>) -> Self {
        TableProfile::build_with_pool(table, sketch_epsilon, ThreadPool::sequential())
    }

    /// [`TableProfile::build`] with one task per column on the given pool, so
    /// `Atlas::builder` scales with the core count. Column profiles are
    /// independent and assembled in schema order: the result is identical at
    /// every thread count.
    pub fn build_with_pool(table: &Table, sketch_epsilon: Option<f64>, pool: &ThreadPool) -> Self {
        let full = table.full_selection();
        let fields = table.schema().fields();
        let columns = pool.par_map(fields, |field| {
            let column = table
                .column(&field.name)
                .expect("schema-listed column exists");
            let stats = ColumnStats::compute(column, &full);
            let sketch = match (field.dtype, sketch_epsilon) {
                (DataType::Int | DataType::Float, Some(epsilon)) => {
                    let mut sketch = GkSketch::new(epsilon);
                    sketch.extend(&column.numeric_values_where(&full));
                    Some(sketch)
                }
                _ => None,
            };
            ColumnProfile {
                name: field.name.clone(),
                stats,
                sketch,
                non_null: column.non_null_mask(),
            }
        });
        TableProfile {
            num_rows: table.num_rows(),
            columns,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// A profile with no pre-computed columns: every statistics request is
    /// answered by scanning the working set on the fly (and counted as a
    /// miss). Standalone entry points that run once per working set — the
    /// baselines, [`crate::candidates::generate_candidates`] — use this
    /// instead of paying for a full-table profile they would never amortise;
    /// prepared engines always carry a full [`TableProfile::build`] profile.
    pub fn empty(num_rows: usize) -> Self {
        TableProfile {
            num_rows,
            columns: Vec::new(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Number of rows of the profiled table.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// The profile of a column, if the column exists.
    pub fn column(&self, name: &str) -> Option<&ColumnProfile> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// All column profiles, in schema order.
    pub fn columns(&self) -> &[ColumnProfile] {
        &self.columns
    }

    /// True when the working set covers the whole table, so full-table
    /// statistics apply as-is.
    pub fn covers(&self, working: &Bitmap) -> bool {
        working.count() == self.num_rows
    }

    /// Statistics of `attribute` over `working`: served from the profile when
    /// the working set is the whole table, computed on the fly otherwise.
    pub fn stats_for<'a>(
        &'a self,
        table: &Table,
        attribute: &str,
        working: &Bitmap,
    ) -> Result<Cow<'a, ColumnStats>> {
        if self.covers(working) {
            if let Some(profile) = self.column(attribute) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Cow::Borrowed(&profile.stats));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok(Cow::Owned(table.column_stats(attribute, working)?))
    }

    /// The pre-built quantile sketch of `attribute`, usable only when the
    /// working set covers the whole table (a sketch of the full column says
    /// nothing about an arbitrary subset).
    pub fn sketch_for(&self, attribute: &str, working: &Bitmap) -> Option<&GkSketch> {
        if !self.covers(working) {
            return None;
        }
        self.column(attribute)?.sketch.as_ref()
    }

    /// A snapshot of the hit/miss counters.
    pub fn counters(&self) -> ProfileStats {
        ProfileStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_columnar::{DataType, Field, Schema, TableBuilder, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Float),
            Field::nullable("n", DataType::Int),
            Field::new("c", DataType::Str),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema);
        for i in 0..100 {
            let n = if i % 4 == 0 {
                Value::Null
            } else {
                Value::Int(i % 10)
            };
            b.push_row(&[
                Value::Float(i as f64),
                n,
                Value::Str(["a", "b"][(i % 2) as usize].into()),
            ])
            .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn profile_matches_on_demand_statistics() {
        let t = table();
        let profile = TableProfile::build(&t, Some(TableProfile::DEFAULT_SKETCH_EPSILON));
        assert_eq!(profile.num_rows(), 100);
        assert_eq!(profile.columns().len(), 3);
        for name in ["x", "n", "c"] {
            let cached = &profile.column(name).unwrap().stats;
            let fresh = t.column_stats(name, &t.full_selection()).unwrap();
            assert_eq!(cached, &fresh, "column {name}");
        }
        // Null mask: column n has 25 NULLs.
        assert_eq!(profile.column("n").unwrap().non_null.count(), 75);
        assert_eq!(profile.column("x").unwrap().non_null.count(), 100);
        // Sketches exist for numeric columns only.
        assert!(profile.column("x").unwrap().sketch.is_some());
        assert!(profile.column("c").unwrap().sketch.is_none());
        // The sketch median is close to the true median (rank error εn plus
        // the sketch's own value quantization).
        let sketch = profile.column("x").unwrap().sketch.as_ref().unwrap();
        assert!((sketch.median().unwrap() - 49.5).abs() <= 2.5);
    }

    #[test]
    fn full_table_requests_hit_and_subsets_miss() {
        let t = table();
        let profile = TableProfile::build(&t, Some(TableProfile::DEFAULT_SKETCH_EPSILON));
        assert_eq!(profile.counters(), ProfileStats::default());

        let full = t.full_selection();
        let cached = profile.stats_for(&t, "x", &full).unwrap();
        assert_eq!(profile.counters().hits, 1);
        assert_eq!(profile.counters().misses, 0);
        assert_eq!(cached.non_null_count, 100);

        let subset = Bitmap::from_indices(100, 0..50);
        let fresh = profile.stats_for(&t, "x", &subset).unwrap();
        assert_eq!(profile.counters().hits, 1);
        assert_eq!(profile.counters().misses, 1);
        assert_eq!(fresh.non_null_count, 50);

        // Sketches are only served for full-table working sets.
        assert!(profile.sketch_for("x", &full).is_some());
        assert!(profile.sketch_for("x", &subset).is_none());
        assert!(profile.sketch_for("c", &full).is_none());
    }

    #[test]
    fn empty_profiles_always_compute_on_the_fly() {
        let t = table();
        let profile = TableProfile::empty(t.num_rows());
        let full = t.full_selection();
        let stats = profile.stats_for(&t, "x", &full).unwrap();
        assert_eq!(stats.non_null_count, 100);
        assert_eq!(profile.counters(), ProfileStats { hits: 0, misses: 1 });
        assert!(profile.sketch_for("x", &full).is_none());
    }

    #[test]
    fn pooled_profile_build_matches_the_sequential_one() {
        let t = table();
        let sequential = TableProfile::build(&t, Some(TableProfile::DEFAULT_SKETCH_EPSILON));
        let pool = ThreadPool::new(4);
        let pooled =
            TableProfile::build_with_pool(&t, Some(TableProfile::DEFAULT_SKETCH_EPSILON), &pool);
        assert_eq!(pooled.num_rows(), sequential.num_rows());
        assert_eq!(pooled.columns().len(), sequential.columns().len());
        for (a, b) in pooled.columns().iter().zip(sequential.columns()) {
            assert_eq!(a.name, b.name, "schema order is preserved");
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.non_null, b.non_null);
            assert_eq!(a.sketch.is_some(), b.sketch.is_some());
            if let (Some(sa), Some(sb)) = (&a.sketch, &b.sketch) {
                assert_eq!(sa.median(), sb.median());
            }
        }
    }

    #[test]
    fn unknown_columns_are_an_error() {
        let t = table();
        let profile = TableProfile::build(&t, Some(TableProfile::DEFAULT_SKETCH_EPSILON));
        assert!(profile.stats_for(&t, "zzz", &t.full_selection()).is_err());
    }
}
