//! The pluggable stage traits of the Atlas pipeline.
//!
//! The paper's framework (Section 3) is a fixed sequence of four steps —
//! **cut**, **cluster by distance**, **merge**, **rank** — but each step
//! admits alternative algorithms: the paper itself discusses several cutting
//! strategies, three dependency measures, two merge operators, and the
//! evaluation compares against baselines that are really just different
//! choices for one of the steps. This module makes the seams explicit: every
//! step is a trait, the paper's algorithms are the default implementations,
//! and [`crate::engine::AtlasBuilder`] assembles any combination into one
//! prepared engine.
//!
//! | step | trait | paper default | alternatives in-tree |
//! |------|-------|---------------|----------------------|
//! | 1. candidate cuts | [`CutStrategy`] | [`PaperCut`] | [`crate::baselines::RandomCut`], [`crate::baselines::GridCut`] |
//! | 2. map distance | [`MapDistance`] | [`ViDistance`] | any [`MapDistanceMetric`] |
//! | 3. merging | [`MergePolicy`] | [`CompositionMerge`] | [`ProductMerge`], [`crate::baselines::DenseProductMerge`] |
//! | 4. ranking | [`Ranker`] | [`EntropyRanker`] | — |
//!
//! All stage traits are `Send + Sync`, so a prepared engine can be shared
//! across threads behind an `Arc`.

use crate::cut::{cut_attribute_in_context, CutConfig};
use crate::distance::{distance_matrix_with_pool, DistanceMatrix, MapDistanceMetric};
use crate::error::Result;
use crate::map::DataMap;
use crate::merge::product_maps;
use crate::profile::TableProfile;
use crate::rank::{rank_maps, RankedMap};
use atlas_columnar::{Bitmap, Table};
use atlas_query::ConjunctiveQuery;
use minirayon::ThreadPool;
use std::fmt;

/// Everything a pipeline stage may need: the table, its pre-computed
/// statistics, the cut configuration, the engine's cut strategy (so merge
/// policies that re-cut locally — composition — route through the same
/// strategy the candidates came from), and the engine's thread pool.
pub struct PipelineContext<'a> {
    /// The table being explored.
    pub table: &'a Table,
    /// Per-column statistics computed once when the engine was built.
    pub profile: &'a TableProfile,
    /// Configuration of the `CUT` primitive.
    pub cut_config: &'a CutConfig,
    /// The engine's cut strategy.
    pub cut_strategy: &'a dyn CutStrategy,
    /// Whether result regions covering no tuples are dropped.
    pub drop_empty_regions: bool,
    /// The engine's thread pool, sized by
    /// [`crate::AtlasConfig::parallelism`]. Stages are free to split their
    /// work across it; one-shot contexts use [`ThreadPool::sequential`].
    pub pool: &'a ThreadPool,
}

impl fmt::Debug for PipelineContext<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PipelineContext")
            .field("table", &self.table.name())
            .field("cut_config", self.cut_config)
            .field("cut_strategy", &self.cut_strategy)
            .field("drop_empty_regions", &self.drop_empty_regions)
            .finish()
    }
}

/// Step 1 — break one attribute of a working set into a one-attribute map.
///
/// Returning `Ok(None)` means the attribute cannot be usefully cut (constant,
/// identifier-like, too many categories); the engine skips it rather than
/// failing, as Section 5.2 of the paper recommends.
pub trait CutStrategy: fmt::Debug + Send + Sync {
    /// A short human-readable name (used in reports and benchmarks).
    fn name(&self) -> &str;

    /// Cut `attribute` over `working`, extending `parent_query` per region.
    fn cut(
        &self,
        ctx: &PipelineContext<'_>,
        working: &Bitmap,
        parent_query: &ConjunctiveQuery,
        attribute: &str,
    ) -> Result<Option<DataMap>>;
}

/// Step 2 — the dependency distance between candidate maps.
pub trait MapDistance: fmt::Debug + Send + Sync {
    /// A short human-readable name (used in reports and benchmarks).
    fn name(&self) -> &str;

    /// The pairwise distance matrix over a set of candidate maps.
    ///
    /// Implementations may parallelise across `ctx.pool`; the result must not
    /// depend on the pool's thread count.
    fn matrix(&self, ctx: &PipelineContext<'_>, maps: &[DataMap]) -> DistanceMatrix;
}

/// Step 3 — combine the maps of one cluster into a representative map.
pub trait MergePolicy: fmt::Debug + Send + Sync {
    /// A short human-readable name (used in reports and benchmarks).
    fn name(&self) -> &str;

    /// Merge `members` (the candidate maps of one cluster) into one map.
    ///
    /// `working` is the working set the members were cut from; policies that
    /// need absolute density thresholds use it for the total count. Returns
    /// `Ok(None)` when the cluster yields no usable map.
    fn merge(
        &self,
        ctx: &PipelineContext<'_>,
        members: &[DataMap],
        working: &Bitmap,
    ) -> Result<Option<DataMap>>;
}

/// Step 4 — order the merged maps for presentation.
pub trait Ranker: fmt::Debug + Send + Sync {
    /// A short human-readable name (used in reports and benchmarks).
    fn name(&self) -> &str;

    /// Score and order the maps, best first.
    fn rank(&self, maps: Vec<DataMap>) -> Vec<RankedMap>;
}

/// The paper's `CUT` primitive (Definition 1): median / k-means / sketch
/// splits for ordinal attributes, frequency-balanced grouping for categorical
/// ones, driven by [`CutConfig`]. Statistics come from the engine's
/// [`TableProfile`], so whole-table explorations never re-scan columns.
#[derive(Debug, Clone, Copy, Default)]
pub struct PaperCut;

impl CutStrategy for PaperCut {
    fn name(&self) -> &str {
        "paper-cut"
    }

    fn cut(
        &self,
        ctx: &PipelineContext<'_>,
        working: &Bitmap,
        parent_query: &ConjunctiveQuery,
        attribute: &str,
    ) -> Result<Option<DataMap>> {
        cut_attribute_in_context(ctx, working, parent_query, attribute)
    }
}

/// The paper's dependency measures (Definition 2): Variation of Information
/// and its normalised variants, selected by [`MapDistanceMetric`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ViDistance {
    /// The concrete metric.
    pub metric: MapDistanceMetric,
}

impl MapDistance for ViDistance {
    fn name(&self) -> &str {
        match self.metric {
            MapDistanceMetric::VariationOfInformation => "variation-of-information",
            MapDistanceMetric::NormalizedVI => "normalized-vi",
            MapDistanceMetric::OneMinusNmi => "one-minus-nmi",
        }
    }

    fn matrix(&self, ctx: &PipelineContext<'_>, maps: &[DataMap]) -> DistanceMatrix {
        distance_matrix_with_pool(maps, ctx.table.num_rows(), self.metric, ctx.pool)
    }
}

/// The product operator `M1 × M2` (Definition 3): intersect every region of
/// the first map with every region of the second. Fast, grid-like.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProductMerge;

impl MergePolicy for ProductMerge {
    fn name(&self) -> &str {
        "product"
    }

    fn merge(
        &self,
        ctx: &PipelineContext<'_>,
        members: &[DataMap],
        _working: &Bitmap,
    ) -> Result<Option<DataMap>> {
        Ok(product_maps(members, ctx.drop_empty_regions))
    }
}

/// The composition operator `M1 ∘ M2` (Definition 4): re-cut every region of
/// the first map on the attributes of the other maps, through the engine's
/// [`CutStrategy`], so split points adapt locally. Regions whose local cut
/// fails are kept whole, so composition never loses coverage.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompositionMerge;

impl MergePolicy for CompositionMerge {
    fn name(&self) -> &str {
        "composition"
    }

    fn merge(
        &self,
        ctx: &PipelineContext<'_>,
        members: &[DataMap],
        _working: &Bitmap,
    ) -> Result<Option<DataMap>> {
        if members.is_empty() {
            return Ok(None);
        }
        let mut result = members[0].clone();
        for other in &members[1..] {
            let Some(attribute) = other.source_attributes.first().cloned() else {
                continue;
            };
            let mut regions = Vec::new();
            for region in &result.regions {
                let sub =
                    ctx.cut_strategy
                        .cut(ctx, &region.selection, &region.query, &attribute)?;
                match sub {
                    Some(sub) => regions.extend(sub.regions),
                    None => regions.push(region.clone()),
                }
            }
            if ctx.drop_empty_regions {
                regions.retain(|r| !r.is_empty());
            }
            let mut attributes = result.source_attributes.clone();
            if !attributes.contains(&attribute) {
                attributes.push(attribute);
            }
            result = DataMap::new(regions, attributes);
        }
        Ok(Some(result))
    }
}

/// The paper's ranking (Section 3.4): decreasing entropy of the cover
/// distribution, with deterministic tie-breaking.
#[derive(Debug, Clone, Copy, Default)]
pub struct EntropyRanker;

impl Ranker for EntropyRanker {
    fn name(&self) -> &str {
        "entropy"
    }

    fn rank(&self, maps: Vec<DataMap>) -> Vec<RankedMap> {
        rank_maps(maps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_columnar::{DataType, Field, Schema, TableBuilder, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("size", DataType::Float),
            Field::new("weight", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema);
        // Four well-separated clusters whose weight gaps differ per size group
        // (the composition-beats-product construction from merge.rs).
        let centres = [(10.0, 10.0), (10.0, 40.0), (100.0, 60.0), (100.0, 90.0)];
        for (cx, cy) in centres {
            for i in 0..25 {
                b.push_row(&[
                    Value::Float(cx + (i % 5) as f64),
                    Value::Float(cy + (i / 5) as f64),
                ])
                .unwrap();
            }
        }
        b.build().unwrap()
    }

    fn with_context<T>(
        table: &Table,
        strategy: &dyn CutStrategy,
        f: impl FnOnce(&PipelineContext<'_>) -> T,
    ) -> T {
        let profile = TableProfile::build(table, None);
        let cut_config = CutConfig::default();
        let ctx = PipelineContext {
            table,
            profile: &profile,
            cut_config: &cut_config,
            cut_strategy: strategy,
            drop_empty_regions: true,
            pool: ThreadPool::sequential(),
        };
        f(&ctx)
    }

    #[test]
    fn paper_cut_matches_the_standalone_cut_primitive() {
        let t = table();
        let working = t.full_selection();
        let query = ConjunctiveQuery::all("t");
        let via_trait = with_context(&t, &PaperCut, |ctx| {
            PaperCut
                .cut(ctx, &working, &query, "size")
                .unwrap()
                .unwrap()
        });
        let direct = crate::cut::cut_attribute(&t, &working, &query, "size", &CutConfig::default())
            .unwrap()
            .unwrap();
        assert_eq!(via_trait.region_counts(), direct.region_counts());
        assert_eq!(via_trait.source_attributes, direct.source_attributes);
    }

    #[test]
    fn default_stages_have_names() {
        assert_eq!(PaperCut.name(), "paper-cut");
        assert_eq!(ViDistance::default().name(), "normalized-vi");
        assert_eq!(ProductMerge.name(), "product");
        assert_eq!(CompositionMerge.name(), "composition");
        assert_eq!(EntropyRanker.name(), "entropy");
    }

    #[test]
    fn composition_merge_recuts_through_the_context_strategy() {
        let t = table();
        let working = t.full_selection();
        let query = ConjunctiveQuery::all("t");
        let composed = with_context(&t, &PaperCut, |ctx| {
            let m_size = PaperCut
                .cut(ctx, &working, &query, "size")
                .unwrap()
                .unwrap();
            let m_weight = PaperCut
                .cut(ctx, &working, &query, "weight")
                .unwrap()
                .unwrap();
            CompositionMerge
                .merge(ctx, &[m_size, m_weight], &working)
                .unwrap()
                .unwrap()
        });
        // Local re-cutting isolates the four planted clusters of 25.
        let mut counts = composed.region_counts();
        counts.sort_unstable();
        assert_eq!(counts, vec![25, 25, 25, 25]);
        assert!(composed.regions_are_disjoint());
    }

    #[test]
    fn product_merge_builds_the_global_grid() {
        let t = table();
        let working = t.full_selection();
        let query = ConjunctiveQuery::all("t");
        let product = with_context(&t, &PaperCut, |ctx| {
            let m_size = PaperCut
                .cut(ctx, &working, &query, "size")
                .unwrap()
                .unwrap();
            let m_weight = PaperCut
                .cut(ctx, &working, &query, "weight")
                .unwrap()
                .unwrap();
            ProductMerge
                .merge(ctx, &[m_size, m_weight], &working)
                .unwrap()
                .unwrap()
        });
        assert!(product.num_regions() >= 2);
        assert!(product.regions_are_disjoint());
        assert_eq!(product.covered_count(), 100);
    }

    #[test]
    fn merging_no_members_yields_no_map() {
        let t = table();
        let working = t.full_selection();
        with_context(&t, &PaperCut, |ctx| {
            assert!(ProductMerge.merge(ctx, &[], &working).unwrap().is_none());
            assert!(CompositionMerge
                .merge(ctx, &[], &working)
                .unwrap()
                .is_none());
        });
    }
}
