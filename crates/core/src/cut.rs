//! The `CUT` primitive (Definition 1 of the paper).
//!
//! `CUT_k(Q)` takes a query `Q` and splits the range covered by its `k`-th
//! attribute into disjoint sub-ranges, producing a one-attribute map. The
//! paper discusses several cutting strategies; all of them are implemented
//! here and selected through [`CutConfig`]:
//!
//! * ordinal attributes — equi-width binning, median / equi-depth splits,
//!   1-D k-means (the "maximise intra-cluster homogeneity" option), exact
//!   natural breaks, or a Greenwald–Khanna sketch-approximated median
//!   (Section 5.1's one-pass optimisation);
//! * categorical attributes — grouping values in frequency order, alphabetic
//!   order, or first-appearance ("the order in which the user gives them")
//!   order, balanced by cover.
//!
//! Following the paper's performance-over-accuracy argument, the default
//! number of partitions is **two**.

use crate::error::{AtlasError, Result};
use crate::map::DataMap;
use crate::pipeline::PipelineContext;
use crate::profile::TableProfile;
use crate::region::Region;
use atlas_columnar::{Bitmap, ColumnStats, DataType, Table};
use atlas_query::{ConjunctiveQuery, Predicate};
use atlas_stats::quantile::quantiles;
use atlas_stats::{kmeans_1d, GkSketch};

/// How to split an ordinal (numeric) attribute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NumericCutStrategy {
    /// Equal-width bins between the min and max of the working set.
    EquiWidth,
    /// Equal-population bins (median for two-way splits).
    Median,
    /// 1-D k-means: split points between cluster centroids.
    KMeans {
        /// Maximum Lloyd iterations.
        max_iterations: usize,
    },
    /// Exact minimum-variance partition (Fisher–Jenks natural breaks).
    NaturalBreaks,
    /// Approximate equal-population bins using a Greenwald–Khanna sketch
    /// (one-pass, Section 5.1 of the paper). ε-approximate by design — and,
    /// on segmented tables, the engine's sketch is a fold of per-segment
    /// sketches, so split points may shift slightly with the segment layout
    /// (within the same ε rank-error envelope); the exact strategies are
    /// layout-independent bit for bit.
    SketchMedian {
        /// Sketch error bound (rank error as a fraction of the population).
        epsilon: f64,
    },
}

/// How to group the values of a categorical attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CategoricalCutStrategy {
    /// Order values by decreasing frequency, then group greedily so the group
    /// covers are balanced.
    Frequency,
    /// Order values alphabetically (the paper's suggestion for
    /// high-cardinality, semantics-free columns), then group contiguously.
    Alphabetic,
    /// Keep the dictionary (first-appearance / user-given) order, then group
    /// contiguously.
    DictionaryOrder,
}

/// Configuration of the `CUT` primitive.
#[derive(Debug, Clone, PartialEq)]
pub struct CutConfig {
    /// Number of partitions per attribute (the paper fixes this to 2).
    pub num_splits: usize,
    /// Strategy for ordinal attributes.
    pub numeric: NumericCutStrategy,
    /// Strategy for categorical attributes.
    pub categorical: CategoricalCutStrategy,
    /// Categorical attributes with more distinct values than this are not cut
    /// (they are "codes, names, comments or keys" in the paper's terms).
    pub max_categories: usize,
    /// Skip attributes whose statistics look like identifiers.
    pub skip_identifiers: bool,
}

impl Default for CutConfig {
    fn default() -> Self {
        CutConfig {
            num_splits: 2,
            numeric: NumericCutStrategy::Median,
            categorical: CategoricalCutStrategy::Frequency,
            max_categories: 40,
            skip_identifiers: true,
        }
    }
}

impl CutConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.num_splits < 2 {
            return Err(AtlasError::InvalidConfig(
                "num_splits must be at least 2".to_string(),
            ));
        }
        if let NumericCutStrategy::SketchMedian { epsilon } = self.numeric {
            if !(epsilon > 0.0 && epsilon < 0.5) {
                return Err(AtlasError::InvalidConfig(
                    "sketch epsilon must be in (0, 0.5)".to_string(),
                ));
            }
        }
        Ok(())
    }
}

/// The data-access surface of the `CUT` primitive, with the working set
/// baked in.
///
/// Every row-touching kernel `CUT` needs goes through this trait; the split
/// selection, grouping, and region-assembly logic above it is pure. The two
/// implementations are [`TableCutSource`] (an in-process table — both
/// [`cut_attribute`] and the prepared engine route through it) and the serve
/// crate's remote source, which scatters each call to shard servers holding
/// disjoint segment subsets and folds their answers. A source that
/// reproduces the kernel outputs reproduces the local cut **bit for bit**,
/// because [`cut_from_source`] is the only cut body.
///
/// All returned selections are bitmaps over the table's **global** rows, and
/// every method may be called only with attributes of the table's schema
/// (unknown attributes error).
pub trait CutSource {
    /// The data type of `attribute`.
    fn data_type(&self, attribute: &str) -> Result<DataType>;
    /// The non-NULL numeric values of the working set, in global row order.
    fn numeric_values(&self, attribute: &str) -> Result<Vec<f64>>;
    /// Partition the working set by first-matching range in one fused pass
    /// (the [`atlas_columnar::ColumnView::select_ranges`] kernel).
    fn select_ranges(&self, attribute: &str, bounds: &[(f64, f64)]) -> Result<Vec<Bitmap>>;
    /// The distinct categorical values of the working set by decreasing
    /// frequency (ties in global first-appearance order).
    fn categories_by_frequency(&self, attribute: &str) -> Result<Vec<(String, usize)>>;
    /// The global first-appearance dictionary of a string column (empty for
    /// other types).
    fn dictionary(&self, attribute: &str) -> Result<Vec<String>>;
    /// Partition the working set by disjoint value groups in one fused pass
    /// (the [`atlas_columnar::ColumnView::select_in_groups`] kernel).
    fn select_in_groups(&self, attribute: &str, groups: &[Vec<String>]) -> Result<Vec<Bitmap>>;
}

/// A [`CutSource`] reading straight from an in-process [`Table`].
pub struct TableCutSource<'a> {
    table: &'a Table,
    working: &'a Bitmap,
    profile: Option<&'a TableProfile>,
}

impl<'a> TableCutSource<'a> {
    /// A source over the `working` rows of `table`.
    pub fn new(table: &'a Table, working: &'a Bitmap) -> Self {
        TableCutSource {
            table,
            working,
            profile: None,
        }
    }

    /// Serve whole-table category frequencies from a prepared engine's
    /// [`TableProfile`] instead of re-scanning the column (see
    /// [`TableProfile::categories_for`] — rankings are bit-identical either
    /// way, subsets still scan on the fly).
    pub fn with_profile(mut self, profile: &'a TableProfile) -> Self {
        self.profile = Some(profile);
        self
    }
}

impl CutSource for TableCutSource<'_> {
    fn data_type(&self, attribute: &str) -> Result<DataType> {
        Ok(self.table.column(attribute)?.data_type())
    }

    fn numeric_values(&self, attribute: &str) -> Result<Vec<f64>> {
        Ok(self
            .table
            .column(attribute)?
            .numeric_values_where(self.working))
    }

    fn select_ranges(&self, attribute: &str, bounds: &[(f64, f64)]) -> Result<Vec<Bitmap>> {
        Ok(self
            .table
            .column(attribute)?
            .select_ranges(self.working, bounds))
    }

    fn categories_by_frequency(&self, attribute: &str) -> Result<Vec<(String, usize)>> {
        match self.profile {
            Some(profile) => profile.categories_for(self.table, attribute, self.working),
            None => Ok(self
                .table
                .column(attribute)?
                .categories_by_frequency(self.working)),
        }
    }

    fn dictionary(&self, attribute: &str) -> Result<Vec<String>> {
        Ok(self.table.column(attribute)?.dictionary())
    }

    fn select_in_groups(&self, attribute: &str, groups: &[Vec<String>]) -> Result<Vec<Bitmap>> {
        Ok(self
            .table
            .column(attribute)?
            .select_in_groups(self.working, groups))
    }
}

/// Apply `CUT` to one attribute of the working set.
///
/// * `table` — the table the selection ranges over;
/// * `working` — the rows selected by the parent query (the working set);
/// * `parent_query` — the query being broken down; region queries extend it;
/// * `attribute` — the attribute to split.
///
/// Returns `Ok(None)` when the attribute cannot be usefully cut (constant
/// column, all NULL, identifier-like, too many categories); this mirrors the
/// paper's advice to skip such columns rather than fail.
pub fn cut_attribute(
    table: &Table,
    working: &Bitmap,
    parent_query: &ConjunctiveQuery,
    attribute: &str,
    config: &CutConfig,
) -> Result<Option<DataMap>> {
    let stats = table.column_stats(attribute, working)?;
    let source = TableCutSource::new(table, working);
    cut_from_source(&source, parent_query, attribute, config, &stats, None)
}

/// [`cut_attribute`] inside a prepared engine: statistics (and, for
/// sketch-based strategies, the quantile sketch itself) come from the
/// engine's [`crate::profile::TableProfile`] instead of being recomputed, so
/// whole-table explorations never re-scan columns for metadata.
pub(crate) fn cut_attribute_in_context(
    ctx: &PipelineContext<'_>,
    working: &Bitmap,
    parent_query: &ConjunctiveQuery,
    attribute: &str,
) -> Result<Option<DataMap>> {
    let stats = ctx.profile.stats_for(ctx.table, attribute, working)?;
    let sketch = ctx.profile.sketch_for(attribute, working);
    let source = TableCutSource::new(ctx.table, working).with_profile(ctx.profile);
    cut_from_source(
        &source,
        parent_query,
        attribute,
        ctx.cut_config,
        &stats,
        sketch,
    )
}

/// The body of the `CUT` primitive over an abstract [`CutSource`], with the
/// per-column statistics supplied by the caller (fresh, from a profile, or
/// folded from per-shard summaries).
///
/// `sketch` is an optional prebuilt quantile sketch of the working set's
/// values (only consulted by the `SketchMedian` strategy).
pub fn cut_from_source<S: CutSource>(
    source: &S,
    parent_query: &ConjunctiveQuery,
    attribute: &str,
    config: &CutConfig,
    stats: &ColumnStats,
    sketch: Option<&GkSketch>,
) -> Result<Option<DataMap>> {
    config.validate()?;
    let dtype = source.data_type(attribute)?;
    if stats.non_null_count == 0 || stats.distinct_count < 2 {
        return Ok(None);
    }
    if config.skip_identifiers && stats.looks_like_identifier() {
        return Ok(None);
    }

    let regions = match dtype {
        DataType::Int | DataType::Float => {
            let splits = match config.numeric {
                // Equi-width splits depend only on min/max, which the caller's
                // statistics already hold: no value materialisation at all.
                NumericCutStrategy::EquiWidth => equi_width_splits(
                    stats.min.unwrap_or(0.0),
                    stats.max.unwrap_or(0.0),
                    config.num_splits,
                ),
                _ => {
                    let values = source.numeric_values(attribute)?;
                    numeric_splits(&values, config, sketch)?
                }
            };
            if splits.is_empty() {
                return Ok(None);
            }
            numeric_regions(
                source,
                parent_query,
                attribute,
                dtype,
                stats.min.unwrap_or(0.0),
                stats.max.unwrap_or(0.0),
                &splits,
            )?
        }
        DataType::Str | DataType::Bool => {
            if stats.distinct_count > config.max_categories {
                return Ok(None);
            }
            let groups = categorical_groups(source, attribute, config)?;
            if groups.len() < 2 {
                return Ok(None);
            }
            categorical_regions(source, parent_query, attribute, &groups)?
        }
    };

    let mut map = DataMap::new(regions, vec![attribute.to_string()]);
    map.drop_empty_regions();
    if map.num_regions() < 2 {
        return Ok(None);
    }
    Ok(Some(map))
}

/// Compute the interior split points for a numeric attribute.
///
/// `prebuilt_sketch` is a quantile sketch of the working set's values (from a
/// [`crate::profile::TableProfile`]); when present, the `SketchMedian`
/// strategy queries it instead of building a fresh sketch.
fn numeric_splits(
    values: &[f64],
    config: &CutConfig,
    prebuilt_sketch: Option<&GkSketch>,
) -> Result<Vec<f64>> {
    if values.is_empty() {
        return Ok(Vec::new());
    }
    let k = config.num_splits;
    let splits: Vec<f64> = match config.numeric {
        NumericCutStrategy::EquiWidth => {
            let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            return Ok(equi_width_splits(min, max, k));
        }
        NumericCutStrategy::Median => {
            // One sort for all k−1 quantiles instead of one sort per quantile.
            let ps: Vec<f64> = (1..k).map(|i| i as f64 / k as f64).collect();
            quantiles(values, &ps).unwrap_or_default()
        }
        NumericCutStrategy::KMeans { max_iterations } => kmeans_1d(values, k, max_iterations)
            .map(|r| r.splits)
            .unwrap_or_default(),
        NumericCutStrategy::NaturalBreaks => atlas_stats::breaks::natural_breaks(values, k)
            .map(|r| r.splits)
            .unwrap_or_default(),
        NumericCutStrategy::SketchMedian { epsilon } => {
            let fresh;
            let sketch = match prebuilt_sketch {
                Some(prebuilt) if prebuilt.epsilon() <= epsilon => prebuilt,
                _ => {
                    let mut s = GkSketch::new(epsilon);
                    s.extend(values);
                    fresh = s;
                    &fresh
                }
            };
            let mut out = Vec::with_capacity(k - 1);
            for i in 1..k {
                if let Some(q) = sketch.query(i as f64 / k as f64) {
                    out.push(q);
                }
            }
            out
        }
    };
    // Deduplicate and drop degenerate splits (outside the observed range).
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut cleaned: Vec<f64> = Vec::with_capacity(splits.len());
    for s in splits {
        if s >= min && s < max && cleaned.last().is_none_or(|&last| s > last) {
            cleaned.push(s);
        }
    }
    Ok(cleaned)
}

/// Interior equi-width split points for the observed `[min, max]` range,
/// already cleaned (strictly increasing, inside the open range). This is the
/// split set an equi-width histogram over the values would produce, computed
/// from the summary statistics alone — the fused fast path of the `EquiWidth`
/// strategy needs no scan over the column values.
fn equi_width_splits(min: f64, max: f64, k: usize) -> Vec<f64> {
    if k < 2 || min.is_nan() || max.is_nan() || min >= max {
        return Vec::new();
    }
    let width = (max - min) / k as f64;
    let mut cleaned = Vec::with_capacity(k - 1);
    for i in 1..k {
        let s = min + width * i as f64;
        if s >= min && s < max && cleaned.last().is_none_or(|&last| s > last) {
            cleaned.push(s);
        }
    }
    cleaned
}

/// Build the per-region range predicates and selections for a numeric cut.
///
/// All region extents come out of **one** fused pass over the column
/// ([`atlas_columnar::ColumnView::select_ranges`]) instead of one scan per
/// region.
fn numeric_regions<S: CutSource>(
    source: &S,
    parent_query: &ConjunctiveQuery,
    attribute: &str,
    dtype: DataType,
    min: f64,
    max: f64,
    splits: &[f64],
) -> Result<Vec<Region>> {
    let mut bounds = Vec::with_capacity(splits.len() + 1);
    let mut lo = min;
    for (i, &split) in splits.iter().chain(std::iter::once(&max)).enumerate() {
        let hi = if i == splits.len() { max } else { split };
        if hi < lo {
            continue;
        }
        bounds.push((lo, hi));
        lo = next_lower_bound(dtype, hi);
    }
    let selections = source.select_ranges(attribute, &bounds)?;
    let regions = bounds
        .into_iter()
        .zip(selections)
        .map(|((lo, hi), selection)| {
            let query = parent_query
                .clone()
                .and(Predicate::range(attribute, lo, hi));
            Region::new(query, selection)
        })
        .collect();
    Ok(regions)
}

/// The smallest admissible lower bound strictly above `hi`, respecting the
/// column type: the next integer for integer columns, the next representable
/// float otherwise. This keeps adjacent range regions disjoint while the
/// queries stay human-readable (`[17, 37]`, `[38, 90]` on integer data).
fn next_lower_bound(dtype: DataType, hi: f64) -> f64 {
    match dtype {
        DataType::Int => hi.floor() + 1.0,
        _ => {
            if hi.is_finite() {
                f64::from_bits(if hi >= 0.0 {
                    hi.to_bits() + 1
                } else {
                    hi.to_bits() - 1
                })
            } else {
                hi
            }
        }
    }
}

/// Group the categorical values of the working set into `num_splits` groups.
fn categorical_groups<S: CutSource>(
    source: &S,
    attribute: &str,
    config: &CutConfig,
) -> Result<Vec<Vec<String>>> {
    let mut freq = source.categories_by_frequency(attribute)?;
    if freq.len() < 2 {
        return Ok(Vec::new());
    }
    match config.categorical {
        CategoricalCutStrategy::Frequency => {
            // already in decreasing frequency order
        }
        CategoricalCutStrategy::Alphabetic => {
            freq.sort_by(|a, b| a.0.cmp(&b.0));
        }
        CategoricalCutStrategy::DictionaryOrder => {
            // Global first-appearance order, merged across segments (for
            // boolean columns there is no dictionary and the frequency order
            // stands, as before).
            let order = source.dictionary(attribute)?;
            if !order.is_empty() {
                freq.sort_by_key(|(value, _)| {
                    order.iter().position(|d| d == value).unwrap_or(usize::MAX)
                });
            }
        }
    }
    let k = config.num_splits.min(freq.len());
    let total: usize = freq.iter().map(|(_, n)| n).sum();
    let target = (total as f64 / k as f64).ceil() as usize;

    // Greedy contiguous grouping: walk the ordered values, starting a new
    // group when the current one reaches the target cover, while keeping
    // enough values for the remaining groups.
    let mut groups: Vec<Vec<String>> = Vec::with_capacity(k);
    let mut current: Vec<String> = Vec::new();
    let mut current_count = 0usize;
    let mut remaining_values = freq.len();
    for (value, count) in freq {
        let remaining_groups = k - groups.len();
        let must_close = remaining_values == remaining_groups.saturating_sub(1) + 1
            && !current.is_empty()
            && groups.len() + 1 < k;
        current.push(value);
        current_count += count;
        remaining_values -= 1;
        if (current_count >= target || must_close) && groups.len() + 1 < k {
            groups.push(std::mem::take(&mut current));
            current_count = 0;
        }
    }
    if !current.is_empty() {
        groups.push(current);
    }
    Ok(groups)
}

/// Build per-region set predicates and selections for a categorical cut.
///
/// All region extents come out of **one** fused pass over the column
/// ([`atlas_columnar::ColumnView::select_in_groups`]): value groups are
/// resolved to dictionary codes once, then each row does a single indexed
/// lookup.
fn categorical_regions<S: CutSource>(
    source: &S,
    parent_query: &ConjunctiveQuery,
    attribute: &str,
    groups: &[Vec<String>],
) -> Result<Vec<Region>> {
    let selections = source.select_in_groups(attribute, groups)?;
    let regions = groups
        .iter()
        .zip(selections)
        .map(|(group, selection)| {
            let query = parent_query
                .clone()
                .and(Predicate::values(attribute, group.iter().cloned()));
            Region::new(query, selection)
        })
        .collect();
    Ok(regions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_columnar::{Field, Schema, TableBuilder, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("age", DataType::Int),
            Field::new("height", DataType::Float),
            Field::new("sex", DataType::Str),
            Field::new("education", DataType::Str),
            Field::new("id", DataType::Int),
        ])
        .unwrap();
        let mut b = TableBuilder::new("survey", schema);
        for i in 0..200i64 {
            let age = 17 + (i * 7) % 74; // 17..90
            let height = 150.0 + (i % 50) as f64;
            let sex = if i % 2 == 0 { "M" } else { "F" };
            let education = match i % 10 {
                0..=4 => "HS",
                5..=7 => "BSc",
                8 => "MSc",
                _ => "PhD",
            };
            b.push_row(&[
                Value::Int(age),
                Value::Float(height),
                Value::Str(sex.into()),
                Value::Str(education.into()),
                Value::Int(i),
            ])
            .unwrap();
        }
        b.build().unwrap()
    }

    fn base_query() -> ConjunctiveQuery {
        ConjunctiveQuery::all("survey")
    }

    #[test]
    fn default_config_is_valid_and_two_way() {
        let cfg = CutConfig::default();
        assert_eq!(cfg.num_splits, 2);
        assert!(cfg.validate().is_ok());
        let bad = CutConfig {
            num_splits: 1,
            ..CutConfig::default()
        };
        assert!(matches!(bad.validate(), Err(AtlasError::InvalidConfig(_))));
        let bad_eps = CutConfig {
            numeric: NumericCutStrategy::SketchMedian { epsilon: 0.9 },
            ..CutConfig::default()
        };
        assert!(bad_eps.validate().is_err());
    }

    #[test]
    fn median_cut_on_integer_attribute_partitions_the_working_set() {
        let t = table();
        let working = t.full_selection();
        let map = cut_attribute(&t, &working, &base_query(), "age", &CutConfig::default())
            .unwrap()
            .unwrap();
        assert_eq!(map.num_regions(), 2);
        assert!(map.regions_are_disjoint());
        // Medians split roughly in half.
        let counts = map.region_counts();
        assert!((counts[0] as i64 - counts[1] as i64).abs() <= 20);
        // Regions keep the parent query's table and add one predicate each.
        assert_eq!(map.max_predicates(), 1);
        assert_eq!(map.source_attributes, vec!["age".to_string()]);
        // Every working row with a non-NULL age is covered.
        assert_eq!(map.covered_count(), 200);
    }

    #[test]
    fn all_numeric_strategies_produce_valid_partitions() {
        let t = table();
        let working = t.full_selection();
        let strategies = [
            NumericCutStrategy::EquiWidth,
            NumericCutStrategy::Median,
            NumericCutStrategy::KMeans { max_iterations: 30 },
            NumericCutStrategy::NaturalBreaks,
            NumericCutStrategy::SketchMedian { epsilon: 0.01 },
        ];
        for strategy in strategies {
            let cfg = CutConfig {
                numeric: strategy,
                ..CutConfig::default()
            };
            let map = cut_attribute(&t, &working, &base_query(), "height", &cfg)
                .unwrap()
                .unwrap_or_else(|| panic!("strategy {strategy:?} produced no map"));
            assert!(map.num_regions() >= 2, "strategy {strategy:?}");
            assert!(map.regions_are_disjoint(), "strategy {strategy:?}");
            assert_eq!(map.covered_count(), 200, "strategy {strategy:?}");
        }
    }

    #[test]
    fn k_way_cuts_produce_k_regions() {
        let t = table();
        let working = t.full_selection();
        let cfg = CutConfig {
            num_splits: 4,
            ..CutConfig::default()
        };
        let map = cut_attribute(&t, &working, &base_query(), "age", &cfg)
            .unwrap()
            .unwrap();
        assert_eq!(map.num_regions(), 4);
        assert!(map.regions_are_disjoint());
        assert_eq!(map.covered_count(), 200);
    }

    #[test]
    fn categorical_cut_groups_values_and_balances_cover() {
        let t = table();
        let working = t.full_selection();
        let map = cut_attribute(
            &t,
            &working,
            &base_query(),
            "education",
            &CutConfig::default(),
        )
        .unwrap()
        .unwrap();
        assert_eq!(map.num_regions(), 2);
        assert!(map.regions_are_disjoint());
        assert_eq!(map.covered_count(), 200);
        // The majority value ("HS", 50%) should sit alone in one region under
        // the frequency strategy.
        let big = map
            .regions
            .iter()
            .find(|r| {
                r.query
                    .predicate_on("education")
                    .unwrap()
                    .set
                    .contains_value("HS")
            })
            .unwrap();
        assert_eq!(big.count(), 100);
    }

    #[test]
    fn binary_categorical_cut_is_one_value_per_region() {
        let t = table();
        let working = t.full_selection();
        let map = cut_attribute(&t, &working, &base_query(), "sex", &CutConfig::default())
            .unwrap()
            .unwrap();
        assert_eq!(map.num_regions(), 2);
        let sizes = map.region_counts();
        assert_eq!(sizes, vec![100, 100]);
    }

    #[test]
    fn alphabetic_and_dictionary_strategies_work() {
        let t = table();
        let working = t.full_selection();
        for strategy in [
            CategoricalCutStrategy::Alphabetic,
            CategoricalCutStrategy::DictionaryOrder,
        ] {
            let cfg = CutConfig {
                categorical: strategy,
                ..CutConfig::default()
            };
            let map = cut_attribute(&t, &working, &base_query(), "education", &cfg)
                .unwrap()
                .unwrap();
            assert_eq!(map.num_regions(), 2);
            assert!(map.regions_are_disjoint());
            assert_eq!(map.covered_count(), 200);
        }
    }

    #[test]
    fn identifier_columns_are_skipped() {
        let t = table();
        let working = t.full_selection();
        let map = cut_attribute(&t, &working, &base_query(), "id", &CutConfig::default()).unwrap();
        assert!(map.is_none());
        // but cutting is possible when identifier skipping is disabled
        let cfg = CutConfig {
            skip_identifiers: false,
            ..CutConfig::default()
        };
        assert!(cut_attribute(&t, &working, &base_query(), "id", &cfg)
            .unwrap()
            .is_some());
    }

    #[test]
    fn constant_and_unknown_attributes() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]).unwrap();
        let mut b = TableBuilder::new("t", schema);
        for _ in 0..10 {
            b.push_row(&[Value::Int(5)]).unwrap();
        }
        let t = b.build().unwrap();
        let working = t.full_selection();
        let q = ConjunctiveQuery::all("t");
        assert!(cut_attribute(&t, &working, &q, "x", &CutConfig::default())
            .unwrap()
            .is_none());
        assert!(cut_attribute(&t, &working, &q, "zzz", &CutConfig::default()).is_err());
    }

    #[test]
    fn cut_respects_the_working_set() {
        let t = table();
        // Working set: only the first 40 rows. Within such a small subset the
        // age values happen to be all distinct, so identifier skipping must be
        // disabled to exercise the restriction logic itself.
        let working = Bitmap::from_indices(t.num_rows(), 0..40);
        let cfg = CutConfig {
            skip_identifiers: false,
            ..CutConfig::default()
        };
        let map = cut_attribute(&t, &working, &base_query(), "age", &cfg)
            .unwrap()
            .unwrap();
        assert_eq!(map.covered_count(), 40);
        for region in &map.regions {
            for row in region.selection.iter_ones() {
                assert!(row < 40);
            }
        }
    }

    #[test]
    fn region_queries_extend_the_parent_query() {
        let t = table();
        let parent = ConjunctiveQuery::all("survey").and(Predicate::values("sex", ["M"]));
        let working = atlas_query::evaluate(&parent, &t).unwrap();
        let map = cut_attribute(&t, &working, &parent, "age", &CutConfig::default())
            .unwrap()
            .unwrap();
        for region in &map.regions {
            assert!(region.query.predicate_on("sex").is_some());
            assert!(region.query.predicate_on("age").is_some());
            // Evaluating the region query from scratch gives exactly the
            // region's selection: queries and extents are consistent.
            let evaluated = atlas_query::evaluate(&region.query, &t).unwrap();
            assert_eq!(evaluated.to_indices(), region.selection.to_indices());
        }
    }

    #[test]
    fn integer_regions_have_readable_adjacent_bounds() {
        let t = table();
        let working = t.full_selection();
        let map = cut_attribute(&t, &working, &base_query(), "age", &CutConfig::default())
            .unwrap()
            .unwrap();
        // Second region's lower bound is an integer (floor(split) + 1).
        let second = &map.regions[1];
        match &second.query.predicate_on("age").unwrap().set {
            atlas_query::PredicateSet::Range { lo, .. } => {
                assert_eq!(lo.fract(), 0.0, "integer cut should use integer bounds");
            }
            _ => panic!("expected a range predicate"),
        }
    }

    #[test]
    fn max_categories_limit_is_enforced() {
        let t = table();
        let working = t.full_selection();
        let cfg = CutConfig {
            max_categories: 3,
            ..CutConfig::default()
        };
        // education has 4 distinct values, above the limit of 3.
        assert!(
            cut_attribute(&t, &working, &base_query(), "education", &cfg)
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn nulls_fall_outside_all_regions() {
        let schema = Schema::new(vec![Field::nullable("x", DataType::Int)]).unwrap();
        let mut b = TableBuilder::new("t", schema);
        for i in 0..20 {
            let v = if i % 5 == 0 {
                Value::Null
            } else {
                Value::Int(i % 7)
            };
            b.push_row(&[v]).unwrap();
        }
        let t = b.build().unwrap();
        let working = t.full_selection();
        let map = cut_attribute(
            &t,
            &working,
            &ConjunctiveQuery::all("t"),
            "x",
            &CutConfig::default(),
        )
        .unwrap()
        .unwrap();
        assert_eq!(map.covered_count(), 16);
        assert!(map.regions_are_disjoint());
        let labels = map.region_labels(20);
        assert_eq!(labels[0], crate::map::NO_REGION);
        assert_eq!(labels[5], crate::map::NO_REGION);
    }
}
