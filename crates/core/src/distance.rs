//! Distances between data maps (step 2a of the framework).
//!
//! Definition 2 of the paper associates a discrete random variable to every
//! map: pick a random tuple of the working set, the variable is the region it
//! falls into. Two maps are *related* when their variables are statistically
//! dependent. The paper proposes mutual-information-based measures and singles
//! out the Variation of Information (Meilă 2007) because it is a true metric.

use crate::map::DataMap;
use atlas_columnar::Bitmap;
use atlas_stats::ContingencyTable;
use minirayon::ThreadPool;

/// The dependency measure used as a distance between maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MapDistanceMetric {
    /// Variation of Information, in bits. A metric; 0 for identical
    /// partitions, `H(X) + H(Y)` for independent ones. The paper's choice.
    VariationOfInformation,
    /// VI normalised by the joint entropy, in `[0, 1]`. Scale-free, so a
    /// single distance threshold works across datasets.
    #[default]
    NormalizedVI,
    /// `1 − NMI`, in `[0, 1]`. Not a metric, provided for comparison in the
    /// ablation experiments.
    OneMinusNmi,
}

/// A symmetric distance matrix over a set of candidate maps.
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    size: usize,
    values: Vec<f64>,
}

impl DistanceMatrix {
    /// Build a matrix of the given size with all distances set to zero.
    pub fn zeros(size: usize) -> Self {
        DistanceMatrix {
            size,
            values: vec![0.0; size * size],
        }
    }

    /// Number of maps the matrix ranges over.
    pub fn len(&self) -> usize {
        self.size
    }

    /// True if the matrix ranges over no maps.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// The distance between maps `i` and `j`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.values[i * self.size + j]
    }

    /// Set the distance between maps `i` and `j` (kept symmetric).
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        self.values[i * self.size + j] = value;
        self.values[j * self.size + i] = value;
    }
}

/// The distance between two maps under the chosen metric.
///
/// `table_rows` is the number of rows of the underlying table. Rows outside
/// either map (NULLs, rows outside the working set) — and rows at index
/// `table_rows` or beyond — are ignored, as they carry no information about
/// dependency.
///
/// The contingency table between the two maps' variables is assembled with
/// the fused columnar kernel [`ContingencyTable::from_selections`] —
/// `regions(a) × regions(b)` word-level intersection popcounts — instead of
/// materialising a label per table row, which makes the cost proportional to
/// `table_rows / 64` rather than `table_rows`. Both maps must have pairwise
/// disjoint regions (every map produced by `CUT` and the merge operators
/// does). When the maps' region bitmaps do not share one common length at
/// most `table_rows` (they always do for maps of a `table_rows`-row table)
/// the label-based path is used instead, so out-of-range rows stay excluded
/// and mixed-length maps keep working exactly as before the fused kernel.
pub fn map_distance(a: &DataMap, b: &DataMap, table_rows: usize, metric: MapDistanceMetric) -> f64 {
    if !fused_compatible([a, b], table_rows) {
        let labels_a = a.region_labels(table_rows);
        let labels_b = b.region_labels(table_rows);
        return distance_from_labels(
            &labels_a,
            &labels_b,
            a.num_regions(),
            b.num_regions(),
            metric,
        );
    }
    let regions_a: Vec<&Bitmap> = a.regions.iter().map(|r| &r.selection).collect();
    let regions_b: Vec<&Bitmap> = b.regions.iter().map(|r| &r.selection).collect();
    distance_from_selections(&regions_a, &regions_b, metric)
}

/// True when every region bitmap across the given maps shares one common
/// length at most `table_rows` — the precondition of the fused
/// bitmap-contingency kernel (word-level intersections need equal lengths,
/// and the `table_rows` contract excludes rows past that index).
fn fused_compatible<'a>(maps: impl IntoIterator<Item = &'a DataMap>, table_rows: usize) -> bool {
    let mut common: Option<usize> = None;
    for map in maps {
        for region in &map.regions {
            let len = region.selection.len();
            if len > table_rows {
                return false;
            }
            match common {
                None => common = Some(len),
                Some(expected) if expected == len => {}
                Some(_) => return false,
            }
        }
    }
    true
}

/// The distance between two partitions given as per-region selection bitmaps.
fn distance_from_selections(
    regions_a: &[&Bitmap],
    regions_b: &[&Bitmap],
    metric: MapDistanceMetric,
) -> f64 {
    let table = ContingencyTable::from_selections(regions_a, regions_b);
    metric_of(&table, metric)
}

/// The chosen dependency measure of a prebuilt contingency table.
///
/// This is the scoring half of [`map_distance`]: callers that already hold a
/// [`ContingencyTable`] — e.g. a distributed coordinator that summed
/// per-shard partial counts — apply the same metric the in-process matrix
/// uses, so identical counts give bit-identical distances.
pub fn metric_of(table: &ContingencyTable, metric: MapDistanceMetric) -> f64 {
    match metric {
        MapDistanceMetric::VariationOfInformation => table.variation_of_information(),
        MapDistanceMetric::NormalizedVI => table.normalized_vi(),
        MapDistanceMetric::OneMinusNmi => 1.0 - table.normalized_mi(),
    }
}

/// The distance between two label vectors (used internally and by the anytime
/// engine, which compares approximate and exact maps).
pub fn distance_from_labels(
    labels_a: &[u32],
    labels_b: &[u32],
    card_a: usize,
    card_b: usize,
    metric: MapDistanceMetric,
) -> f64 {
    let table = ContingencyTable::from_labels(labels_a, labels_b, card_a, card_b);
    metric_of(&table, metric)
}

/// Pairwise distance matrix over a set of candidate maps (sequential).
///
/// Each pair is compared through the fused bitmap-contingency kernel of
/// [`map_distance`], so the cost is `O(n² · regionsᵃ·regionsᵇ · rows/64)`
/// word operations for `n` candidates — no label vectors are materialised.
pub fn distance_matrix(
    maps: &[DataMap],
    table_rows: usize,
    metric: MapDistanceMetric,
) -> DistanceMatrix {
    distance_matrix_with_pool(maps, table_rows, metric, ThreadPool::sequential())
}

/// [`distance_matrix`] with the upper triangle split row-blocked across a
/// thread pool.
///
/// Results are written per row of the triangle and are **identical at every
/// thread count** (each cell is a pure function of its two maps).
pub fn distance_matrix_with_pool(
    maps: &[DataMap],
    table_rows: usize,
    metric: MapDistanceMetric,
    pool: &ThreadPool,
) -> DistanceMatrix {
    let n = maps.len();
    if !fused_compatible(maps, table_rows) {
        // Out-of-range or mixed-length region bitmaps: let `map_distance`
        // pick the right path per pair (see its docs), preserving the old
        // `table_rows` truncation contract.
        let rows: Vec<Vec<f64>> = pool.par_map_indexed(n, 1, |i| {
            ((i + 1)..n)
                .map(|j| map_distance(&maps[i], &maps[j], table_rows, metric))
                .collect()
        });
        return triangle_to_matrix(n, rows);
    }
    let regions: Vec<Vec<&Bitmap>> = maps
        .iter()
        .map(|m| m.regions.iter().map(|r| &r.selection).collect())
        .collect();
    // Row i of the upper triangle holds the distances (i, i+1..n).
    let rows: Vec<Vec<f64>> = pool.par_map_indexed(n, 1, |i| {
        ((i + 1)..n)
            .map(|j| distance_from_selections(&regions[i], &regions[j], metric))
            .collect()
    });
    triangle_to_matrix(n, rows)
}

/// Assemble per-row upper-triangle distances into a symmetric matrix.
fn triangle_to_matrix(n: usize, rows: Vec<Vec<f64>>) -> DistanceMatrix {
    let mut matrix = DistanceMatrix::zeros(n);
    for (i, row) in rows.into_iter().enumerate() {
        for (offset, d) in row.into_iter().enumerate() {
            matrix.set(i, i + 1 + offset, d);
        }
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Region;
    use atlas_columnar::Bitmap;
    use atlas_query::{ConjunctiveQuery, Predicate};

    /// Build a map over `n` rows whose region index for row `r` is
    /// `assign(r)`, with `k` regions.
    fn map_from_fn(n: usize, k: usize, assign: impl Fn(usize) -> usize, attr: &str) -> DataMap {
        let mut regions = Vec::new();
        for region_idx in 0..k {
            let rows: Vec<usize> = (0..n).filter(|&r| assign(r) == region_idx).collect();
            regions.push(Region::new(
                ConjunctiveQuery::all("t").and(Predicate::range(
                    attr,
                    region_idx as f64,
                    region_idx as f64 + 1.0,
                )),
                Bitmap::from_indices(n, rows),
            ));
        }
        DataMap::new(regions, vec![attr.to_string()])
    }

    #[test]
    fn identical_maps_have_zero_distance() {
        let a = map_from_fn(100, 2, |r| r % 2, "x");
        let b = map_from_fn(100, 2, |r| r % 2, "y");
        for metric in [
            MapDistanceMetric::VariationOfInformation,
            MapDistanceMetric::NormalizedVI,
            MapDistanceMetric::OneMinusNmi,
        ] {
            assert!(map_distance(&a, &b, 100, metric) < 1e-9, "{metric:?}");
        }
    }

    #[test]
    fn dependent_maps_are_closer_than_independent_ones() {
        // a and b are perfectly dependent (same partition relabelled);
        // c is independent of both.
        let a = map_from_fn(400, 2, |r| r % 2, "a");
        let b = map_from_fn(400, 2, |r| (r + 1) % 2, "b");
        let c = map_from_fn(400, 2, |r| usize::from((r / 2) % 2 == 0), "c");
        for metric in [
            MapDistanceMetric::VariationOfInformation,
            MapDistanceMetric::NormalizedVI,
            MapDistanceMetric::OneMinusNmi,
        ] {
            let d_ab = map_distance(&a, &b, 400, metric);
            let d_ac = map_distance(&a, &c, 400, metric);
            assert!(d_ab < d_ac, "{metric:?}: d_ab={d_ab} d_ac={d_ac}");
        }
    }

    #[test]
    fn normalized_metrics_stay_in_unit_interval() {
        let a = map_from_fn(300, 3, |r| r % 3, "a");
        let c = map_from_fn(300, 2, |r| (r * 7 + 3) % 2, "c");
        for metric in [
            MapDistanceMetric::NormalizedVI,
            MapDistanceMetric::OneMinusNmi,
        ] {
            let d = map_distance(&a, &c, 300, metric);
            assert!((0.0..=1.0).contains(&d), "{metric:?}: {d}");
        }
    }

    #[test]
    fn vi_distance_is_symmetric_and_satisfies_triangle_inequality() {
        let a = map_from_fn(240, 2, |r| r % 2, "a");
        let b = map_from_fn(240, 3, |r| r % 3, "b");
        let c = map_from_fn(240, 2, |r| usize::from(r < 120), "c");
        let metric = MapDistanceMetric::VariationOfInformation;
        let d_ab = map_distance(&a, &b, 240, metric);
        let d_ba = map_distance(&b, &a, 240, metric);
        assert!((d_ab - d_ba).abs() < 1e-12);
        let d_bc = map_distance(&b, &c, 240, metric);
        let d_ac = map_distance(&a, &c, 240, metric);
        assert!(d_ac <= d_ab + d_bc + 1e-9);
    }

    #[test]
    fn distance_matrix_is_symmetric_with_zero_diagonal() {
        let maps = vec![
            map_from_fn(120, 2, |r| r % 2, "a"),
            map_from_fn(120, 2, |r| (r / 3) % 2, "b"),
            map_from_fn(120, 3, |r| r % 3, "c"),
        ];
        let m = distance_matrix(&maps, 120, MapDistanceMetric::NormalizedVI);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        for i in 0..3 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..3 {
                assert!((m.get(i, j) - m.get(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn fused_bitmap_distance_matches_the_label_based_reference() {
        // The fused contingency kernel must reproduce the label-vector path
        // bit for bit on disjoint maps (including rows outside both maps).
        let n = 300;
        let a = map_from_fn(n, 3, |r| r % 3, "a");
        let b = map_from_fn(n, 2, |r| (r / 7) % 2, "b");
        let labels_a = a.region_labels(n);
        let labels_b = b.region_labels(n);
        for metric in [
            MapDistanceMetric::VariationOfInformation,
            MapDistanceMetric::NormalizedVI,
            MapDistanceMetric::OneMinusNmi,
        ] {
            let fused = map_distance(&a, &b, n, metric);
            let reference = distance_from_labels(&labels_a, &labels_b, 3, 2, metric);
            assert_eq!(fused.to_bits(), reference.to_bits(), "{metric:?}");
        }
    }

    #[test]
    fn parallel_distance_matrix_is_bit_identical_to_sequential() {
        let maps: Vec<DataMap> = (0..12)
            .map(|k| map_from_fn(500, 2 + k % 3, move |r| (r / (k + 1)) % (2 + k % 3), "x"))
            .collect();
        let sequential = distance_matrix(&maps, 500, MapDistanceMetric::NormalizedVI);
        let pool = minirayon::ThreadPool::new(4);
        let parallel =
            distance_matrix_with_pool(&maps, 500, MapDistanceMetric::NormalizedVI, &pool);
        assert_eq!(sequential.len(), parallel.len());
        for i in 0..maps.len() {
            for j in 0..maps.len() {
                assert_eq!(
                    sequential.get(i, j).to_bits(),
                    parallel.get(i, j).to_bits(),
                    "cell ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn mixed_length_region_bitmaps_fall_back_to_the_label_path() {
        // Map a covers a 50-row prefix (bitmaps of len 50), map b the full
        // 100-row table: the fused kernel cannot intersect those, so the
        // label-based path must kick in and reproduce the old behaviour.
        let a = map_from_fn(50, 2, |r| r % 2, "a");
        let b = map_from_fn(100, 2, |r| (r / 5) % 2, "b");
        let labels_a = a.region_labels(100);
        let labels_b = b.region_labels(100);
        let reference =
            distance_from_labels(&labels_a, &labels_b, 2, 2, MapDistanceMetric::NormalizedVI);
        let fused = map_distance(&a, &b, 100, MapDistanceMetric::NormalizedVI);
        assert_eq!(fused.to_bits(), reference.to_bits());
        // The matrix path survives mixed lengths too (no panic, same values).
        let maps = vec![a, b];
        let matrix = distance_matrix(&maps, 100, MapDistanceMetric::NormalizedVI);
        assert_eq!(matrix.get(0, 1).to_bits(), reference.to_bits());
    }

    #[test]
    fn rows_outside_both_maps_are_ignored() {
        // Only the first 50 rows are labelled; the rest is sentinel.
        let a = map_from_fn(50, 2, |r| r % 2, "a");
        let b = map_from_fn(50, 2, |r| r % 2, "b");
        // Distances over 100 table rows (50 unlabelled) equal distances over 50.
        let d_100 = map_distance(&a, &b, 100, MapDistanceMetric::NormalizedVI);
        let d_50 = map_distance(&a, &b, 50, MapDistanceMetric::NormalizedVI);
        assert!((d_100 - d_50).abs() < 1e-12);
    }
}
