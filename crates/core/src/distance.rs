//! Distances between data maps (step 2a of the framework).
//!
//! Definition 2 of the paper associates a discrete random variable to every
//! map: pick a random tuple of the working set, the variable is the region it
//! falls into. Two maps are *related* when their variables are statistically
//! dependent. The paper proposes mutual-information-based measures and singles
//! out the Variation of Information (Meilă 2007) because it is a true metric.

use crate::map::DataMap;
use atlas_stats::ContingencyTable;

/// The dependency measure used as a distance between maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MapDistanceMetric {
    /// Variation of Information, in bits. A metric; 0 for identical
    /// partitions, `H(X) + H(Y)` for independent ones. The paper's choice.
    VariationOfInformation,
    /// VI normalised by the joint entropy, in `[0, 1]`. Scale-free, so a
    /// single distance threshold works across datasets.
    #[default]
    NormalizedVI,
    /// `1 − NMI`, in `[0, 1]`. Not a metric, provided for comparison in the
    /// ablation experiments.
    OneMinusNmi,
}

/// A symmetric distance matrix over a set of candidate maps.
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    size: usize,
    values: Vec<f64>,
}

impl DistanceMatrix {
    /// Build a matrix of the given size with all distances set to zero.
    pub fn zeros(size: usize) -> Self {
        DistanceMatrix {
            size,
            values: vec![0.0; size * size],
        }
    }

    /// Number of maps the matrix ranges over.
    pub fn len(&self) -> usize {
        self.size
    }

    /// True if the matrix ranges over no maps.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// The distance between maps `i` and `j`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.values[i * self.size + j]
    }

    /// Set the distance between maps `i` and `j` (kept symmetric).
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        self.values[i * self.size + j] = value;
        self.values[j * self.size + i] = value;
    }
}

/// The distance between two maps under the chosen metric.
///
/// `table_rows` is the number of rows of the underlying table (the length of
/// the label vectors). Rows outside either map (NULLs, rows outside the
/// working set) are ignored, as they carry no information about dependency.
pub fn map_distance(a: &DataMap, b: &DataMap, table_rows: usize, metric: MapDistanceMetric) -> f64 {
    let labels_a = a.region_labels(table_rows);
    let labels_b = b.region_labels(table_rows);
    distance_from_labels(
        &labels_a,
        &labels_b,
        a.num_regions(),
        b.num_regions(),
        metric,
    )
}

/// The distance between two label vectors (used internally and by the anytime
/// engine, which compares approximate and exact maps).
pub fn distance_from_labels(
    labels_a: &[u32],
    labels_b: &[u32],
    card_a: usize,
    card_b: usize,
    metric: MapDistanceMetric,
) -> f64 {
    let table = ContingencyTable::from_labels(labels_a, labels_b, card_a, card_b);
    match metric {
        MapDistanceMetric::VariationOfInformation => table.variation_of_information(),
        MapDistanceMetric::NormalizedVI => table.normalized_vi(),
        MapDistanceMetric::OneMinusNmi => 1.0 - table.normalized_mi(),
    }
}

/// Pairwise distance matrix over a set of candidate maps.
///
/// Label vectors are materialised once per map, so the cost is
/// `O(n·rows + n²·regions²)` for `n` candidates.
pub fn distance_matrix(
    maps: &[DataMap],
    table_rows: usize,
    metric: MapDistanceMetric,
) -> DistanceMatrix {
    let labels: Vec<Vec<u32>> = maps.iter().map(|m| m.region_labels(table_rows)).collect();
    let mut matrix = DistanceMatrix::zeros(maps.len());
    for i in 0..maps.len() {
        for j in (i + 1)..maps.len() {
            let d = distance_from_labels(
                &labels[i],
                &labels[j],
                maps[i].num_regions(),
                maps[j].num_regions(),
                metric,
            );
            matrix.set(i, j, d);
        }
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Region;
    use atlas_columnar::Bitmap;
    use atlas_query::{ConjunctiveQuery, Predicate};

    /// Build a map over `n` rows whose region index for row `r` is
    /// `assign(r)`, with `k` regions.
    fn map_from_fn(n: usize, k: usize, assign: impl Fn(usize) -> usize, attr: &str) -> DataMap {
        let mut regions = Vec::new();
        for region_idx in 0..k {
            let rows: Vec<usize> = (0..n).filter(|&r| assign(r) == region_idx).collect();
            regions.push(Region::new(
                ConjunctiveQuery::all("t").and(Predicate::range(
                    attr,
                    region_idx as f64,
                    region_idx as f64 + 1.0,
                )),
                Bitmap::from_indices(n, rows),
            ));
        }
        DataMap::new(regions, vec![attr.to_string()])
    }

    #[test]
    fn identical_maps_have_zero_distance() {
        let a = map_from_fn(100, 2, |r| r % 2, "x");
        let b = map_from_fn(100, 2, |r| r % 2, "y");
        for metric in [
            MapDistanceMetric::VariationOfInformation,
            MapDistanceMetric::NormalizedVI,
            MapDistanceMetric::OneMinusNmi,
        ] {
            assert!(map_distance(&a, &b, 100, metric) < 1e-9, "{metric:?}");
        }
    }

    #[test]
    fn dependent_maps_are_closer_than_independent_ones() {
        // a and b are perfectly dependent (same partition relabelled);
        // c is independent of both.
        let a = map_from_fn(400, 2, |r| r % 2, "a");
        let b = map_from_fn(400, 2, |r| (r + 1) % 2, "b");
        let c = map_from_fn(400, 2, |r| usize::from((r / 2) % 2 == 0), "c");
        for metric in [
            MapDistanceMetric::VariationOfInformation,
            MapDistanceMetric::NormalizedVI,
            MapDistanceMetric::OneMinusNmi,
        ] {
            let d_ab = map_distance(&a, &b, 400, metric);
            let d_ac = map_distance(&a, &c, 400, metric);
            assert!(d_ab < d_ac, "{metric:?}: d_ab={d_ab} d_ac={d_ac}");
        }
    }

    #[test]
    fn normalized_metrics_stay_in_unit_interval() {
        let a = map_from_fn(300, 3, |r| r % 3, "a");
        let c = map_from_fn(300, 2, |r| (r * 7 + 3) % 2, "c");
        for metric in [
            MapDistanceMetric::NormalizedVI,
            MapDistanceMetric::OneMinusNmi,
        ] {
            let d = map_distance(&a, &c, 300, metric);
            assert!((0.0..=1.0).contains(&d), "{metric:?}: {d}");
        }
    }

    #[test]
    fn vi_distance_is_symmetric_and_satisfies_triangle_inequality() {
        let a = map_from_fn(240, 2, |r| r % 2, "a");
        let b = map_from_fn(240, 3, |r| r % 3, "b");
        let c = map_from_fn(240, 2, |r| usize::from(r < 120), "c");
        let metric = MapDistanceMetric::VariationOfInformation;
        let d_ab = map_distance(&a, &b, 240, metric);
        let d_ba = map_distance(&b, &a, 240, metric);
        assert!((d_ab - d_ba).abs() < 1e-12);
        let d_bc = map_distance(&b, &c, 240, metric);
        let d_ac = map_distance(&a, &c, 240, metric);
        assert!(d_ac <= d_ab + d_bc + 1e-9);
    }

    #[test]
    fn distance_matrix_is_symmetric_with_zero_diagonal() {
        let maps = vec![
            map_from_fn(120, 2, |r| r % 2, "a"),
            map_from_fn(120, 2, |r| (r / 3) % 2, "b"),
            map_from_fn(120, 3, |r| r % 3, "c"),
        ];
        let m = distance_matrix(&maps, 120, MapDistanceMetric::NormalizedVI);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        for i in 0..3 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..3 {
                assert!((m.get(i, j) - m.get(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rows_outside_both_maps_are_ignored() {
        // Only the first 50 rows are labelled; the rest is sentinel.
        let a = map_from_fn(50, 2, |r| r % 2, "a");
        let b = map_from_fn(50, 2, |r| r % 2, "b");
        // Distances over 100 table rows (50 unlabelled) equal distances over 50.
        let d_100 = map_distance(&a, &b, 100, MapDistanceMetric::NormalizedVI);
        let d_50 = map_distance(&a, &b, 50, MapDistanceMetric::NormalizedVI);
        assert!((d_100 - d_50).abs() < 1e-12);
    }
}
