//! The anytime / sampling variant of the engine (Section 5.1 of the paper).
//!
//! "The ideal algorithm would be an anytime variation of our framework: the
//! quality of the results would improve as computation time increases. It
//! would continually take small samples of the data and update a set of
//! approximate results. This way, the user would have instant results and the
//! system could interrupt the exploration after a timeout."
//!
//! [`AnytimeAtlas::run`] implements exactly that loop: starting from a small
//! uniform sample of the working set, it repeatedly doubles the sample,
//! re-runs the pipeline, and records each intermediate result, until either
//! the time budget is exhausted or the sample covers the whole working set.

use crate::config::AtlasConfig;
use crate::engine::{Atlas, MapResult};
use crate::error::Result;
use atlas_columnar::{Bitmap, Table};
use atlas_query::ConjunctiveQuery;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of the anytime loop.
#[derive(Debug, Clone)]
pub struct AnytimeConfig {
    /// The pipeline configuration used on every sample.
    pub atlas: AtlasConfig,
    /// Size of the first sample (rows).
    pub initial_sample: usize,
    /// Multiplicative growth factor between iterations (must be > 1).
    pub growth_factor: f64,
    /// Wall-clock budget; the loop stops before starting an iteration once
    /// the budget is exceeded.
    pub budget: Duration,
    /// RNG seed for the sampling.
    pub seed: u64,
}

impl Default for AnytimeConfig {
    fn default() -> Self {
        AnytimeConfig {
            atlas: AtlasConfig::default(),
            initial_sample: 512,
            growth_factor: 2.0,
            budget: Duration::from_millis(500),
            seed: 42,
        }
    }
}

/// One iteration of the anytime loop.
#[derive(Debug, Clone)]
pub struct AnytimeIteration {
    /// Number of sampled rows this iteration ran on.
    pub sample_size: usize,
    /// Wall-clock time elapsed since the start of the loop when this
    /// iteration finished.
    pub elapsed: Duration,
    /// The (approximate) result computed from the sample.
    pub result: MapResult,
}

/// The outcome of an anytime run.
#[derive(Debug, Clone)]
pub struct AnytimeResult {
    /// All iterations, in order of increasing sample size.
    pub iterations: Vec<AnytimeIteration>,
    /// True if the final iteration ran on the full working set (the result is
    /// then exact, not approximate).
    pub reached_full_data: bool,
    /// Size of the full working set.
    pub working_set_size: usize,
}

impl AnytimeResult {
    /// The most refined result available.
    pub fn best(&self) -> Option<&AnytimeIteration> {
        self.iterations.last()
    }
}

/// The anytime engine.
#[derive(Debug, Clone)]
pub struct AnytimeAtlas {
    table: Arc<Table>,
    config: AnytimeConfig,
}

impl AnytimeAtlas {
    /// Create an anytime engine over a shared table.
    pub fn new(table: Arc<Table>, config: AnytimeConfig) -> Result<Self> {
        config.atlas.validate()?;
        if config.growth_factor <= 1.0 {
            return Err(crate::error::AtlasError::InvalidConfig(
                "growth_factor must be greater than 1".to_string(),
            ));
        }
        if config.initial_sample == 0 {
            return Err(crate::error::AtlasError::InvalidConfig(
                "initial_sample must be at least 1".to_string(),
            ));
        }
        Ok(AnytimeAtlas { table, config })
    }

    /// The configuration.
    pub fn config(&self) -> &AnytimeConfig {
        &self.config
    }

    /// Run the anytime loop for a user query.
    pub fn run(&self, user_query: &ConjunctiveQuery) -> Result<AnytimeResult> {
        let start = Instant::now();
        let working = atlas_query::evaluate(user_query, &self.table)?;
        let working_size = working.count();
        if working_size == 0 {
            return Err(crate::error::AtlasError::EmptyWorkingSet);
        }
        let working_rows: Vec<usize> = working.to_indices();
        let atlas = Atlas::new(Arc::clone(&self.table), self.config.atlas.clone())?;
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        let mut iterations = Vec::new();
        let mut sample_size = self.config.initial_sample.min(working_size);
        let mut reached_full = false;
        loop {
            let is_full = sample_size >= working_size;
            let sample = if is_full {
                working.clone()
            } else {
                sample_rows(&working_rows, sample_size, self.table.num_rows(), &mut rng)
            };
            let result = atlas.explore_selection(user_query, sample)?;
            iterations.push(AnytimeIteration {
                sample_size: sample_size.min(working_size),
                elapsed: start.elapsed(),
                result,
            });
            if is_full {
                reached_full = true;
                break;
            }
            if start.elapsed() >= self.config.budget {
                break;
            }
            let next = (sample_size as f64 * self.config.growth_factor).ceil() as usize;
            sample_size = next.min(working_size);
        }
        Ok(AnytimeResult {
            iterations,
            reached_full_data: reached_full,
            working_set_size: working_size,
        })
    }
}

/// Draw a uniform sample (without replacement) of `k` of the given row ids,
/// returned as a bitmap over `table_rows`.
fn sample_rows(rows: &[usize], k: usize, table_rows: usize, rng: &mut StdRng) -> Bitmap {
    let k = k.min(rows.len());
    // Partial Fisher–Yates over a copy of the indices.
    let mut pool: Vec<usize> = rows.to_vec();
    for i in 0..k {
        let j = rng.gen_range(i..pool.len());
        pool.swap(i, j);
    }
    Bitmap::from_indices(table_rows, pool[..k].iter().copied())
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_columnar::{DataType, Field, Schema, TableBuilder, Value};

    fn table(rows: usize) -> Arc<Table> {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Float),
            Field::new("group", DataType::Str),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema);
        for i in 0..rows {
            let group = if i % 2 == 0 { "a" } else { "b" };
            let x = if group == "a" {
                (i % 10) as f64
            } else {
                100.0 + (i % 10) as f64
            };
            b.push_row(&[Value::Float(x), Value::Str(group.into())])
                .unwrap();
        }
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn iterations_grow_until_full_data_or_budget() {
        let t = table(4000);
        let config = AnytimeConfig {
            initial_sample: 100,
            growth_factor: 4.0,
            budget: Duration::from_secs(30),
            ..AnytimeConfig::default()
        };
        let anytime = AnytimeAtlas::new(Arc::clone(&t), config).unwrap();
        let result = anytime.run(&ConjunctiveQuery::all("t")).unwrap();
        assert!(result.reached_full_data);
        assert_eq!(result.working_set_size, 4000);
        assert!(result.iterations.len() >= 3);
        // Sample sizes strictly increase up to the working-set size.
        for pair in result.iterations.windows(2) {
            assert!(pair[1].sample_size > pair[0].sample_size);
        }
        assert_eq!(result.best().unwrap().sample_size, 4000);
        // Each intermediate result is a usable map set.
        for iteration in &result.iterations {
            assert!(iteration.result.num_maps() >= 1);
            assert_eq!(iteration.result.working_set_size, iteration.sample_size);
        }
    }

    #[test]
    fn zero_budget_still_produces_one_iteration() {
        let t = table(2000);
        let config = AnytimeConfig {
            initial_sample: 64,
            budget: Duration::from_millis(0),
            ..AnytimeConfig::default()
        };
        let anytime = AnytimeAtlas::new(Arc::clone(&t), config).unwrap();
        let result = anytime.run(&ConjunctiveQuery::all("t")).unwrap();
        assert_eq!(result.iterations.len(), 1);
        assert!(!result.reached_full_data);
        assert_eq!(result.iterations[0].sample_size, 64);
    }

    #[test]
    fn small_working_set_is_used_in_full_immediately() {
        let t = table(50);
        let config = AnytimeConfig {
            initial_sample: 512,
            ..AnytimeConfig::default()
        };
        let anytime = AnytimeAtlas::new(Arc::clone(&t), config).unwrap();
        let result = anytime.run(&ConjunctiveQuery::all("t")).unwrap();
        assert_eq!(result.iterations.len(), 1);
        assert!(result.reached_full_data);
        assert_eq!(result.iterations[0].sample_size, 50);
    }

    #[test]
    fn approximate_maps_converge_to_the_exact_ones() {
        let t = table(6000);
        let config = AnytimeConfig {
            initial_sample: 200,
            growth_factor: 3.0,
            budget: Duration::from_secs(30),
            ..AnytimeConfig::default()
        };
        let anytime = AnytimeAtlas::new(Arc::clone(&t), config).unwrap();
        let result = anytime.run(&ConjunctiveQuery::all("t")).unwrap();
        assert!(result.reached_full_data);
        let exact = &result.iterations.last().unwrap().result;
        let first = &result.iterations.first().unwrap().result;
        // Both should find the same top grouping attributes; the approximate
        // covers should be close to the exact ones (within sampling noise).
        let exact_best = exact.best().unwrap();
        let approx_best = first.best().unwrap();
        assert_eq!(
            {
                let mut a = approx_best.map.source_attributes.clone();
                a.sort();
                a
            },
            {
                let mut e = exact_best.map.source_attributes.clone();
                e.sort();
                e
            }
        );
        // A 200-row sample cannot promise the exact region structure: the
        // clustering may split one region that the full data merges (or vice
        // versa), so allow the counts to differ by one and only compare the
        // per-region covers when the structures agree.
        let exact_covers = exact_best.map.covers(exact.working_set_size);
        let approx_covers = approx_best.map.covers(first.working_set_size);
        let count_gap = exact_covers.len().abs_diff(approx_covers.len());
        assert!(
            count_gap <= 1,
            "approx has {} regions, exact has {}",
            approx_covers.len(),
            exact_covers.len()
        );
        if count_gap == 0 {
            for (a, e) in approx_covers.iter().zip(exact_covers.iter()) {
                assert!((a - e).abs() < 0.15, "approx {a} vs exact {e}");
            }
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let t = table(10);
        let bad_growth = AnytimeConfig {
            growth_factor: 1.0,
            ..AnytimeConfig::default()
        };
        assert!(AnytimeAtlas::new(Arc::clone(&t), bad_growth).is_err());
        let bad_sample = AnytimeConfig {
            initial_sample: 0,
            ..AnytimeConfig::default()
        };
        assert!(AnytimeAtlas::new(t, bad_sample).is_err());
    }

    #[test]
    fn empty_working_set_is_an_error() {
        let t = table(100);
        let anytime = AnytimeAtlas::new(Arc::clone(&t), AnytimeConfig::default()).unwrap();
        let query =
            ConjunctiveQuery::all("t").and(atlas_query::Predicate::range("x", 5000.0, 6000.0));
        assert!(matches!(
            anytime.run(&query),
            Err(crate::error::AtlasError::EmptyWorkingSet)
        ));
    }
}
