//! The anytime / sampling variant of the engine (Section 5.1 of the paper).
//!
//! "The ideal algorithm would be an anytime variation of our framework: the
//! quality of the results would improve as computation time increases. It
//! would continually take small samples of the data and update a set of
//! approximate results. This way, the user would have instant results and the
//! system could interrupt the exploration after a timeout."
//!
//! Since the prepared-engine redesign, the anytime loop **is** the engine:
//! [`crate::engine::Atlas::explore_iter`] streams improving
//! [`AnytimeIteration`]s under the time budget of
//! [`ExploreOptions`], and
//! [`crate::engine::Atlas::explore_anytime`] collects them. [`AnytimeAtlas`]
//! remains as a thin convenience wrapper that pairs one prepared engine with
//! one set of options; it no longer implements a pipeline of its own.

use crate::config::{AtlasConfig, ExploreOptions};
use crate::engine::Atlas;
pub use crate::engine::{AnytimeIteration, AnytimeResult};
use crate::error::Result;
use atlas_columnar::Table;
use atlas_query::ConjunctiveQuery;
use std::sync::Arc;
use std::time::Duration;

/// Configuration of the anytime loop: a pipeline configuration plus the
/// sampling options. Convertible to [`ExploreOptions`] via
/// [`AnytimeConfig::options`].
#[derive(Debug, Clone)]
pub struct AnytimeConfig {
    /// The pipeline configuration used on every sample.
    pub atlas: AtlasConfig,
    /// Size of the first sample (rows).
    pub initial_sample: usize,
    /// Multiplicative growth factor between iterations (must be > 1).
    pub growth_factor: f64,
    /// Wall-clock budget; the loop stops before starting an iteration once
    /// the budget is exceeded.
    pub budget: Duration,
    /// RNG seed for the sampling.
    pub seed: u64,
}

impl Default for AnytimeConfig {
    fn default() -> Self {
        AnytimeConfig {
            atlas: AtlasConfig::default(),
            initial_sample: 512,
            growth_factor: 2.0,
            budget: Duration::from_millis(500),
            seed: 42,
        }
    }
}

impl AnytimeConfig {
    /// The sampling side of this configuration as engine-level options.
    pub fn options(&self) -> ExploreOptions {
        ExploreOptions {
            budget: Some(self.budget),
            initial_sample: self.initial_sample,
            growth_factor: self.growth_factor,
            seed: self.seed,
        }
    }
}

/// A prepared engine paired with anytime options.
///
/// Kept for convenience and backwards compatibility; `run` simply delegates
/// to [`Atlas::explore_anytime`] on the unified engine, so the table profile
/// is computed once at construction and shared across runs.
#[derive(Debug, Clone)]
pub struct AnytimeAtlas {
    engine: Atlas,
    config: AnytimeConfig,
}

impl AnytimeAtlas {
    /// Create an anytime engine over a shared table.
    pub fn new(table: Arc<Table>, config: AnytimeConfig) -> Result<Self> {
        config.options().validate()?;
        let engine = Atlas::new(table, config.atlas.clone())?;
        Ok(AnytimeAtlas { engine, config })
    }

    /// The configuration.
    pub fn config(&self) -> &AnytimeConfig {
        &self.config
    }

    /// The underlying prepared engine.
    pub fn engine(&self) -> &Atlas {
        &self.engine
    }

    /// Run the anytime loop for a user query.
    pub fn run(&self, user_query: &ConjunctiveQuery) -> Result<AnytimeResult> {
        self.engine
            .explore_anytime(user_query, self.config.options())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_columnar::{DataType, Field, Schema, TableBuilder, Value};

    fn table(rows: usize) -> Arc<Table> {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Float),
            Field::new("group", DataType::Str),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema);
        for i in 0..rows {
            let group = if i % 2 == 0 { "a" } else { "b" };
            let x = if group == "a" {
                (i % 10) as f64
            } else {
                100.0 + (i % 10) as f64
            };
            b.push_row(&[Value::Float(x), Value::Str(group.into())])
                .unwrap();
        }
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn iterations_grow_until_full_data_or_budget() {
        let t = table(4000);
        let config = AnytimeConfig {
            initial_sample: 100,
            growth_factor: 4.0,
            budget: Duration::from_secs(30),
            ..AnytimeConfig::default()
        };
        let anytime = AnytimeAtlas::new(Arc::clone(&t), config).unwrap();
        let result = anytime.run(&ConjunctiveQuery::all("t")).unwrap();
        assert!(result.reached_full_data);
        assert_eq!(result.working_set_size, 4000);
        assert!(result.iterations.len() >= 3);
        // Sample sizes strictly increase up to the working-set size.
        for pair in result.iterations.windows(2) {
            assert!(pair[1].sample_size > pair[0].sample_size);
        }
        assert_eq!(result.best().unwrap().sample_size, 4000);
        // Each intermediate result is a usable map set.
        for iteration in &result.iterations {
            assert!(iteration.result.num_maps() >= 1);
            assert_eq!(iteration.result.working_set_size, iteration.sample_size);
        }
    }

    #[test]
    fn zero_budget_still_produces_one_iteration() {
        let t = table(2000);
        let config = AnytimeConfig {
            initial_sample: 64,
            budget: Duration::from_millis(0),
            ..AnytimeConfig::default()
        };
        let anytime = AnytimeAtlas::new(Arc::clone(&t), config).unwrap();
        let result = anytime.run(&ConjunctiveQuery::all("t")).unwrap();
        assert_eq!(result.iterations.len(), 1);
        assert!(!result.reached_full_data);
        assert_eq!(result.iterations[0].sample_size, 64);
    }

    #[test]
    fn small_working_set_is_used_in_full_immediately() {
        let t = table(50);
        let config = AnytimeConfig {
            initial_sample: 512,
            ..AnytimeConfig::default()
        };
        let anytime = AnytimeAtlas::new(Arc::clone(&t), config).unwrap();
        let result = anytime.run(&ConjunctiveQuery::all("t")).unwrap();
        assert_eq!(result.iterations.len(), 1);
        assert!(result.reached_full_data);
        assert_eq!(result.iterations[0].sample_size, 50);
    }

    #[test]
    fn approximate_maps_converge_to_the_exact_ones() {
        let t = table(6000);
        let config = AnytimeConfig {
            initial_sample: 200,
            growth_factor: 3.0,
            budget: Duration::from_secs(30),
            ..AnytimeConfig::default()
        };
        let anytime = AnytimeAtlas::new(Arc::clone(&t), config).unwrap();
        let result = anytime.run(&ConjunctiveQuery::all("t")).unwrap();
        assert!(result.reached_full_data);
        let exact = &result.iterations.last().unwrap().result;
        let first = &result.iterations.first().unwrap().result;
        // Both should find the same top grouping attributes; the approximate
        // covers should be close to the exact ones (within sampling noise).
        let exact_best = exact.best().unwrap();
        let approx_best = first.best().unwrap();
        assert_eq!(
            {
                let mut a = approx_best.map.source_attributes.clone();
                a.sort();
                a
            },
            {
                let mut e = exact_best.map.source_attributes.clone();
                e.sort();
                e
            }
        );
        // A 200-row sample cannot promise the exact region structure: the
        // clustering may split one region that the full data merges (or vice
        // versa), so allow the counts to differ by one and only compare the
        // per-region covers when the structures agree.
        let exact_covers = exact_best.map.covers(exact.working_set_size);
        let approx_covers = approx_best.map.covers(first.working_set_size);
        let count_gap = exact_covers.len().abs_diff(approx_covers.len());
        assert!(
            count_gap <= 1,
            "approx has {} regions, exact has {}",
            approx_covers.len(),
            exact_covers.len()
        );
        if count_gap == 0 {
            for (a, e) in approx_covers.iter().zip(exact_covers.iter()) {
                assert!((a - e).abs() < 0.15, "approx {a} vs exact {e}");
            }
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let t = table(10);
        let bad_growth = AnytimeConfig {
            growth_factor: 1.0,
            ..AnytimeConfig::default()
        };
        assert!(AnytimeAtlas::new(Arc::clone(&t), bad_growth).is_err());
        let bad_sample = AnytimeConfig {
            initial_sample: 0,
            ..AnytimeConfig::default()
        };
        assert!(AnytimeAtlas::new(t, bad_sample).is_err());
    }

    #[test]
    fn empty_working_set_is_an_error() {
        let t = table(100);
        let anytime = AnytimeAtlas::new(Arc::clone(&t), AnytimeConfig::default()).unwrap();
        let query =
            ConjunctiveQuery::all("t").and(atlas_query::Predicate::range("x", 5000.0, 6000.0));
        assert!(matches!(
            anytime.run(&query),
            Err(crate::error::AtlasError::EmptyWorkingSet)
        ));
    }

    #[test]
    fn anytime_run_equals_the_engine_explore_anytime() {
        let t = table(3000);
        let config = AnytimeConfig {
            initial_sample: 128,
            growth_factor: 4.0,
            budget: Duration::from_secs(30),
            ..AnytimeConfig::default()
        };
        let anytime = AnytimeAtlas::new(Arc::clone(&t), config.clone()).unwrap();
        let via_wrapper = anytime.run(&ConjunctiveQuery::all("t")).unwrap();
        let via_engine = anytime
            .engine()
            .explore_anytime(&ConjunctiveQuery::all("t"), config.options())
            .unwrap();
        assert_eq!(
            via_wrapper.iterations.len(),
            via_engine.iterations.len(),
            "the wrapper is a pure delegation"
        );
        for (a, b) in via_wrapper
            .iterations
            .iter()
            .zip(via_engine.iterations.iter())
        {
            assert_eq!(a.sample_size, b.sample_size);
            assert_eq!(a.result.num_maps(), b.result.num_maps());
        }
    }
}
