//! Data maps: small sets of queries that partition the working set.

use crate::region::Region;
use atlas_columnar::Bitmap;
use atlas_stats::entropy_of_selections;
use std::fmt;

/// Sentinel label for rows that belong to no region of a map (rows outside
/// the working set, or rows whose cut attribute is NULL).
pub const NO_REGION: u32 = u32::MAX;

/// A data map: a set of regions, each described by a conjunctive query.
///
/// Definition (paper, Section 3): `M = {Q_0, …, Q_M}`. The regions of a map
/// produced by `CUT` and by the merge operators are pairwise disjoint and
/// (up to NULL values in the cut attributes) cover the working set.
#[derive(Debug, Clone)]
pub struct DataMap {
    /// The regions of the map.
    pub regions: Vec<Region>,
    /// The attributes whose cuts produced this map (one for a candidate map,
    /// several after merging). Used for reporting and to bound query
    /// complexity.
    pub source_attributes: Vec<String>,
}

impl DataMap {
    /// Create a map from regions and the attributes that produced it.
    pub fn new(regions: Vec<Region>, source_attributes: Vec<String>) -> Self {
        DataMap {
            regions,
            source_attributes,
        }
    }

    /// Number of regions (the paper's readability constraint caps this at ~8).
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// Total number of tuples covered by the map's regions.
    pub fn covered_count(&self) -> usize {
        self.regions.iter().map(Region::count).sum()
    }

    /// The per-region covers relative to a reference population size.
    pub fn covers(&self, reference_size: usize) -> Vec<f64> {
        self.regions
            .iter()
            .map(|r| r.cover(reference_size))
            .collect()
    }

    /// The per-region tuple counts.
    pub fn region_counts(&self) -> Vec<u64> {
        self.regions.iter().map(|r| r.count() as u64).collect()
    }

    /// Entropy (bits) of the map's cover distribution — the ranking score of
    /// Section 3.4. Maps with many balanced regions score high; maps that
    /// isolate a tiny outlier region score low. Computed straight from the
    /// region bitmaps (word-level popcounts, no per-row materialisation).
    pub fn entropy(&self) -> f64 {
        entropy_of_selections(self.regions.iter().map(|r| &r.selection))
    }

    /// The maximum number of predicates over the map's region queries.
    pub fn max_predicates(&self) -> usize {
        self.regions
            .iter()
            .map(Region::num_predicates)
            .max()
            .unwrap_or(0)
    }

    /// The label vector of the map's *underlying variable* (Definition 2 of
    /// the paper): for every row of the table, the index of the region that
    /// contains it, or [`NO_REGION`] if none does.
    ///
    /// `table_rows` is the total number of rows of the table the regions'
    /// bitmaps range over.
    pub fn region_labels(&self, table_rows: usize) -> Vec<u32> {
        let mut labels = vec![NO_REGION; table_rows];
        for (idx, region) in self.regions.iter().enumerate() {
            for row in region.selection.iter_ones() {
                if row < table_rows {
                    labels[row] = idx as u32;
                }
            }
        }
        labels
    }

    /// True if the regions are pairwise disjoint.
    pub fn regions_are_disjoint(&self) -> bool {
        for i in 0..self.regions.len() {
            for j in (i + 1)..self.regions.len() {
                if !self.regions[i]
                    .selection
                    .is_disjoint(&self.regions[j].selection)
                {
                    return false;
                }
            }
        }
        true
    }

    /// True if the regions exactly partition `working` (disjoint and their
    /// union equals the working set). NULL values in cut attributes make maps
    /// cover slightly less than the full working set, so callers usually check
    /// [`DataMap::regions_are_disjoint`] plus a coverage lower bound instead.
    pub fn is_partition_of(&self, working: &Bitmap) -> bool {
        if !self.regions_are_disjoint() {
            return false;
        }
        let mut union = Bitmap::new_empty(working.len());
        for region in &self.regions {
            union.union_with(&region.selection);
        }
        union == *working
    }

    /// Drop regions that cover no tuples.
    pub fn drop_empty_regions(&mut self) {
        self.regions.retain(|r| !r.is_empty());
    }
}

impl fmt::Display for DataMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "map on [{}], {} regions:",
            self.source_attributes.join(", "),
            self.num_regions()
        )?;
        for (i, region) in self.regions.iter().enumerate() {
            writeln!(f, "  #{i}: {region}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_query::{ConjunctiveQuery, Predicate};

    fn region(table_rows: usize, rows: &[usize], attr: &str) -> Region {
        Region::new(
            ConjunctiveQuery::all("t").and(Predicate::range(attr, 0.0, 1.0)),
            Bitmap::from_indices(table_rows, rows.iter().copied()),
        )
    }

    #[test]
    fn counts_covers_and_entropy() {
        let map = DataMap::new(
            vec![region(8, &[0, 1, 2, 3], "a"), region(8, &[4, 5, 6, 7], "a")],
            vec!["a".to_string()],
        );
        assert_eq!(map.num_regions(), 2);
        assert_eq!(map.covered_count(), 8);
        assert_eq!(map.covers(8), vec![0.5, 0.5]);
        assert!((map.entropy() - 1.0).abs() < 1e-12);
        assert_eq!(map.max_predicates(), 1);
    }

    #[test]
    fn entropy_prefers_balanced_maps() {
        let balanced = DataMap::new(
            vec![region(8, &[0, 1, 2, 3], "a"), region(8, &[4, 5, 6, 7], "a")],
            vec!["a".to_string()],
        );
        let skewed = DataMap::new(
            vec![region(8, &[0], "a"), region(8, &[1, 2, 3, 4, 5, 6, 7], "a")],
            vec!["a".to_string()],
        );
        let four_way = DataMap::new(
            vec![
                region(8, &[0, 1], "a"),
                region(8, &[2, 3], "a"),
                region(8, &[4, 5], "a"),
                region(8, &[6, 7], "a"),
            ],
            vec!["a".to_string()],
        );
        assert!(balanced.entropy() > skewed.entropy());
        assert!(four_way.entropy() > balanced.entropy());
    }

    #[test]
    fn labels_and_partition_checks() {
        let working = Bitmap::from_indices(6, [0, 1, 2, 3, 4, 5]);
        let map = DataMap::new(
            vec![region(6, &[0, 1, 2], "a"), region(6, &[3, 4, 5], "a")],
            vec!["a".to_string()],
        );
        assert_eq!(map.region_labels(6), vec![0, 0, 0, 1, 1, 1]);
        assert!(map.regions_are_disjoint());
        assert!(map.is_partition_of(&working));

        let overlapping = DataMap::new(
            vec![region(6, &[0, 1, 2], "a"), region(6, &[2, 3], "a")],
            vec!["a".to_string()],
        );
        assert!(!overlapping.regions_are_disjoint());
        assert!(!overlapping.is_partition_of(&working));

        let partial = DataMap::new(vec![region(6, &[0, 1], "a")], vec!["a".to_string()]);
        assert!(partial.regions_are_disjoint());
        assert!(!partial.is_partition_of(&working));
        assert_eq!(
            partial.region_labels(6),
            vec![0, 0, NO_REGION, NO_REGION, NO_REGION, NO_REGION]
        );
    }

    #[test]
    fn drop_empty_regions_removes_only_empty_ones() {
        let mut map = DataMap::new(
            vec![
                region(4, &[0, 1], "a"),
                region(4, &[], "a"),
                region(4, &[2], "a"),
            ],
            vec!["a".to_string()],
        );
        map.drop_empty_regions();
        assert_eq!(map.num_regions(), 2);
    }

    #[test]
    fn display_mentions_attributes_and_regions() {
        let map = DataMap::new(vec![region(4, &[0, 1], "age")], vec!["age".to_string()]);
        let text = map.to_string();
        assert!(text.contains("age"));
        assert!(text.contains("1 regions"));
    }
}
