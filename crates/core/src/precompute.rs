//! Anticipative computation (Section 5.1, "Anticipative computations").
//!
//! "The idea of this approach is to perform calculations offline, by
//! anticipating what the user will ask. There are two periods during which
//! this is possible: before the first query, and during the idle time between
//! each query."
//!
//! [`CachedAtlas`] implements both periods:
//!
//! * **before the first query** — [`CachedAtlas::warm_up`] pre-computes and
//!   caches the map result of the whole-table query, so the very first
//!   interaction is served from memory;
//! * **between queries** — [`CachedAtlas::prefetch`] takes the result the user
//!   is currently looking at and pre-computes the exploration of every region
//!   query (the only queries the GUI lets the user submit next), so whichever
//!   region the user drills into is already answered.
//!
//! The cache is a bounded LRU keyed by the canonical SQL text of the
//! query — predicates are sorted by attribute before printing, so two
//! conjunctions that differ only in predicate order share one cache entry —
//! and a hit refreshes the entry's recency, so the queries a user keeps
//! coming back to survive eviction. The scheme stays deliberately
//! unsophisticated otherwise, as the paper leaves "deciding what to compute"
//! open; keying and the eviction policy are the two obvious extension points.
//!
//! The raw [`CachedAtlas::lookup`] / [`CachedAtlas::insert_result`] pair
//! exists for front-ends (such as `atlas-serve`) that hold the cache behind a
//! lock and must not keep it locked while the engine computes a miss.

use crate::config::AtlasConfig;
use crate::engine::{Atlas, MapResult};
use crate::error::Result;
use atlas_columnar::Table;
use atlas_query::{to_sql, ConjunctiveQuery};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Statistics of the cache behaviour (useful in tests and benchmarks).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: usize,
    /// Queries that had to be computed on demand.
    pub misses: usize,
    /// Results inserted by prefetching or warm-up.
    pub prefetched: usize,
    /// Entries evicted because the cache was full.
    pub evicted: usize,
}

/// An [`Atlas`] engine wrapped with an anticipative result cache.
#[derive(Debug, Clone)]
pub struct CachedAtlas {
    engine: Atlas,
    capacity: usize,
    cache: HashMap<String, MapResult>,
    insertion_order: VecDeque<String>,
    stats: CacheStats,
}

impl CachedAtlas {
    /// Wrap an engine with a cache holding at most `capacity` results.
    pub fn new(table: Arc<Table>, config: AtlasConfig, capacity: usize) -> Result<Self> {
        Ok(CachedAtlas::from_engine(
            Atlas::new(table, config)?,
            capacity,
        ))
    }

    /// Wrap an already prepared engine (built via
    /// [`crate::engine::AtlasBuilder`], possibly with custom stages) with a
    /// cache holding at most `capacity` results.
    pub fn from_engine(engine: Atlas, capacity: usize) -> Self {
        CachedAtlas {
            engine,
            capacity: capacity.max(1),
            cache: HashMap::new(),
            insertion_order: VecDeque::new(),
            stats: CacheStats::default(),
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &Atlas {
        &self.engine
    }

    /// Cache behaviour so far: hit, miss, prefetch and eviction counters
    /// (consumed by tests, benchmarks, and the `atlas-serve` `/metrics`
    /// endpoint).
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The configured capacity (number of results the cache can hold).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// The cache key of a query: its SQL text with the predicates sorted by
    /// attribute (ties broken by the rendered set, for queries constructed
    /// with duplicate same-attribute predicates), so conjunctions that differ
    /// only in predicate order (the conjunction is commutative) key
    /// identically instead of causing spurious misses. Value sets need no
    /// extra handling: they are `BTreeSet`s, already canonically ordered.
    fn key(query: &ConjunctiveQuery) -> String {
        let mut canonical = query.clone();
        canonical.predicates.sort_by(|a, b| {
            a.attribute
                .cmp(&b.attribute)
                .then_with(|| a.set.to_string().cmp(&b.set.to_string()))
        });
        to_sql(&canonical)
    }

    /// Move `key` to the most-recently-used end of the order queue.
    fn touch(&mut self, key: &str) {
        if let Some(pos) = self.insertion_order.iter().position(|k| k == key) {
            let key = self
                .insertion_order
                .remove(pos)
                .expect("position was just found");
            self.insertion_order.push_back(key);
        }
    }

    fn insert(&mut self, key: String, result: MapResult) {
        if let Some(slot) = self.cache.get_mut(&key) {
            *slot = result;
            self.touch(&key);
            return;
        }
        if self.cache.len() >= self.capacity {
            if let Some(oldest) = self.insertion_order.pop_front() {
                self.cache.remove(&oldest);
                self.stats.evicted += 1;
            }
        }
        self.insertion_order.push_back(key.clone());
        self.cache.insert(key, result);
    }

    /// Pre-compute the whole-table exploration ("before the first query").
    pub fn warm_up(&mut self) -> Result<()> {
        let query = ConjunctiveQuery::all(self.engine.table().name());
        let key = Self::key(&query);
        if !self.cache.contains_key(&key) {
            let result = self.engine.explore(&query)?;
            self.insert(key, result);
            self.stats.prefetched += 1;
        }
        Ok(())
    }

    /// The raw cache probe: a hit returns the cached result (and refreshes
    /// its recency), a miss returns `None`. Both update the counters. Callers
    /// that hold the cache behind a lock use this to release the lock while
    /// the engine computes, then store the outcome with
    /// [`CachedAtlas::insert_result`].
    pub fn lookup(&mut self, query: &ConjunctiveQuery) -> Option<MapResult> {
        self.lookup_key(&Self::key(query))
    }

    fn lookup_key(&mut self, key: &str) -> Option<MapResult> {
        if let Some(result) = self.cache.get(key) {
            let result = result.clone();
            self.stats.hits += 1;
            self.touch(key);
            return Some(result);
        }
        self.stats.misses += 1;
        None
    }

    /// Store an externally computed result for `query` (the write half of
    /// [`CachedAtlas::lookup`]). The result must come from an engine
    /// answering over the same table snapshot as [`CachedAtlas::engine`],
    /// otherwise later hits would disagree with fresh explorations.
    pub fn insert_result(&mut self, query: &ConjunctiveQuery, result: MapResult) {
        self.insert(Self::key(query), result);
    }

    /// Answer a query, from the cache when possible.
    pub fn explore(&mut self, query: &ConjunctiveQuery) -> Result<MapResult> {
        let key = Self::key(query);
        if let Some(result) = self.lookup_key(&key) {
            return Ok(result);
        }
        let result = self.engine.explore(query)?;
        self.insert(key, result.clone());
        Ok(result)
    }

    /// Idle-time prefetch: pre-compute the exploration of every region query
    /// of the given result (at most `limit` of them, largest regions first).
    ///
    /// Regions whose exploration fails (for example a region too small to cut)
    /// are skipped silently — prefetching is best-effort by design.
    pub fn prefetch(&mut self, result: &MapResult, limit: usize) -> usize {
        let mut regions: Vec<&crate::region::Region> = result
            .maps
            .iter()
            .flat_map(|m| m.map.regions.iter())
            .collect();
        regions.sort_by_key(|r| std::cmp::Reverse(r.count()));
        let mut computed = 0usize;
        for region in regions.into_iter().take(limit) {
            let key = Self::key(&region.query);
            if self.cache.contains_key(&key) {
                continue;
            }
            if let Ok(region_result) = self.engine.explore(&region.query) {
                self.insert(key, region_result);
                self.stats.prefetched += 1;
                computed += 1;
            }
        }
        computed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_columnar::{DataType, Field, Schema, TableBuilder, Value};

    fn table(rows: usize) -> Arc<Table> {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Float),
            Field::new("group", DataType::Str),
            Field::new("y", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema);
        for i in 0..rows {
            let group = ["a", "b", "c"][i % 3];
            let x = (i % 100) as f64 + if group == "a" { 0.0 } else { 200.0 };
            b.push_row(&[
                Value::Float(x),
                Value::Str(group.into()),
                Value::Float((i % 17) as f64),
            ])
            .unwrap();
        }
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn warm_up_makes_the_first_query_a_hit() {
        let mut cached = CachedAtlas::new(table(3_000), AtlasConfig::default(), 8).unwrap();
        assert!(cached.is_empty());
        cached.warm_up().unwrap();
        assert_eq!(cached.len(), 1);
        let result = cached.explore(&ConjunctiveQuery::all("t")).unwrap();
        assert!(result.num_maps() >= 1);
        assert_eq!(cached.stats().hits, 1);
        assert_eq!(cached.stats().misses, 0);
        // Warming up twice does not recompute.
        cached.warm_up().unwrap();
        assert_eq!(cached.stats().prefetched, 1);
    }

    #[test]
    fn cached_results_equal_fresh_results() {
        let t = table(2_000);
        let mut cached = CachedAtlas::new(Arc::clone(&t), AtlasConfig::default(), 8).unwrap();
        let query = ConjunctiveQuery::all("t");
        let first = cached.explore(&query).unwrap();
        let second = cached.explore(&query).unwrap();
        assert_eq!(cached.stats().misses, 1);
        assert_eq!(cached.stats().hits, 1);
        assert_eq!(first.num_maps(), second.num_maps());
        assert_eq!(first.working_set_size, second.working_set_size);
        let fresh = Atlas::new(t, AtlasConfig::default())
            .unwrap()
            .explore(&query)
            .unwrap();
        assert_eq!(fresh.num_maps(), first.num_maps());
    }

    #[test]
    fn prefetch_turns_drill_downs_into_hits() {
        let mut cached = CachedAtlas::new(table(4_000), AtlasConfig::default(), 16).unwrap();
        let result = cached.explore(&ConjunctiveQuery::all("t")).unwrap();
        let computed = cached.prefetch(&result, 4);
        assert!(computed >= 1);
        assert_eq!(cached.stats().prefetched, computed);
        // Drilling into the largest region of the best map is now a hit.
        let best = result.best().unwrap();
        let largest = best.map.regions.iter().max_by_key(|r| r.count()).unwrap();
        let hits_before = cached.stats().hits;
        let drill = cached.explore(&largest.query).unwrap();
        assert!(drill.working_set_size < result.working_set_size);
        assert_eq!(cached.stats().hits, hits_before + 1);
    }

    #[test]
    fn capacity_is_enforced_with_least_recently_used_eviction() {
        let mut cached = CachedAtlas::new(table(2_000), AtlasConfig::default(), 2).unwrap();
        let q1 = ConjunctiveQuery::all("t");
        let q2 = q1
            .clone()
            .and(atlas_query::Predicate::values("group", ["a"]));
        let q3 = q1
            .clone()
            .and(atlas_query::Predicate::values("group", ["b"]));
        assert_eq!(cached.capacity(), 2);
        cached.explore(&q1).unwrap();
        cached.explore(&q2).unwrap();
        cached.explore(&q3).unwrap();
        assert_eq!(cached.len(), 2);
        assert_eq!(cached.stats().evicted, 1);
        // q1 was the least recently used entry, so it is a miss again.
        let misses_before = cached.stats().misses;
        cached.explore(&q1).unwrap();
        assert_eq!(cached.stats().misses, misses_before + 1);
    }

    #[test]
    fn eviction_order_is_lru_not_fifo() {
        // Regression test for the eviction policy the server's shared result
        // cache relies on: capacity 2, three distinct queries, but the oldest
        // *inserted* entry is touched before the third insert — so the LRU
        // victim must be the second entry, not the first.
        let mut cached = CachedAtlas::new(table(2_000), AtlasConfig::default(), 2).unwrap();
        let q1 = ConjunctiveQuery::all("t");
        let q2 = q1
            .clone()
            .and(atlas_query::Predicate::values("group", ["a"]));
        let q3 = q1
            .clone()
            .and(atlas_query::Predicate::values("group", ["b"]));
        cached.explore(&q1).unwrap(); // miss, cache = [q1]
        cached.explore(&q2).unwrap(); // miss, cache = [q1, q2]
        cached.explore(&q1).unwrap(); // hit: q1 becomes most recently used
        cached.explore(&q3).unwrap(); // miss: evicts q2 (the LRU), not q1
        assert_eq!(cached.len(), 2);
        assert_eq!(cached.stats().evicted, 1);

        // q1 must still be cached (a FIFO would have evicted it) …
        let hits_before = cached.stats().hits;
        cached.explore(&q1).unwrap();
        assert_eq!(cached.stats().hits, hits_before + 1, "q1 survived");
        // … and q2 must be gone.
        let misses_before = cached.stats().misses;
        cached.explore(&q2).unwrap();
        assert_eq!(
            cached.stats().misses,
            misses_before + 1,
            "q2 was the victim"
        );
    }

    #[test]
    fn lookup_and_insert_result_split_the_explore_path() {
        // The server-side protocol: probe under a lock, compute outside it,
        // store the outcome. Counters must behave exactly like `explore`.
        let t = table(1_500);
        let engine = Atlas::builder(Arc::clone(&t)).build().unwrap();
        let mut cached = CachedAtlas::from_engine(engine.clone(), 4);
        let query = ConjunctiveQuery::all("t");
        assert!(cached.lookup(&query).is_none());
        assert_eq!(cached.stats().misses, 1);
        let result = engine.explore(&query).unwrap();
        cached.insert_result(&query, result.clone());
        let hit = cached.lookup(&query).expect("inserted result is found");
        assert_eq!(hit.working_set_size, result.working_set_size);
        assert_eq!(hit.num_maps(), result.num_maps());
        assert_eq!(
            cached.stats(),
            &CacheStats {
                hits: 1,
                misses: 1,
                ..CacheStats::default()
            }
        );
    }

    #[test]
    fn reordered_predicates_share_one_cache_entry() {
        // Regression test: `a AND b` and `b AND a` are the same conjunction
        // and must key to the same cache slot.
        let mut cached = CachedAtlas::new(table(2_000), AtlasConfig::default(), 8).unwrap();
        let x_pred = atlas_query::Predicate::range("x", 0.0, 250.0);
        let group_pred = atlas_query::Predicate::values("group", ["a", "b"]);
        let forward = ConjunctiveQuery {
            table: "t".to_string(),
            predicates: vec![x_pred.clone(), group_pred.clone()],
        };
        let reversed = ConjunctiveQuery {
            table: "t".to_string(),
            predicates: vec![group_pred, x_pred],
        };
        let first = cached.explore(&forward).unwrap();
        assert_eq!(cached.stats().misses, 1);
        let second = cached.explore(&reversed).unwrap();
        assert_eq!(
            cached.stats(),
            &CacheStats {
                hits: 1,
                misses: 1,
                ..CacheStats::default()
            },
            "semantically identical queries must not miss"
        );
        assert_eq!(cached.len(), 1);
        assert_eq!(first.working_set_size, second.working_set_size);
        assert_eq!(first.num_maps(), second.num_maps());
    }

    #[test]
    fn from_engine_wraps_a_prepared_engine() {
        let t = table(1_000);
        let engine = Atlas::builder(Arc::clone(&t)).build().unwrap();
        let mut cached = CachedAtlas::from_engine(engine, 4);
        let result = cached.explore(&ConjunctiveQuery::all("t")).unwrap();
        assert!(result.num_maps() >= 1);
        assert_eq!(cached.stats().misses, 1);
    }

    #[test]
    fn prefetch_limit_zero_does_nothing() {
        let mut cached = CachedAtlas::new(table(1_000), AtlasConfig::default(), 4).unwrap();
        let result = cached.explore(&ConjunctiveQuery::all("t")).unwrap();
        assert_eq!(cached.prefetch(&result, 0), 0);
    }
}
