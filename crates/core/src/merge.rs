//! Merging the maps of a cluster (step 3 of the framework).
//!
//! Two operators are defined in Section 3.3 of the paper:
//!
//! * **product** (`M1 × M2`, Definition 3) — intersect every region of the
//!   first map with every region of the second. The split points stay the
//!   global ones, so the result is a regular grid over the involved
//!   attributes: "natural", but unlikely to expose clusters.
//! * **composition** (`M1 ∘ M2`, Definition 4) — take every region of the
//!   first map and re-apply `CUT` *inside it* on the attributes of the second
//!   map. Because the cut criteria (median, k-means, …) are re-evaluated on
//!   the region's own tuples, the split points adapt locally, which is what
//!   gives composition "a higher chance of revealing the clusters in the
//!   data".
//!
//! Both operators are associative enough for Atlas's purposes: clusters are
//! merged by folding the operator over the cluster's maps in order.

use crate::cut::CutConfig;
use crate::error::Result;
use crate::map::DataMap;
use crate::pipeline::{CompositionMerge, MergePolicy, PaperCut, PipelineContext};
use crate::profile::TableProfile;
use crate::region::Region;
use atlas_columnar::Table;

/// The product `M1 × M2 × …` of the given maps (Definition 3).
///
/// Every region of the result is the conjunction of one region per input map;
/// regions whose intersection is empty are dropped when `drop_empty` is set.
/// The order of the inputs does not affect the set of non-empty regions.
pub fn product_maps(maps: &[DataMap], drop_empty: bool) -> Option<DataMap> {
    if maps.is_empty() {
        return None;
    }
    let mut result = maps[0].clone();
    for other in &maps[1..] {
        let mut regions = Vec::with_capacity(result.regions.len() * other.regions.len());
        for left in &result.regions {
            for right in &other.regions {
                let selection = left.selection.and(&right.selection);
                if drop_empty && selection.is_all_clear() {
                    continue;
                }
                let query = left.query.conjoin(&right.query);
                regions.push(Region::new(query, selection));
            }
        }
        let mut attributes = result.source_attributes.clone();
        for attr in &other.source_attributes {
            if !attributes.contains(attr) {
                attributes.push(attr.clone());
            }
        }
        result = DataMap::new(regions, attributes);
    }
    Some(result)
}

/// The composition `M1 ∘ M2 ∘ …` of the given maps (Definition 4).
///
/// The first map's regions are taken as-is; every subsequent map contributes
/// its *attribute*, on which each current region is re-cut locally (with the
/// same cut configuration that produced the candidates). Regions whose local
/// cut fails (constant attribute within the region, all NULL…) are kept
/// uncut, so the result always covers at least as much as the first map.
///
/// This is the standalone form of
/// [`crate::pipeline::CompositionMerge`] (to which it delegates), fixed to
/// the paper's `CUT` strategy with on-the-fly statistics.
pub fn compose_maps(
    maps: &[DataMap],
    table: &Table,
    config: &CutConfig,
    drop_empty: bool,
) -> Result<Option<DataMap>> {
    let profile = TableProfile::empty(table.num_rows());
    let strategy = PaperCut;
    let ctx = PipelineContext {
        table,
        profile: &profile,
        cut_config: config,
        cut_strategy: &strategy,
        drop_empty_regions: drop_empty,
        pool: minirayon::ThreadPool::sequential(),
    };
    // Composition never reads the working set; any bitmap satisfies the
    // merge-policy signature.
    CompositionMerge.merge(&ctx, maps, &table.empty_selection())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut::{cut_attribute, NumericCutStrategy};
    use atlas_columnar::{Bitmap, DataType, Field, Schema, TableBuilder, Value};
    use atlas_query::{ConjunctiveQuery, Predicate};

    /// A table with two numeric attributes holding 4 well-separated clusters
    /// arranged so that neither attribute alone separates them all, plus a
    /// categorical attribute.
    fn clustered_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("size", DataType::Float),
            Field::new("weight", DataType::Float),
            Field::new("label", DataType::Str),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema);
        // Clusters at (size, weight) = (10,10), (10,40), (100,60), (100,90):
        // the weight gap of the small-size pair, (14, 40), and the weight gap
        // of the large-size pair, (64, 90), do not overlap, so *no single
        // global weight split* can separate both pairs — exactly the situation
        // where composition (local re-cutting) beats product (global grid).
        let centres = [(10.0, 10.0), (10.0, 40.0), (100.0, 60.0), (100.0, 90.0)];
        for (ci, (cx, cy)) in centres.iter().enumerate() {
            for i in 0..25 {
                let dx = (i % 5) as f64;
                let dy = (i / 5) as f64;
                b.push_row(&[
                    Value::Float(cx + dx),
                    Value::Float(cy + dy),
                    Value::Str(format!("c{ci}")),
                ])
                .unwrap();
            }
        }
        b.build().unwrap()
    }

    /// A table with two independent, uniform numeric attributes: every cell of
    /// a 2 × 2 product grid is populated.
    fn independent_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("size", DataType::Float),
            Field::new("weight", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema);
        for i in 0..100 {
            b.push_row(&[
                Value::Float((i % 10) as f64),
                Value::Float(((i / 10) % 10) as f64),
            ])
            .unwrap();
        }
        b.build().unwrap()
    }

    fn candidate(table: &Table, attr: &str, strategy: NumericCutStrategy) -> DataMap {
        let config = CutConfig {
            numeric: strategy,
            ..CutConfig::default()
        };
        cut_attribute(
            table,
            &table.full_selection(),
            &ConjunctiveQuery::all("t"),
            attr,
            &config,
        )
        .unwrap()
        .unwrap()
    }

    #[test]
    fn product_of_two_binary_maps_has_four_regions() {
        let t = independent_table();
        let m1 = candidate(&t, "size", NumericCutStrategy::Median);
        let m2 = candidate(&t, "weight", NumericCutStrategy::Median);
        let product = product_maps(&[m1, m2], true).unwrap();
        assert_eq!(product.num_regions(), 4);
        assert!(product.regions_are_disjoint());
        assert_eq!(product.covered_count(), 100);
        assert_eq!(product.source_attributes, vec!["size", "weight"]);
        assert_eq!(product.max_predicates(), 2);
    }

    #[test]
    fn product_is_commutative_up_to_region_order() {
        let t = independent_table();
        let m1 = candidate(&t, "size", NumericCutStrategy::Median);
        let m2 = candidate(&t, "weight", NumericCutStrategy::Median);
        let p12 = product_maps(&[m1.clone(), m2.clone()], true).unwrap();
        let p21 = product_maps(&[m2, m1], true).unwrap();
        let mut counts12 = p12.region_counts();
        let mut counts21 = p21.region_counts();
        counts12.sort_unstable();
        counts21.sort_unstable();
        assert_eq!(counts12, counts21);
        assert_eq!(p12.covered_count(), p21.covered_count());
    }

    #[test]
    fn product_drops_or_keeps_empty_regions() {
        let t = independent_table();
        // Two maps on the same attribute: the off-diagonal intersections are empty.
        let m1 = candidate(&t, "size", NumericCutStrategy::Median);
        let m2 = candidate(&t, "size", NumericCutStrategy::Median);
        let dropped = product_maps(&[m1.clone(), m2.clone()], true).unwrap();
        assert_eq!(dropped.num_regions(), 2);
        let kept = product_maps(&[m1, m2], false).unwrap();
        assert_eq!(kept.num_regions(), 4);
    }

    #[test]
    fn product_of_single_map_is_identity_and_empty_input_is_none() {
        let t = clustered_table();
        let m1 = candidate(&t, "size", NumericCutStrategy::Median);
        let p = product_maps(std::slice::from_ref(&m1), true).unwrap();
        assert_eq!(p.num_regions(), m1.num_regions());
        assert!(product_maps(&[], true).is_none());
        assert!(compose_maps(&[], &t, &CutConfig::default(), true)
            .unwrap()
            .is_none());
    }

    #[test]
    fn composition_recuts_locally() {
        let t = clustered_table();
        let cfg = CutConfig {
            numeric: NumericCutStrategy::KMeans { max_iterations: 50 },
            ..CutConfig::default()
        };
        let m_size = candidate(
            &t,
            "size",
            NumericCutStrategy::KMeans { max_iterations: 50 },
        );
        let m_weight = candidate(
            &t,
            "weight",
            NumericCutStrategy::KMeans { max_iterations: 50 },
        );
        let composed = compose_maps(&[m_size, m_weight], &t, &cfg, true)
            .unwrap()
            .unwrap();
        assert_eq!(composed.num_regions(), 4);
        assert!(composed.regions_are_disjoint());
        assert_eq!(composed.covered_count(), 100);
        // Each composed region should isolate exactly one planted cluster of 25.
        let mut counts = composed.region_counts();
        counts.sort_unstable();
        assert_eq!(counts, vec![25, 25, 25, 25]);
    }

    #[test]
    fn composition_reveals_clusters_product_misses() {
        // The planted clusters sit at different weight levels depending on the
        // size group, so the *global* median weight split (product) cannot
        // separate them inside both size groups, while local re-cutting
        // (composition) can.
        let t = clustered_table();
        let labels: Vec<u32> = (0..100).map(|i| (i / 25) as u32).collect();
        let cfg = CutConfig {
            numeric: NumericCutStrategy::KMeans { max_iterations: 50 },
            ..CutConfig::default()
        };
        let m_size = candidate(
            &t,
            "size",
            NumericCutStrategy::KMeans { max_iterations: 50 },
        );
        let m_weight = candidate(
            &t,
            "weight",
            NumericCutStrategy::KMeans { max_iterations: 50 },
        );

        let composed = compose_maps(&[m_size.clone(), m_weight.clone()], &t, &cfg, true)
            .unwrap()
            .unwrap();
        let product = product_maps(&[m_size, m_weight], true).unwrap();

        let ari_composed = atlas_stats::adjusted_rand_index(&composed.region_labels(100), &labels);
        let ari_product = atlas_stats::adjusted_rand_index(&product.region_labels(100), &labels);
        assert!(
            ari_composed > ari_product,
            "composition ARI {ari_composed} should beat product ARI {ari_product}"
        );
        assert!(
            ari_composed > 0.95,
            "composition should recover the planted clusters"
        );
    }

    #[test]
    fn composition_keeps_uncuttable_regions_whole() {
        let t = clustered_table();
        let cfg = CutConfig::default();
        let m_label = cut_attribute(
            &t,
            &t.full_selection(),
            &ConjunctiveQuery::all("t"),
            "label",
            &cfg,
        )
        .unwrap()
        .unwrap();
        // Compose with a map on a constant attribute: build one artificially.
        let constant_region = Region::new(
            ConjunctiveQuery::all("t").and(Predicate::range("size", 0.0, 1000.0)),
            t.full_selection(),
        );
        let degenerate = DataMap::new(vec![constant_region], vec!["size".to_string()]);
        // Composing label-map with a map whose attribute cannot be cut further
        // inside tiny regions must not lose coverage.
        let composed = compose_maps(&[m_label.clone(), degenerate], &t, &cfg, true)
            .unwrap()
            .unwrap();
        assert_eq!(composed.covered_count(), 100);
        assert!(composed.num_regions() >= m_label.num_regions());
    }

    #[test]
    fn product_respects_working_subsets() {
        let t = clustered_table();
        let working = Bitmap::from_indices(100, 0..50);
        let cfg = CutConfig::default();
        let q = ConjunctiveQuery::all("t");
        let m1 = cut_attribute(&t, &working, &q, "weight", &cfg)
            .unwrap()
            .unwrap();
        let m2 = cut_attribute(&t, &working, &q, "label", &cfg)
            .unwrap()
            .unwrap();
        let product = product_maps(&[m1, m2], true).unwrap();
        assert_eq!(product.covered_count(), 50);
        for region in &product.regions {
            for row in region.selection.iter_ones() {
                assert!(row < 50);
            }
        }
    }
}
