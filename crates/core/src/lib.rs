//! # atlas-core
//!
//! The Atlas map-generation engine — the primary contribution of "Fast
//! Cartography for Data Explorers" (Sellam & Kersten, VLDB 2013).
//!
//! Atlas answers queries with queries: given a user query over a relational
//! table, it summarises the matching tuples with a handful of **data maps**.
//! A [`DataMap`] is a small set of conjunctive queries, each describing one
//! region of the working set. The framework has four steps (Section 3 of the
//! paper), each implemented by a module here:
//!
//! 1. **Candidate maps** ([`cut`], [`candidates`]) — every usable attribute is
//!    broken down with the `CUT` primitive into a simple one-attribute map
//!    (two regions by default, per the paper's performance-over-accuracy
//!    choice).
//! 2. **Clustering** ([`distance`], [`cluster`]) — candidate maps that are
//!    statistically dependent describe the same aspect of the data; they are
//!    grouped by agglomerative clustering under the Variation-of-Information
//!    distance.
//! 3. **Merging** ([`merge`]) — the maps of each cluster are combined into a
//!    single representative map with either the *product* or the *composition*
//!    operator.
//! 4. **Ranking** ([`rank`]) — result maps are ordered by decreasing entropy
//!    of their cover distribution, so balanced, multi-region maps come first
//!    and outlier-revealing maps come last.
//!
//! The [`engine::Atlas`] type drives the whole pipeline. Since the
//! prepared-engine redesign it is assembled by [`engine::AtlasBuilder`]: the
//! four steps are the pluggable traits of [`pipeline`]
//! ([`pipeline::CutStrategy`], [`pipeline::MapDistance`],
//! [`pipeline::MergePolicy`], [`pipeline::Ranker`]) with the paper's
//! algorithms as defaults, and per-column statistics are computed **once** at
//! build time into a shared [`profile::TableProfile`]. The engine is
//! `Send + Sync`, so one `Arc<Atlas>` serves concurrent explorations — and
//! each exploration itself runs multicore: the hot phases (candidate cuts,
//! the pairwise distance matrix, per-cluster merging, profile building) split
//! across a scoped thread pool sized by [`config::AtlasConfig::parallelism`],
//! with results assembled in input order so the ranked maps are bit-for-bit
//! identical at every parallelism level.
//!
//! The sampling-based anytime refinement of Section 5.1 runs through the same
//! engine ([`engine::Atlas::explore_iter`] /
//! [`engine::Atlas::explore_anytime`], driven by [`config::ExploreOptions`]);
//! [`anytime::AnytimeAtlas`] is a thin convenience wrapper. [`baselines`]
//! provides the comparison systems used by the evaluation (exhaustive
//! product, random maps, single-attribute maps and a grid-density
//! subspace-clustering stand-in), each expressed as alternative stage-trait
//! implementations rather than separate pipelines.

#![warn(missing_docs)]

pub mod anytime;
pub mod baselines;
pub mod candidates;
pub mod cluster;
pub mod config;
pub mod cut;
pub mod distance;
pub mod engine;
pub mod error;
pub mod map;
pub mod merge;
pub mod pipeline;
pub mod precompute;
pub mod profile;
pub mod rank;
pub mod region;

pub use anytime::{AnytimeAtlas, AnytimeConfig};
pub use candidates::{generate_candidates, generate_candidates_in_context, CandidateSet};
pub use cluster::{
    cluster_maps, cluster_maps_with_pool, slink, ClusteringConfig, Dendrogram, Linkage, MergeStep,
};
pub use config::{AtlasConfig, ExploreOptions, MergeStrategy};
pub use cut::{
    cut_attribute, cut_from_source, CategoricalCutStrategy, CutConfig, CutSource,
    NumericCutStrategy, TableCutSource,
};
pub use distance::{
    distance_matrix, distance_matrix_with_pool, map_distance, metric_of, DistanceMatrix,
    MapDistanceMetric,
};
pub use engine::{
    enforce_region_cap, AnytimeIteration, AnytimeResult, Atlas, AtlasBuilder, ExploreIter,
    MapResult, PhaseTimings,
};
pub use error::{AtlasError, Result};
pub use map::DataMap;
pub use merge::{compose_maps, product_maps};
pub use minirayon::ThreadPool;
pub use pipeline::{
    CompositionMerge, CutStrategy, EntropyRanker, MapDistance, MergePolicy, PaperCut,
    PipelineContext, ProductMerge, Ranker, ViDistance,
};
pub use precompute::{CacheStats, CachedAtlas};
pub use profile::{ColumnProfile, ProfileStats, TableProfile};
pub use rank::{rank_maps, RankedMap};
pub use region::Region;
